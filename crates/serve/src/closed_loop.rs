//! Closing the loop with the placement simulator.

use crate::server::{Event, PitotServer};
use pitot_orchestrator::{ClusterSim, JobStream, PlacementPolicy, RuntimePredictor, SimReport};
use pitot_testbed::Testbed;
use std::cell::RefCell;
use std::rc::Rc;

/// One memoized query: the key it was asked under and its answer.
struct MemoizedAnswer {
    /// Server event count when the answer was computed (any consumed event
    /// may change the served model or calibration).
    events: usize,
    workload: u32,
    platform: usize,
    interferers: Vec<u32>,
    prediction: crate::Prediction,
}

/// [`RuntimePredictor`] view of a shared [`PitotServer`]: placement
/// policies query the server's live model and live calibration, so every
/// refresh or fine-tune the serving loop performs changes the very next
/// placement decision.
///
/// Queries go through [`PitotServer::query_now`] (the synchronous
/// single-query path — a policy needs its answer mid-decision, so the
/// micro-batch is bypassed). One [`crate::Prediction`] carries both the
/// point estimate and the bound, and policies typically ask for both per
/// candidate platform, so the last answer is memoized: the
/// `predict_s`/`bound_s` pair for one candidate costs one prediction pass.
/// The memo is invalidated whenever the server consumes an event (an
/// observation may have refreshed the calibration or fine-tuned the
/// model).
pub struct ServingPredictor {
    server: Rc<RefCell<PitotServer>>,
    last: RefCell<Option<MemoizedAnswer>>,
    name: String,
}

impl ServingPredictor {
    /// Wraps a shared server handle.
    pub fn new(server: Rc<RefCell<PitotServer>>) -> Self {
        Self {
            server,
            last: RefCell::new(None),
            name: "pitot-serve".to_string(),
        }
    }

    fn answer(&self, workload: u32, platform: usize, interferers: &[u32]) -> crate::Prediction {
        let mut server = self.server.borrow_mut();
        let events = server.stats().events;
        let mut last = self.last.borrow_mut();
        if let Some(memo) = last.as_ref() {
            if memo.events == events
                && memo.workload == workload
                && memo.platform == platform
                && memo.interferers == interferers
            {
                return memo.prediction.clone();
            }
        }
        let prediction = server.query_now(workload, platform as u32, interferers);
        *last = Some(MemoizedAnswer {
            events,
            workload,
            platform,
            interferers: interferers.to_vec(),
            prediction: prediction.clone(),
        });
        prediction
    }
}

impl RuntimePredictor for ServingPredictor {
    fn predict_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        f64::from(self.answer(workload, platform, interferers).point_s)
    }

    fn bound_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        f64::from(self.answer(workload, platform, interferers).bound_s)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for ServingPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingPredictor")
            .field("name", &self.name)
            .finish()
    }
}

/// Runs the placement simulator closed-loop against a serving instance:
/// the server's calibrated bounds drive placements, and every completion
/// streams back into the server as an [`Event::Observe`] at its completion
/// time — recalibrating (and possibly fine-tuning) the predictor mid-run.
///
/// `site` optionally restricts placement to a platform subset (a realistic
/// edge site, where co-location pressure makes interference matter).
/// Returns the simulator's report; serving-side effects (coverage,
/// refreshes, fine-tunes) are on the server's [`PitotServer::stats`].
///
/// # Panics
///
/// Panics as [`ClusterSim::run`] does, or if the server handle is already
/// mutably borrowed.
pub fn run_closed_loop(
    testbed: &Testbed,
    stream: &JobStream,
    policy: &mut dyn PlacementPolicy,
    server: &Rc<RefCell<PitotServer>>,
    site: Option<&[usize]>,
) -> SimReport {
    let predictor = ServingPredictor::new(Rc::clone(server));
    let mut sim = match site {
        Some(platforms) => ClusterSim::new(testbed).restrict_to(platforms),
        None => ClusterSim::new(testbed),
    };
    sim.run_with_observer(stream, policy, &predictor, &mut |obs, now| {
        let mut server = server.borrow_mut();
        // The simulation clock starts at 0; if the server already served an
        // earlier session (warm-up queries, a previous run), keep its clock
        // monotone by clamping.
        let at = now.max(server.now_s());
        server.on_event(at, Event::Observe(obs));
    })
}
