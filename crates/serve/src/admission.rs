//! SLO-aware admission control driven by conformal upper bounds.
//!
//! This is the first place the served intervals themselves make a control
//! decision rather than just being reported: a query arrives carrying a
//! deadline, and the admission queue compares the deadline against the
//! *conformal upper edge* of the predicted runtime. If even the calibrated
//! worst case fits the budget, the query is admitted — and the coverage
//! guarantee transfers directly: among admitted jobs, at most ≈ε should
//! overrun their deadlines (plus whatever queueing the admission bound did
//! not model). If the bound does not fit, the job is shed *before* it burns
//! cluster time it cannot pay back, which is exactly the C-Koordinator-style
//! interference-aware QoS argument for large co-located clusters.
//!
//! The queue also enforces a backlog cap: admitted-but-unresolved work is
//! bounded, so a burst cannot pile unbounded latency behind an honest
//! per-job feasibility check. Memory is bounded on both sides: admitted
//! records are capped by the backlog, and shed audit records — which may
//! never see a realized runtime, since shed jobs are never executed — are
//! retained FIFO up to [`AdmissionConfig::max_shed_pending`].
//!
//! With [`AdmissionConfig::queue_concurrency`] set, the feasibility check
//! is *queueing-aware*: a job behind a backlog does not start immediately,
//! so its deadline must cover the expected backlog drain time **plus** its
//! own bounded runtime. The drain estimate is `backlog × (EWMA of realized
//! admitted runtimes) / concurrency` — deterministic, updated only on
//! [`AdmissionQueue::resolve`]. Sheds this check causes carry their own
//! [`ShedReason::QueueWaitInfeasible`] tag and a separate audit, so
//! operators can attribute lost work to queueing pressure vs the runtime
//! bound itself.

use std::collections::BTreeMap;

/// EWMA smoothing factor for the realized-runtime estimate feeding the
/// queue-wait model (weight on the newest resolved runtime).
const RUNTIME_EWMA_ALPHA: f64 = 0.2;

/// Admission-control knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Safety margin in seconds added to the conformal bound before the
    /// deadline comparison (models dispatch/queueing overhead the runtime
    /// bound itself does not include).
    pub slack_s: f64,
    /// Maximum admitted-but-unresolved queries; beyond it, queries are shed
    /// with [`ShedReason::QueueFull`] regardless of feasibility.
    pub max_backlog: usize,
    /// Maximum *shed* decisions retained for the would-have-met/missed
    /// audit. A shed query is never executed, so in a real deployment its
    /// realized runtime may simply never arrive — without a bound the
    /// pending map would grow by one entry per unresolved shed forever.
    /// Oldest shed records are dropped FIFO past this cap (their audit is
    /// forfeited; counted in [`AdmissionStats::shed_unaudited`]).
    pub max_shed_pending: usize,
    /// Effective service concurrency the backlog drains at, for the
    /// queueing-aware feasibility check: a backlog of `b` jobs is expected
    /// to take `b × mean-runtime / queue_concurrency` seconds to drain,
    /// and a query is shed with [`ShedReason::QueueWaitInfeasible`] when
    /// `bound + slack + expected-wait` overruns its deadline even though
    /// the bound alone fits. `0` disables queue-wait modeling (the
    /// default): feasibility then compares `bound + slack` against the
    /// deadline exactly as before.
    pub queue_concurrency: usize,
}

impl AdmissionConfig {
    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite slack, or a zero backlog cap.
    pub fn validate(&self) {
        assert!(
            self.slack_s.is_finite() && self.slack_s >= 0.0,
            "AdmissionConfig.slack_s = {} is invalid: the admission safety \
             margin must be a non-negative finite duration in seconds \
             (0.0 disables the margin)",
            self.slack_s
        );
        assert!(
            self.max_backlog > 0,
            "AdmissionConfig.max_backlog = 0 is invalid: the backlog cap \
             must be at least 1 admitted-but-unresolved query (use a large \
             value like the default 1024 to effectively disable shedding \
             on backlog)"
        );
        assert!(
            self.max_shed_pending > 0,
            "AdmissionConfig.max_shed_pending = 0 is invalid: the shed \
             audit retention cap must be at least 1 record (use a large \
             value like the default 4096 to audit more sheds)"
        );
        // queue_concurrency: any value is valid; 0 disables the queue-wait
        // model.
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            slack_s: 0.0,
            max_backlog: 1024,
            max_shed_pending: 4096,
            queue_concurrency: 0,
        }
    }
}

/// Why a query was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The conformal upper bound (plus slack) exceeds the deadline: even
    /// the calibrated worst case cannot meet the SLO, regardless of
    /// queueing.
    DeadlineInfeasible,
    /// The bound alone fits the deadline, but not after the expected
    /// backlog drain time (see [`AdmissionConfig::queue_concurrency`]):
    /// the job is runnable, just not *startable* soon enough.
    QueueWaitInfeasible,
    /// The admitted backlog is at capacity.
    QueueFull,
}

/// One admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The query was admitted: its bound fits the deadline and backlog.
    Admit,
    /// The query was shed.
    Shed(ShedReason),
}

impl AdmissionDecision {
    /// Whether the decision admitted the query.
    pub fn admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admit)
    }
}

/// Counters over a session of admission decisions and their resolutions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted.
    pub admitted: usize,
    /// Queries shed because the bound exceeded the deadline.
    pub shed_infeasible: usize,
    /// Queries shed because the bound fit but the expected queue wait
    /// pushed the completion past the deadline.
    pub shed_queue_wait: usize,
    /// Queries shed because the backlog was full.
    pub shed_queue_full: usize,
    /// Admitted queries whose realized runtime met the deadline.
    pub slo_met: usize,
    /// Admitted queries whose realized runtime overran the deadline.
    pub slo_missed: usize,
    /// Infeasibility-shed queries that would in fact have met their
    /// deadline (work the conservatism of the bound gave up). Only
    /// [`ShedReason::DeadlineInfeasible`] sheds feed this audit — a
    /// [`ShedReason::QueueFull`] shed says nothing about the bound.
    pub shed_would_have_met: usize,
    /// Infeasibility-shed queries that would indeed have missed (sheds the
    /// bound got right).
    pub shed_would_have_missed: usize,
    /// Queue-wait-shed queries whose realized *runtime* alone fit the
    /// deadline — work lost to queueing pressure, not to the bound
    /// (attribution: tune capacity/backlog, not ε).
    pub shed_wait_would_have_met: usize,
    /// Queue-wait-shed queries whose realized runtime alone would have
    /// missed anyway (the wait estimate only confirmed a lost cause).
    pub shed_wait_would_have_missed: usize,
    /// Shed queries whose audit record was evicted before a realized
    /// runtime arrived (see [`AdmissionConfig::max_shed_pending`]).
    pub shed_unaudited: usize,
    /// Queries admitted on a *degraded* bound — one served under stale or
    /// local-fallback calibration (see
    /// [`AdmissionQueue::decide_tagged`]). Subset of
    /// [`AdmissionStats::admitted`].
    pub degraded_admitted: usize,
    /// Queries shed (for any reason) while the bound was degraded. Subset
    /// of [`AdmissionStats::shed`].
    pub degraded_shed: usize,
    /// Degraded-admitted queries that met their deadline. Subset of
    /// [`AdmissionStats::slo_met`].
    pub degraded_slo_met: usize,
    /// Degraded-admitted queries that overran their deadline — the SLO
    /// loss attributable to deciding on degraded calibrations. Subset of
    /// [`AdmissionStats::slo_missed`].
    pub degraded_slo_missed: usize,
}

impl AdmissionStats {
    /// Total decisions taken.
    pub fn decisions(&self) -> usize {
        self.admitted + self.shed()
    }

    /// Total queries shed, for any reason.
    pub fn shed(&self) -> usize {
        self.shed_infeasible + self.shed_queue_wait + self.shed_queue_full
    }

    /// Fraction of decisions that shed the query (`NaN` before any
    /// decision).
    pub fn shed_rate(&self) -> f32 {
        if self.decisions() == 0 {
            f32::NAN
        } else {
            self.shed() as f32 / self.decisions() as f32
        }
    }

    /// SLO attainment among *resolved admitted* queries: the fraction that
    /// finished within their deadline (`NaN` before any resolution). With
    /// an honest ε-calibrated bound this should sit near `1 − ε` or above
    /// (bounds are one-sided: jobs that finish early also attain).
    pub fn attainment(&self) -> f32 {
        let n = self.slo_met + self.slo_missed;
        if n == 0 {
            f32::NAN
        } else {
            self.slo_met as f32 / n as f32
        }
    }
}

/// One tracked query awaiting its realized runtime.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Decision sequence number — distinguishes a reused query id's fresh
    /// record from a stale `shed_order` entry for the same id.
    seq: u64,
    decision: AdmissionDecision,
    deadline_s: f64,
    /// Whether the bound behind the decision was degraded (stale or
    /// local-fallback calibration) — resolves into the degraded SLO audit.
    degraded: bool,
}

/// The admission queue: decides admit/shed per query and scores decisions
/// once realized runtimes arrive.
///
/// Deterministic: decisions depend only on the supplied bound, deadline,
/// and the queue's own state.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    cfg: AdmissionConfig,
    stats: AdmissionStats,
    pending: BTreeMap<u64, Pending>,
    /// Shed `(id, seq)` pairs in decision order, for FIFO eviction of
    /// stale audit records (may reference already-resolved decisions;
    /// eviction skips entries whose seq no longer matches).
    shed_order: std::collections::VecDeque<(u64, u64)>,
    next_seq: u64,
    backlog: usize,
    /// EWMA of realized runtimes of *admitted* resolutions — the service
    /// time estimate feeding [`AdmissionQueue::expected_queue_wait_s`].
    /// `None` until the first admitted resolution (no wait is charged
    /// before the queue has seen any service time).
    runtime_ewma_s: Option<f64>,
}

impl AdmissionQueue {
    /// An empty queue under the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(cfg: AdmissionConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            stats: AdmissionStats::default(),
            pending: BTreeMap::new(),
            shed_order: std::collections::VecDeque::new(),
            next_seq: 0,
            backlog: 0,
            runtime_ewma_s: None,
        }
    }

    /// Expected time for the current backlog to drain, in seconds: backlog
    /// × EWMA of realized admitted runtimes / configured concurrency. Zero
    /// while queue-wait modeling is disabled
    /// ([`AdmissionConfig::queue_concurrency`] = 0), the backlog is empty,
    /// or no admitted query has resolved yet.
    pub fn expected_queue_wait_s(&self) -> f64 {
        if self.cfg.queue_concurrency == 0 || self.backlog == 0 {
            return 0.0;
        }
        match self.runtime_ewma_s {
            Some(ewma) => self.backlog as f64 * ewma / self.cfg.queue_concurrency as f64,
            None => 0.0,
        }
    }

    /// Decides one query: admit iff the backlog has room and
    /// `bound_s + slack_s + expected_queue_wait_s ≤ deadline_s` (the wait
    /// term is zero unless [`AdmissionConfig::queue_concurrency`] enables
    /// the queueing model). A shed is tagged by which term broke
    /// feasibility: the bound alone ([`ShedReason::DeadlineInfeasible`])
    /// or only the added wait ([`ShedReason::QueueWaitInfeasible`]). The
    /// decision is recorded under `id` for later
    /// [`AdmissionQueue::resolve`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is already pending, or `bound_s`/`deadline_s` is not
    /// finite.
    pub fn decide(&mut self, id: u64, bound_s: f64, deadline_s: f64) -> AdmissionDecision {
        self.decide_tagged(id, bound_s, deadline_s, false)
    }

    /// [`AdmissionQueue::decide`] with a degradation tag: pass
    /// `degraded = true` when the bound came from a stale or
    /// local-fallback calibration (see `Prediction::degraded` in the serve
    /// loop). The decision arithmetic is identical; the tag routes the
    /// decision — and its later resolution — into the
    /// `degraded_*` counters so degraded-mode SLO loss is attributable.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already pending, or `bound_s`/`deadline_s` is not
    /// finite.
    pub fn decide_tagged(
        &mut self,
        id: u64,
        bound_s: f64,
        deadline_s: f64,
        degraded: bool,
    ) -> AdmissionDecision {
        assert!(bound_s.is_finite(), "bound {bound_s} must be finite");
        assert!(
            deadline_s.is_finite(),
            "deadline {deadline_s} must be finite"
        );
        assert!(
            !self.pending.contains_key(&id),
            "query id {id} is already pending"
        );
        let budget = bound_s + self.cfg.slack_s;
        let decision = if self.backlog >= self.cfg.max_backlog {
            self.stats.shed_queue_full += 1;
            AdmissionDecision::Shed(ShedReason::QueueFull)
        } else if budget > deadline_s {
            self.stats.shed_infeasible += 1;
            AdmissionDecision::Shed(ShedReason::DeadlineInfeasible)
        } else if budget + self.expected_queue_wait_s() > deadline_s {
            self.stats.shed_queue_wait += 1;
            AdmissionDecision::Shed(ShedReason::QueueWaitInfeasible)
        } else {
            self.stats.admitted += 1;
            self.backlog += 1;
            AdmissionDecision::Admit
        };
        if degraded {
            if decision.admitted() {
                self.stats.degraded_admitted += 1;
            } else {
                self.stats.degraded_shed += 1;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(
            id,
            Pending {
                seq,
                decision,
                deadline_s,
                degraded,
            },
        );
        if !decision.admitted() {
            // Shed queries are never executed, so their realized runtime
            // may never arrive: bound how many audit records we hold.
            self.shed_order.push_back((id, seq));
            while self.shed_order.len() > self.cfg.max_shed_pending {
                let (old_id, old_seq) = self.shed_order.pop_front().expect("non-empty queue");
                // The decision may have been resolved already, and the id
                // may even have been reused since — only the *same* still
                // pending shed record counts as evicted.
                if let Some(p) = self.pending.get(&old_id) {
                    if p.seq == old_seq {
                        self.pending.remove(&old_id);
                        self.stats.shed_unaudited += 1;
                    }
                }
            }
        }
        decision
    }

    /// Scores a pending decision against the realized runtime: admitted
    /// queries count toward SLO attainment (and update the service-time
    /// EWMA behind the queue-wait model), infeasibility-shed queries
    /// toward the runtime-bound audit, queue-wait-shed queries toward
    /// their own audit (a queue-full shed says nothing about either
    /// estimate and is not audited). Returns whether the query had been
    /// admitted, or `None` if `id` was never decided (or already
    /// resolved).
    pub fn resolve(&mut self, id: u64, realized_s: f64) -> Option<bool> {
        let p = self.pending.remove(&id)?;
        let met = realized_s <= p.deadline_s;
        match p.decision {
            AdmissionDecision::Admit => {
                self.backlog -= 1;
                if met {
                    self.stats.slo_met += 1;
                    if p.degraded {
                        self.stats.degraded_slo_met += 1;
                    }
                } else {
                    self.stats.slo_missed += 1;
                    if p.degraded {
                        self.stats.degraded_slo_missed += 1;
                    }
                }
                if realized_s.is_finite() && realized_s >= 0.0 {
                    self.runtime_ewma_s = Some(match self.runtime_ewma_s {
                        Some(ewma) => ewma + RUNTIME_EWMA_ALPHA * (realized_s - ewma),
                        None => realized_s,
                    });
                }
            }
            AdmissionDecision::Shed(ShedReason::DeadlineInfeasible) => {
                if met {
                    self.stats.shed_would_have_met += 1;
                } else {
                    self.stats.shed_would_have_missed += 1;
                }
            }
            AdmissionDecision::Shed(ShedReason::QueueWaitInfeasible) => {
                // `realized_s` is the counterfactual *runtime* (no queue
                // wait included): "met" here means the job was lost to
                // queueing pressure alone, not to its own runtime.
                if met {
                    self.stats.shed_wait_would_have_met += 1;
                } else {
                    self.stats.shed_wait_would_have_missed += 1;
                }
            }
            AdmissionDecision::Shed(ShedReason::QueueFull) => {}
        }
        Some(p.decision.admitted())
    }

    /// Decision counters so far.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Admitted-but-unresolved queries.
    pub fn backlog(&self) -> usize {
        self.backlog
    }

    /// Queries decided but not yet resolved (admitted or shed).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_bounds_admit_and_resolve() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        assert_eq!(q.decide(1, 2.0, 5.0), AdmissionDecision::Admit);
        assert_eq!(q.backlog(), 1);
        assert_eq!(q.resolve(1, 3.0), Some(true));
        assert_eq!(q.backlog(), 0);
        assert_eq!(q.stats().slo_met, 1);
        assert_eq!(q.stats().attainment(), 1.0);
    }

    #[test]
    fn infeasible_bounds_shed_and_audit() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        assert_eq!(
            q.decide(1, 6.0, 5.0),
            AdmissionDecision::Shed(ShedReason::DeadlineInfeasible)
        );
        // The bound was conservative: the job would have made it.
        assert_eq!(q.resolve(1, 4.0), Some(false));
        assert_eq!(q.stats().shed_would_have_met, 1);
        // A correct shed.
        q.decide(2, 9.0, 5.0);
        q.resolve(2, 8.0);
        assert_eq!(q.stats().shed_would_have_missed, 1);
        assert_eq!(q.stats().shed_rate(), 1.0);
    }

    #[test]
    fn queue_full_sheds_are_not_bound_audited() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            max_backlog: 1,
            ..AdmissionConfig::default()
        });
        q.decide(1, 1.0, 5.0); // fills the backlog
        assert_eq!(
            q.decide(2, 1.0, 5.0),
            AdmissionDecision::Shed(ShedReason::QueueFull)
        );
        // A capacity shed of a feasible query must not read as bound
        // conservatism.
        assert_eq!(q.resolve(2, 1.0), Some(false));
        assert_eq!(q.stats().shed_would_have_met, 0);
        assert_eq!(q.stats().shed_would_have_missed, 0);
        assert_eq!(q.stats().shed_queue_full, 1);
    }

    #[test]
    fn reused_ids_do_not_evict_fresh_shed_records() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            max_shed_pending: 2,
            ..AdmissionConfig::default()
        });
        // Shed id 7, resolve it (stale entry for seq 1 stays in the FIFO),
        // then legally reuse id 7 for a fresh shed.
        q.decide(7, 9.0, 5.0);
        assert_eq!(q.resolve(7, 1.0), Some(false));
        q.decide(7, 9.0, 5.0);
        // One more shed pushes the stale (7, old-seq) entry past the cap:
        // it must be skipped (seq mismatch), not matched against the fresh
        // id-7 record — only 2 audit records are actually live.
        q.decide(8, 9.0, 5.0);
        assert_eq!(q.stats().shed_unaudited, 0);
        assert_eq!(q.resolve(7, 1.0), Some(false), "fresh record survived");
        assert_eq!(q.stats().shed_would_have_met, 2);
    }

    #[test]
    fn backlog_cap_sheds_even_feasible_queries() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            max_backlog: 2,
            ..AdmissionConfig::default()
        });
        q.decide(1, 1.0, 5.0);
        q.decide(2, 1.0, 5.0);
        assert_eq!(
            q.decide(3, 1.0, 5.0),
            AdmissionDecision::Shed(ShedReason::QueueFull)
        );
        // Resolving frees a slot.
        q.resolve(1, 1.0);
        assert_eq!(q.decide(4, 1.0, 5.0), AdmissionDecision::Admit);
    }

    #[test]
    fn slack_tightens_the_feasibility_check() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            slack_s: 1.0,
            ..AdmissionConfig::default()
        });
        assert_eq!(
            q.decide(1, 4.5, 5.0),
            AdmissionDecision::Shed(ShedReason::DeadlineInfeasible)
        );
        assert_eq!(q.decide(2, 4.0, 5.0), AdmissionDecision::Admit);
    }

    #[test]
    fn unknown_resolutions_are_ignored() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        assert_eq!(q.resolve(42, 1.0), None);
        q.decide(1, 1.0, 2.0);
        assert_eq!(q.resolve(1, 1.0), Some(true));
        assert_eq!(q.resolve(1, 1.0), None, "double resolve is a no-op");
    }

    #[test]
    fn shed_audit_records_are_bounded() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            max_shed_pending: 4,
            ..AdmissionConfig::default()
        });
        // 10 infeasible queries, never resolved: only the 4 newest audit
        // records survive; the rest are counted unaudited.
        for id in 0..10u64 {
            q.decide(id, 9.0, 5.0);
        }
        assert_eq!(q.pending(), 4);
        assert_eq!(q.stats().shed_unaudited, 6);
        // Evicted ids resolve as unknown; retained ones still audit.
        assert_eq!(q.resolve(0, 1.0), None);
        assert_eq!(q.resolve(9, 1.0), Some(false));
        assert_eq!(q.stats().shed_would_have_met, 1);
        // Admitted queries are never evicted by the shed cap.
        q.decide(100, 1.0, 5.0);
        for id in 200..220u64 {
            q.decide(id, 9.0, 5.0);
        }
        assert_eq!(q.resolve(100, 1.0), Some(true));
    }

    #[test]
    fn shed_eviction_is_strictly_oldest_first() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            max_shed_pending: 3,
            ..AdmissionConfig::default()
        });
        for id in 10..15u64 {
            q.decide(id, 9.0, 5.0);
        }
        // Cap 3, five sheds: exactly the two oldest (10, 11) were evicted,
        // in that order, and the three newest survive with their audits.
        assert_eq!(q.stats().shed_unaudited, 2);
        assert_eq!(q.resolve(10, 1.0), None, "oldest must go first");
        assert_eq!(q.resolve(11, 1.0), None, "second-oldest goes second");
        for id in 12..15u64 {
            assert_eq!(q.resolve(id, 1.0), Some(false), "id {id} evicted early");
        }
        assert_eq!(q.stats().shed_would_have_met, 3);
        // A resolved mid-FIFO record leaves a stale entry: overflow skips
        // it (no unaudited count) and keeps evicting oldest-first among
        // the *live* records.
        for id in 20..23u64 {
            q.decide(id, 9.0, 5.0);
        }
        assert_eq!(q.resolve(20, 1.0), Some(false)); // stale (20, seq) stays queued
        q.decide(23, 9.0, 5.0); // overflow pops the stale entry, evicts nothing
        assert_eq!(q.stats().shed_unaudited, 2);
        q.decide(24, 9.0, 5.0); // now 21 is the oldest live record
        assert_eq!(q.stats().shed_unaudited, 3);
        assert_eq!(q.resolve(21, 1.0), None, "21 evicted before 22");
        assert_eq!(q.resolve(22, 1.0), Some(false), "22 must outlive 21");
    }

    #[test]
    fn queue_wait_model_sheds_and_audits_separately() {
        let mut q = AdmissionQueue::new(AdmissionConfig {
            queue_concurrency: 1,
            ..AdmissionConfig::default()
        });
        // No service time observed yet: the wait model charges nothing.
        assert_eq!(q.expected_queue_wait_s(), 0.0);
        assert_eq!(q.decide(1, 2.0, 5.0), AdmissionDecision::Admit);
        assert_eq!(q.resolve(1, 4.0), Some(true));
        // EWMA seeded at 4.0s; two admitted jobs build a backlog worth 8s
        // of expected drain.
        assert_eq!(q.decide(2, 2.0, 100.0), AdmissionDecision::Admit);
        assert_eq!(q.decide(3, 2.0, 100.0), AdmissionDecision::Admit);
        assert!((q.expected_queue_wait_s() - 8.0).abs() < 1e-9);
        // Bound 2.0 fits deadline 5.0 on its own, but not behind 8s of
        // backlog: shed, attributed to queue wait — not to the bound.
        assert_eq!(
            q.decide(4, 2.0, 5.0),
            AdmissionDecision::Shed(ShedReason::QueueWaitInfeasible)
        );
        assert_eq!(q.stats().shed_queue_wait, 1);
        assert_eq!(q.stats().shed_infeasible, 0);
        // Its runtime alone would have met: lost to queueing pressure.
        assert_eq!(q.resolve(4, 2.0), Some(false));
        assert_eq!(q.stats().shed_wait_would_have_met, 1);
        assert_eq!(q.stats().shed_would_have_met, 0);
        // A bound that misses the deadline outright still reads as a
        // runtime-infeasible shed, even with a backlog.
        assert_eq!(
            q.decide(5, 9.0, 5.0),
            AdmissionDecision::Shed(ShedReason::DeadlineInfeasible)
        );
        // Draining the backlog restores admission at the same deadline.
        q.resolve(2, 4.0);
        q.resolve(3, 4.0);
        assert_eq!(q.expected_queue_wait_s(), 0.0);
        assert_eq!(q.decide(6, 2.0, 5.0), AdmissionDecision::Admit);
        assert_eq!(q.stats().shed(), 2);
    }

    #[test]
    fn queue_wait_is_zero_when_disabled() {
        // Default config (queue_concurrency = 0): resolution history never
        // produces a wait charge, so decisions match the pre-queueing
        // behavior exactly.
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        for id in 0..20u64 {
            assert_eq!(q.decide(id, 4.9, 5.0), AdmissionDecision::Admit);
        }
        for id in 0..10u64 {
            q.resolve(id, 4.9);
        }
        assert_eq!(q.expected_queue_wait_s(), 0.0);
        assert_eq!(q.decide(100, 4.9, 5.0), AdmissionDecision::Admit);
        assert_eq!(q.stats().shed_queue_wait, 0);
    }

    #[test]
    fn config_errors_name_field_and_value() {
        use std::panic::catch_unwind;
        let message = |cfg: AdmissionConfig| -> String {
            let err = catch_unwind(move || cfg.validate()).expect_err("must panic");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .expect("panic carries a message")
        };
        let m = message(AdmissionConfig {
            slack_s: -1.0,
            ..AdmissionConfig::default()
        });
        assert!(m.contains("AdmissionConfig.slack_s"), "{m}");
        assert!(m.contains("-1"), "{m}");
        let m = message(AdmissionConfig {
            max_backlog: 0,
            ..AdmissionConfig::default()
        });
        assert!(m.contains("AdmissionConfig.max_backlog"), "{m}");
        assert!(m.contains("1024"), "names the sane default: {m}");
        let m = message(AdmissionConfig {
            max_shed_pending: 0,
            ..AdmissionConfig::default()
        });
        assert!(m.contains("AdmissionConfig.max_shed_pending"), "{m}");
    }

    #[test]
    fn degraded_decisions_audit_separately() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        // A clean admit and a clean shed touch no degraded counter.
        assert_eq!(q.decide(1, 2.0, 5.0), AdmissionDecision::Admit);
        q.decide(2, 9.0, 5.0);
        q.resolve(1, 3.0);
        q.resolve(2, 1.0);
        assert_eq!(q.stats().degraded_admitted, 0);
        assert_eq!(q.stats().degraded_shed, 0);
        // Degraded admit that meets, degraded admit that misses, degraded
        // shed: each lands in its own counter AND the base counters.
        assert_eq!(q.decide_tagged(3, 2.0, 5.0, true), AdmissionDecision::Admit);
        assert_eq!(q.decide_tagged(4, 2.0, 5.0, true), AdmissionDecision::Admit);
        assert_eq!(
            q.decide_tagged(5, 9.0, 5.0, true),
            AdmissionDecision::Shed(ShedReason::DeadlineInfeasible)
        );
        q.resolve(3, 3.0);
        q.resolve(4, 7.0);
        let s = *q.stats();
        assert_eq!(s.degraded_admitted, 2);
        assert_eq!(s.degraded_shed, 1);
        assert_eq!(s.degraded_slo_met, 1);
        assert_eq!(s.degraded_slo_missed, 1);
        assert_eq!(s.admitted, 3, "degraded counters are subsets");
        assert_eq!(s.slo_missed, 1);
        assert_eq!(s.shed_infeasible, 2);
    }

    #[test]
    #[should_panic(expected = "already pending")]
    fn duplicate_ids_are_rejected() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        q.decide(1, 1.0, 2.0);
        q.decide(1, 1.0, 2.0);
    }
}
