//! The streaming prediction server.

use crate::config::ServeConfig;
use crate::drift::CoverageMonitor;
use crate::guard::{self, GuardStats, IngestGuard, QuarantineCause, QuarantineRecord};
use crate::WatchdogIncident;
use pitot::{TowerCache, TrainContext, TrainedPitot};
use pitot_conformal::{
    HeadSelection, MergeableWindow, PooledConformal, PredictionSet, WindowedScores,
};
use pitot_testbed::{split::Split, Dataset, Observation, MAX_INTERFERERS};
use std::collections::VecDeque;
use std::time::Instant;

/// One input to the serving loop, delivered at a simulated timestamp.
#[derive(Debug, Clone)]
pub enum Event {
    /// A measured runtime arrives from the cluster (a completed job, a
    /// benchmark rerun, a telemetry sample).
    Observe(Observation),
    /// A placement question: "how long will `workload` take on `platform`
    /// next to `interferers`?" Queries micro-batch; the answer is returned
    /// from the event that fills the batch (or a [`Event::Flush`]).
    Query {
        /// Caller-chosen correlation id, echoed on the answer.
        id: u64,
        /// Workload catalog index.
        workload: u32,
        /// Platform catalog index.
        platform: u32,
        /// Workloads co-resident on the platform.
        interferers: Vec<u32>,
    },
    /// Answers all buffered queries now, regardless of batch fill.
    Flush,
}

/// A served prediction: point estimate plus calibrated upper bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The query's correlation id.
    pub id: u64,
    /// Point estimate in seconds (head 0: the median / squared head).
    pub point_s: f32,
    /// Runtime budget in seconds sufficient with probability `1 − ε`.
    pub bound_s: f32,
    /// Calibration pool the bound came from.
    pub pool: usize,
    /// Whether the answer was served in degraded mode: the installed
    /// calibration was stale beyond [`ServeConfig::staleness_threshold`],
    /// so the bound came from the honestly widened local-window fallback
    /// (see [`PitotServer::staleness`]). Always `false` when staleness
    /// tracking is disabled.
    pub degraded: bool,
}

/// Prequential feedback for one arriving observation: how the bound served
/// *before* seeing the runtime fared against it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedFeedback {
    /// Whether the served bound covered the realized runtime.
    pub covered: bool,
    /// The served log-space bound.
    pub bound_log: f32,
    /// The realized log runtime.
    pub target_log: f32,
    /// Whether this arrival triggered a conformal refresh.
    pub refreshed: bool,
    /// Whether this arrival triggered a warm-start fine-tune.
    pub fine_tuned: bool,
    /// Whether the judged bound was served in degraded (stale-fallback)
    /// mode — see [`Prediction::degraded`].
    pub degraded: bool,
}

/// What one [`PitotServer::on_event`] call produced.
#[derive(Debug, Clone, Default)]
pub struct ServeResponse {
    /// Answers released by this event (non-empty when a micro-batch filled
    /// or a flush ran).
    pub predictions: Vec<Prediction>,
    /// Present iff the event was an observation **accepted** by ingest
    /// (quarantined observations are never judged, windowed, or
    /// monitored, so they produce no prequential feedback).
    pub observed: Option<ObservedFeedback>,
    /// Present iff the event was an observation the ingest guard
    /// quarantined (see [`crate::GuardStats`]; always `None` while
    /// [`ServeConfig::ingest_guard`] is off — the unguarded server
    /// panics on corrupt runtimes instead).
    pub quarantined: Option<QuarantineRecord>,
}

/// Counters and latency records for a serving session.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Events consumed.
    pub events: usize,
    /// Observations consumed.
    pub observations: usize,
    /// Queries answered.
    pub queries: usize,
    /// Conformal refreshes performed.
    pub refreshes: usize,
    /// Warm-start fine-tunes performed.
    pub fine_tunes: usize,
    /// Prequentially covered observations (served bound ≥ realized runtime).
    pub covered: usize,
    /// Observations judged prequentially (denominator for coverage).
    pub bounded: usize,
    /// Observations judged while the server was in degraded
    /// (stale-fallback) mode.
    pub degraded_bounded: usize,
    /// Degraded-mode judged observations the fallback bound covered.
    pub degraded_covered: usize,
    /// Local fallback calibrations fitted while degraded (one per window
    /// advance while stale — the degraded-mode analogue of
    /// [`ServeStats::refreshes`]).
    pub fallback_refits: usize,
    /// Wall-clock nanoseconds of recent conformal refreshes, in order
    /// (drain with `std::mem::take` for percentile reporting). Retention is
    /// bounded at [`ServeStats::REFRESH_LATENCY_RETAIN`] — once full, the
    /// older half is dropped — so a long-lived server with a per-arrival
    /// refresh cadence does not grow without bound.
    pub refresh_ns: Vec<u64>,
}

impl ServeStats {
    /// Maximum refresh latencies retained in [`ServeStats::refresh_ns`].
    pub const REFRESH_LATENCY_RETAIN: usize = 65_536;

    /// Prequential empirical coverage over the whole session (`NaN` before
    /// any observation).
    pub fn coverage(&self) -> f32 {
        if self.bounded == 0 {
            f32::NAN
        } else {
            self.covered as f32 / self.bounded as f32
        }
    }
}

/// One window entry's raw material, kept so the window can serve as a
/// selection set and be re-scored after a fine-tune.
#[derive(Debug, Clone)]
struct WindowEntry {
    preds: Vec<f32>,
    target_log: f32,
    pool: usize,
    /// Index into the server's (growing) dataset; `None` when fine-tuning
    /// is disabled and arrivals are not recorded.
    obs_idx: Option<usize>,
}

/// The streaming prediction service (see the crate docs for the full
/// architecture).
///
/// Owns its model, a growing copy of the dataset (arrivals are appended so
/// fine-tunes can train on them), the cached tower outputs, the sliding
/// calibration window, and the currently served calibration. Everything is
/// deterministic: the same event sequence yields bitwise-identical
/// predictions and fine-tune trajectories.
pub struct PitotServer {
    cfg: ServeConfig,
    dataset: Dataset,
    /// Observation count of the dataset the server was built with; streamed
    /// arrivals are appended after this index (and compacted back to it).
    base_len: usize,
    trained: TrainedPitot,
    towers: TowerCache,
    xis: Vec<f32>,
    window: WindowedScores,
    raw: VecDeque<WindowEntry>,
    conformal: Option<PooledConformal>,
    /// Window clock at the last install/refresh of `conformal` (staleness
    /// is measured against it; `None` until the first calibration exists).
    installed_clock: Option<u64>,
    /// Cached stale-mode local fallback, keyed by the window clock it was
    /// fitted at (refit lazily when the window has moved).
    fallback: Option<(u64, PooledConformal)>,
    monitor: CoverageMonitor,
    ctx: Option<TrainContext>,
    ctx_seen: usize,
    /// Dataset indices of streamed observations (fine-tune pool).
    seen: Vec<usize>,
    seen_isolation: usize,
    since_refresh: usize,
    since_tune: usize,
    batch: Vec<(u64, Observation)>,
    now_s: f64,
    stats: ServeStats,
    guard: IngestGuard,
    /// Watchdog firings, newest last (bounded like the quarantine ring).
    incidents: Vec<WatchdogIncident>,
}

impl std::fmt::Debug for PitotServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PitotServer")
            .field("epsilon", &self.cfg.epsilon)
            .field("window_len", &self.window.len())
            .field("has_conformal", &self.conformal.is_some())
            .field("has_ctx", &self.ctx.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl PitotServer {
    /// Minimum streamed isolation observations before a fine-tune may run
    /// (the training loop requires a non-empty isolation batch pool).
    pub const MIN_FINE_TUNE_ISOLATION: usize = 8;

    /// Builds a server around a trained model and the dataset it will
    /// stream against. The calibration window starts empty — prime it with
    /// [`PitotServer::seed_calibration`] (or let arriving observations fill
    /// it; until the first refresh, bounds fall back to the highest
    /// quantile head, uncalibrated).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent.
    pub fn new(trained: TrainedPitot, dataset: Dataset, cfg: ServeConfig) -> Self {
        cfg.validate();
        // Serve through the configured compression level: the compressed
        // tower cache substitutes for the dense one in every prediction
        // path, and the calibration window scores the *compressed* model's
        // residuals — coverage holds at every level (intervals widen to
        // absorb the compression error).
        let towers = trained.compressed_tower_cache(&dataset, &cfg.compression);
        let xis = trained.model.config().objective.xis();
        let n_heads = trained.model.n_heads();
        let window = WindowedScores::new(cfg.window, n_heads);
        let monitor =
            CoverageMonitor::new(cfg.epsilon, cfg.drift_window, cfg.drift_z, cfg.drift_min);
        let since_tune = cfg.fine_tune_cooldown;
        let base_len = dataset.observations.len();
        let guard = IngestGuard::new(cfg.quarantine_retain);
        Self {
            cfg,
            dataset,
            base_len,
            trained,
            towers,
            xis,
            window,
            raw: VecDeque::new(),
            conformal: None,
            installed_clock: None,
            fallback: None,
            monitor,
            ctx: None,
            ctx_seen: 0,
            seen: Vec::new(),
            seen_isolation: 0,
            since_refresh: 0,
            since_tune,
            batch: Vec::new(),
            now_s: f64::NEG_INFINITY,
            stats: ServeStats::default(),
            guard,
            incidents: Vec::new(),
        }
    }

    /// Primes the calibration window from existing dataset indices (e.g.
    /// the trained split's validation half) and fits the first served
    /// calibration. Seeded entries do not count as streamed observations:
    /// they neither feed the drift monitor nor join the fine-tune pool.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-range index.
    pub fn seed_calibration(&mut self, idx: &[usize]) {
        assert!(!idx.is_empty(), "cannot seed from an empty index set");
        // Seed from the window-capacity *suffix* so the most recent
        // capacity-many entries of `idx` survive.
        let tail = &idx[idx.len().saturating_sub(self.cfg.window)..];
        let obs: Vec<&Observation> = tail
            .iter()
            .map(|&i| &self.dataset.observations[i])
            .collect();
        let preds = self.trained.predict_log_runtime_cached(&self.towers, &obs);
        // Materialize per-entry data first: `obs` borrows the dataset, and
        // the push below needs `&mut self`.
        let entries: Vec<(usize, Vec<f32>, f32, usize)> = tail
            .iter()
            .zip(&obs)
            .enumerate()
            .map(|(j, (&i, o))| {
                let head_preds: Vec<f32> = preds.iter().map(|h| h[j]).collect();
                (
                    i,
                    head_preds,
                    o.log_runtime(),
                    self.pool_key(o.interferers.len()),
                )
            })
            .collect();
        drop(obs);
        for (i, head_preds, target_log, pool) in entries {
            self.window_push(head_preds, target_log, pool, Some(i));
        }
        self.refresh();
    }

    /// Pushes one entry into the sliding window and its raw mirror. The raw
    /// ring's eviction is driven by [`WindowedScores::push`]'s return value,
    /// so the two rings cannot drift apart.
    fn window_push(
        &mut self,
        preds: Vec<f32>,
        target_log: f32,
        pool: usize,
        obs_idx: Option<usize>,
    ) {
        let evicted = self.window.push(&preds, target_log, pool);
        self.raw.push_back(WindowEntry {
            preds,
            target_log,
            pool,
            obs_idx,
        });
        if evicted.is_some() {
            self.raw.pop_front();
        }
        // The raw mirror and the score window must never drift apart (the
        // selection set and the rescore path both read `raw`); two length
        // reads per push are cheap enough to check unconditionally.
        assert_eq!(self.raw.len(), self.window.len());
    }

    /// Consumes one event at simulated time `at_s` (must be monotone
    /// non-decreasing across calls).
    ///
    /// # Panics
    ///
    /// Panics if the clock runs backwards, an observation/query references
    /// an out-of-catalog workload, platform, or interferer, or — while
    /// [`ServeConfig::ingest_guard`] is off — an observed runtime is not
    /// positive and finite (its log-space score would silently poison the
    /// calibration window as NaN). With the guard on, corrupt runtimes are
    /// quarantined into the audited side buffer instead (see
    /// [`PitotServer::guard_stats`]).
    pub fn on_event(&mut self, at_s: f64, event: Event) -> ServeResponse {
        assert!(
            at_s >= self.now_s,
            "simulated clock ran backwards: {at_s} after {}",
            self.now_s
        );
        self.now_s = at_s;
        self.stats.events += 1;
        match event {
            Event::Observe(obs) => {
                self.check_catalog(obs.workload, obs.platform, &obs.interferers);
                if self.cfg.ingest_guard {
                    if let Some(cause) = IngestGuard::runtime_cause(obs.runtime_s) {
                        self.stats.observations += 1;
                        let at = self.stats.observations as u64;
                        let record = self.guard.quarantine(at, obs.runtime_s, None, cause);
                        return ServeResponse {
                            predictions: Vec::new(),
                            observed: None,
                            quarantined: Some(record),
                        };
                    }
                } else {
                    assert!(
                        obs.runtime_s > 0.0 && obs.runtime_s.is_finite(),
                        "observed runtime {} is not a positive finite duration",
                        obs.runtime_s
                    );
                }
                self.stats.observations += 1;
                let (observed, quarantined) = self.observe(obs);
                ServeResponse {
                    predictions: Vec::new(),
                    observed,
                    quarantined,
                }
            }
            Event::Query {
                id,
                workload,
                platform,
                interferers,
            } => {
                self.check_catalog(workload, platform, &interferers);
                self.batch.push((
                    id,
                    Observation {
                        workload,
                        platform,
                        interferers,
                        runtime_s: 1.0, // unused by prediction
                    },
                ));
                let predictions = if self.batch.len() >= self.cfg.microbatch {
                    self.flush_batch()
                } else {
                    Vec::new()
                };
                ServeResponse {
                    predictions,
                    ..ServeResponse::default()
                }
            }
            Event::Flush => ServeResponse {
                predictions: self.flush_batch(),
                ..ServeResponse::default()
            },
        }
    }

    /// The [`Event::Observe`] arm of [`on_event`](Self::on_event) with the
    /// head predictions supplied by the caller — the concurrent runtime's
    /// lane workers score a whole drained batch in one row-parallel pass
    /// and then apply each observation through here. Mirrors the `Observe`
    /// arm exactly (clock, counters, guard screen, feedback), so the
    /// deterministic twin sees identical state transitions.
    pub(crate) fn on_observation_prescored(
        &mut self,
        at_s: f64,
        obs: Observation,
        head_preds: Vec<f32>,
    ) -> ServeResponse {
        assert!(
            at_s >= self.now_s,
            "simulated clock ran backwards: {at_s} after {}",
            self.now_s
        );
        self.now_s = at_s;
        self.stats.events += 1;
        self.check_catalog(obs.workload, obs.platform, &obs.interferers);
        if self.cfg.ingest_guard {
            if let Some(cause) = IngestGuard::runtime_cause(obs.runtime_s) {
                self.stats.observations += 1;
                let at = self.stats.observations as u64;
                let record = self.guard.quarantine(at, obs.runtime_s, None, cause);
                return ServeResponse {
                    predictions: Vec::new(),
                    observed: None,
                    quarantined: Some(record),
                };
            }
        } else {
            assert!(
                obs.runtime_s > 0.0 && obs.runtime_s.is_finite(),
                "observed runtime {} is not a positive finite duration",
                obs.runtime_s
            );
        }
        self.stats.observations += 1;
        let (observed, quarantined) = self.observe_prescored(obs, head_preds);
        ServeResponse {
            predictions: Vec::new(),
            observed,
            quarantined,
        }
    }

    /// Answers one query immediately, bypassing the micro-batch — the
    /// synchronous path a placement policy uses mid-decision. Identical
    /// arithmetic to the batched path (a batch of one); counted in
    /// [`ServeStats::queries`] like any batched answer.
    pub fn query_now(&mut self, workload: u32, platform: u32, interferers: &[u32]) -> Prediction {
        self.ensure_fallback();
        let obs = Observation {
            workload,
            platform,
            interferers: interferers.to_vec(),
            runtime_s: 1.0, // unused by prediction
        };
        let preds = self
            .trained
            .predict_log_runtime_cached(&self.towers, &[&obs]);
        let head_preds: Vec<f32> = preds.iter().map(|h| h[0]).collect();
        self.stats.queries += 1;
        self.prediction_from_heads(0, &head_preds, interferers.len())
    }

    /// Forces the pending micro-batch out (also triggered by
    /// [`Event::Flush`] and by the batch filling).
    pub fn flush(&mut self) -> Vec<Prediction> {
        self.flush_batch()
    }

    /// Session counters and latency records.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Mutable session counters (e.g. to drain
    /// [`ServeStats::refresh_ns`] for percentile reporting).
    pub fn stats_mut(&mut self) -> &mut ServeStats {
        &mut self.stats
    }

    /// The currently served model.
    pub fn trained(&self) -> &TrainedPitot {
        &self.trained
    }

    /// The currently served calibration (absent until the window first
    /// refreshes).
    pub fn conformal(&self) -> Option<&PooledConformal> {
        self.conformal.as_ref()
    }

    /// Replaces the served calibration with an externally fitted one — the
    /// install path a fleet coordinator uses after merging replica windows
    /// (see [`crate::FleetServer`]). The local window keeps accumulating;
    /// a later local refresh (if the refresh cadence ever fires) would
    /// overwrite this, so fleet deployments set
    /// [`ServeConfig::refresh_every`] beyond the stream length and let the
    /// coordinator own every refresh.
    pub fn install_calibration(&mut self, conformal: PooledConformal) {
        self.conformal = Some(conformal);
        // A fresh install resets staleness: the calibration is current as
        // of everything this window has seen.
        self.installed_clock = Some(self.window.clock());
    }

    /// Pushes since the served calibration was installed or refreshed (the
    /// eviction clock's distance): the staleness the degraded-mode
    /// fallback triggers on. `0` while no calibration is installed.
    pub fn staleness(&self) -> u64 {
        match self.installed_clock {
            Some(c) => self.window.clock().saturating_sub(c),
            None => 0,
        }
    }

    /// Whether the server is currently serving in degraded mode: staleness
    /// tracking is enabled, a calibration is installed, and its staleness
    /// exceeds [`ServeConfig::staleness_threshold`] with a non-empty local
    /// window to fall back on.
    pub fn is_degraded(&self) -> bool {
        self.cfg.staleness_threshold > 0
            && self.conformal.is_some()
            && !self.window.is_empty()
            && self.staleness() > self.cfg.staleness_threshold as u64
    }

    /// Rebuilds the calibration window of a **fresh** server from a merged
    /// summary's per-replica entries (see
    /// [`pitot_conformal::MergeableWindow::replica_entries`]) — the warm
    /// crash-recovery path: a rejoining replica replays the coordinator's
    /// held snapshot of its pre-crash window instead of starting cold.
    ///
    /// Restored entries carry synthetic head predictions reconstructed
    /// from their scores (`pred = −score`, `target = 0`): score-identical
    /// to the originals, so every calibration fit is bitwise unaffected,
    /// but useless as training material — hence the restrictions below.
    /// The window clock is advanced to `clock` so coordinator
    /// unchanged-window skips and snapshot supersession stay consistent
    /// across the crash.
    ///
    /// # Panics
    ///
    /// Panics if the server has already seen window entries, if `entries`
    /// exceeds the window capacity, or if the config fine-tunes or uses
    /// [`HeadSelection::TightestOnValidation`] (both would consume the
    /// synthetic predictions as real ones).
    pub fn restore_window(&mut self, entries: Vec<pitot_conformal::ReplayEntry>, clock: u64) {
        assert!(
            self.window.is_empty() && self.raw.is_empty(),
            "restore_window requires a fresh server (window already has \
             {} entries)",
            self.window.len()
        );
        assert!(
            entries.len() <= self.cfg.window,
            "restore_window got {} entries for a window of capacity {}",
            entries.len(),
            self.cfg.window
        );
        assert!(
            self.cfg.fine_tune_steps == 0
                && self.cfg.selection != HeadSelection::TightestOnValidation,
            "restore_window rebuilds entries with synthetic predictions: \
             fine-tuning and TightestOnValidation selection would consume \
             them as real ones (fleet mode forbids both already)"
        );
        for (scores, pool) in entries {
            let preds: Vec<f32> = scores.iter().map(|s| -s).collect();
            self.raw.push_back(WindowEntry {
                preds,
                target_log: 0.0,
                pool,
                obs_idx: None,
            });
            self.window.push_scores(scores, pool);
        }
        assert_eq!(self.raw.len(), self.window.len());
        if clock > self.window.clock() {
            self.window.advance_clock(clock);
        }
    }

    /// Snapshots the server's calibration window as a mergeable summary
    /// under the given replica id — the message a replica sends its fleet
    /// coordinator. Cost is a copy of the sorted slices; no re-sorting.
    pub fn window_summary(&self, replica: u64) -> MergeableWindow {
        MergeableWindow::snapshot(replica, &self.window)
    }

    /// The calibration window's logical clock (advances on every push and
    /// on wholesale rebuilds): a coordinator compares it against the clock
    /// of its last-merged snapshot to skip re-snapshotting an unchanged
    /// window.
    pub fn window_clock(&self) -> u64 {
        self.window.clock()
    }

    /// Rolling prequential coverage over the drift monitor's window.
    pub fn rolling_coverage(&self) -> f32 {
        self.monitor.coverage()
    }

    /// Observations currently in the calibration window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The server's (growing) dataset copy.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The simulated clock's current position (`-∞` before any event).
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    fn check_catalog(&self, workload: u32, platform: u32, interferers: &[u32]) {
        assert!(
            (workload as usize) < self.dataset.n_workloads,
            "workload {workload} outside the catalog"
        );
        assert!(
            (platform as usize) < self.dataset.n_platforms,
            "platform {platform} outside the catalog"
        );
        for &k in interferers {
            assert!(
                (k as usize) < self.dataset.n_workloads,
                "interferer {k} outside the catalog"
            );
        }
    }

    fn pool_key(&self, arity: usize) -> usize {
        if self.cfg.pool_by_arity {
            arity.min(MAX_INTERFERERS)
        } else {
            0
        }
    }

    /// Log-space `(point, bound, degraded)` for one observation's head
    /// predictions. Before the first refresh the bound falls back to the
    /// highest head — conservative but uncalibrated. In degraded mode the
    /// bound comes from the widened local fallback when its cache is
    /// current (callers on the `&mut` paths run
    /// [`PitotServer::ensure_fallback`] first, so it always is).
    fn bound_from_heads(&self, head_preds: &[f32], pool: usize) -> (f32, f32, bool) {
        let point = head_preds[0];
        let degraded = self.is_degraded();
        if degraded {
            if let Some((clock, fb)) = &self.fallback {
                if *clock == self.window.clock() {
                    return (point, fb.bound_log(head_preds, pool), true);
                }
            }
        }
        let bound = match &self.conformal {
            Some(c) => c.bound_log(head_preds, pool),
            None => *head_preds.last().expect("at least one head"),
        };
        (point, bound, degraded)
    }

    /// Refits the cached stale-mode fallback if the server is degraded and
    /// the window has moved since the cache was fitted. Called at the top
    /// of every serving path that can answer or judge a bound.
    fn ensure_fallback(&mut self) {
        if !self.is_degraded() {
            return;
        }
        let clock = self.window.clock();
        if self.fallback.as_ref().is_some_and(|(c, _)| *c == clock) {
            return;
        }
        let widened = self.cfg.epsilon * self.cfg.stale_epsilon_factor;
        let fitted = self.fit_window(widened);
        self.fallback = Some((clock, fitted));
        self.stats.fallback_refits += 1;
    }

    fn prediction_from_heads(&self, id: u64, head_preds: &[f32], arity: usize) -> Prediction {
        let pool = self.pool_key(arity);
        let (point, bound, degraded) = self.bound_from_heads(head_preds, pool);
        Prediction {
            id,
            point_s: point.exp(),
            bound_s: bound.exp(),
            pool,
            degraded,
        }
    }

    fn flush_batch(&mut self) -> Vec<Prediction> {
        if self.batch.is_empty() {
            return Vec::new();
        }
        self.ensure_fallback();
        let batch = std::mem::take(&mut self.batch);
        let obs: Vec<&Observation> = batch.iter().map(|(_, o)| o).collect();
        // One row-parallel pass answers the whole micro-batch.
        let preds = self.trained.predict_log_runtime_cached(&self.towers, &obs);
        let out: Vec<Prediction> = batch
            .iter()
            .enumerate()
            .map(|(j, (id, o))| {
                let head_preds: Vec<f32> = preds.iter().map(|h| h[j]).collect();
                self.prediction_from_heads(*id, &head_preds, o.interferers.len())
            })
            .collect();
        self.stats.queries += out.len();
        out
    }

    fn observe(
        &mut self,
        obs: Observation,
    ) -> (Option<ObservedFeedback>, Option<QuarantineRecord>) {
        self.ensure_fallback();
        let preds = self
            .trained
            .predict_log_runtime_cached(&self.towers, &[&obs]);
        let head_preds: Vec<f32> = preds.iter().map(|h| h[0]).collect();
        self.observe_prescored(obs, head_preds)
    }

    /// [`observe`](Self::observe) with the head predictions already
    /// computed — the entry point the concurrent runtime's lane workers use
    /// after scoring a whole drained batch in one row-parallel pass.
    /// Batched prediction is bitwise-identical to a batch of one (a pinned
    /// property), so this path and `observe` produce identical feedback.
    fn observe_prescored(
        &mut self,
        obs: Observation,
        head_preds: Vec<f32>,
    ) -> (Option<ObservedFeedback>, Option<QuarantineRecord>) {
        // 0. Robust outlier screen (guard mode): a score far outside the
        // window's MAD band is quarantined *before* being judged — corrupt
        // telemetry must poison neither the calibration window nor the
        // coverage statistics the watchdog trusts.
        self.ensure_fallback();
        let pool = self.pool_key(obs.interferers.len());
        let target_log = obs.log_runtime();
        if self.cfg.ingest_guard
            && self.cfg.guard_mad_k > 0.0
            && self.window.len() >= self.cfg.guard_min_n
        {
            let score = target_log - head_preds[0];
            let sorted = self.window.scored().sorted_scores(0);
            if guard::is_mad_outlier(sorted, score, self.cfg.guard_mad_k) {
                let at = self.stats.observations as u64;
                let record = self.guard.quarantine(
                    at,
                    obs.runtime_s,
                    Some(score),
                    QuarantineCause::MadOutlier,
                );
                return (None, Some(record));
            }
        }

        // 1. Prequential judgement against the *currently served* bound.
        let (point_log, bound_log, degraded) = self.bound_from_heads(&head_preds, pool);
        let covered = target_log <= bound_log;
        self.monitor.push(covered, bound_log - point_log);
        self.stats.bounded += 1;
        if covered {
            self.stats.covered += 1;
        }
        if degraded {
            self.stats.degraded_bounded += 1;
            if covered {
                self.stats.degraded_covered += 1;
            }
        }

        // 2. Record the arrival for fine-tuning (when enabled).
        let obs_idx = if self.cfg.fine_tune_steps > 0 {
            if obs.interferers.is_empty() {
                self.seen_isolation += 1;
            }
            self.dataset.observations.push(obs);
            let i = self.dataset.observations.len() - 1;
            self.seen.push(i);
            Some(i)
        } else {
            None
        };

        // 3. Slide the calibration window, then bound the fine-tune pool.
        self.window_push(head_preds, target_log, pool, obs_idx);
        self.maybe_compact_streamed();

        // 4. Refresh the served calibration on cadence.
        self.since_refresh += 1;
        let mut refreshed = if self.since_refresh >= self.cfg.refresh_every {
            self.refresh();
            true
        } else {
            false
        };

        // 4b. Miscoverage watchdog: poisoning the ingest screen missed
        // shows up as sustained undercoverage on *accepted* telemetry —
        // quarantine-rollback the window and refit.
        if self.cfg.watchdog_z > 0.0
            && self
                .monitor
                .undercovering_by(self.cfg.watchdog_z, self.cfg.watchdog_min)
        {
            self.watchdog_rollback();
            refreshed = true;
        }

        // 5. Fine-tune when the monitor says the model itself drifted.
        self.since_tune += 1;
        let fine_tuned = self.should_fine_tune() && self.fine_tune();

        (
            Some(ObservedFeedback {
                covered,
                bound_log,
                target_log,
                refreshed,
                fine_tuned,
                degraded,
            }),
            None,
        )
    }

    /// The miscoverage watchdog's quarantine-rollback rescore: re-screen
    /// every window entry against the window's own robust median/MAD
    /// (which tolerate up to half the window being poisoned), purge the
    /// failures into the quarantine audit, rebuild the window from the
    /// survivors with its clock advanced past every snapshot of the
    /// poisoned state (so fleet coordinators supersede it on the next
    /// merge), refit the served calibration on the scrubbed window, and
    /// restart the coverage monitor so the post-rollback bounds are judged
    /// on fresh outcomes only. Every firing — even one that purges
    /// nothing, which means the undercoverage was drift, not poison — is
    /// recorded as a [`WatchdogIncident`].
    fn watchdog_rollback(&mut self) {
        let at = self.stats.observations as u64;
        let coverage = self.monitor.coverage();
        self.guard.record_watchdog_fire();
        let (med, sigma) = guard::robust_scale(self.window.scored().sorted_scores(0));
        let keep: Vec<bool> = self
            .raw
            .iter()
            .map(|e| {
                let s = e.target_log - e.preds[0];
                // A degenerate scale estimate keeps everything (see
                // `guard::robust_scale`).
                !(sigma > 0.0 && (s - med).abs() > self.cfg.guard_mad_k * sigma)
            })
            .collect();
        let purged = keep.iter().filter(|k| !**k).count();
        if purged > 0 {
            let old_clock = self.window.clock();
            let mut window = WindowedScores::new(self.cfg.window, self.window.n_heads());
            let mut raw = VecDeque::with_capacity(self.raw.len() - purged);
            for (e, keep) in std::mem::take(&mut self.raw).into_iter().zip(keep) {
                if keep {
                    window.push(&e.preds, e.target_log, e.pool);
                    raw.push_back(e);
                } else {
                    let s = e.target_log - e.preds[0];
                    self.guard.quarantine(
                        at,
                        e.target_log.exp(),
                        Some(s),
                        QuarantineCause::WatchdogRollback,
                    );
                }
            }
            window.advance_clock(old_clock + 1);
            self.window = window;
            self.raw = raw;
            self.refresh();
        }
        self.monitor.reset();
        self.incidents.push(WatchdogIncident {
            at,
            coverage,
            purged,
            kept: self.raw.len(),
        });
        if self.incidents.len() > self.cfg.quarantine_retain.max(1) {
            self.incidents.remove(0);
        }
    }

    /// Cumulative quarantine counters (the zero-silent-drops ledger; all
    /// zeros while [`ServeConfig::ingest_guard`] is off).
    pub fn guard_stats(&self) -> GuardStats {
        self.guard.stats()
    }

    /// The bounded quarantine audit ring, oldest first (capped at
    /// [`ServeConfig::quarantine_retain`]; the counters in
    /// [`PitotServer::guard_stats`] are never truncated).
    pub fn quarantine_records(&self) -> impl Iterator<Item = &QuarantineRecord> + '_ {
        self.guard.records()
    }

    /// Miscoverage-watchdog firings, oldest first (bounded like the
    /// quarantine ring).
    pub fn watchdog_incidents(&self) -> &[WatchdogIncident] {
        &self.incidents
    }

    /// Refits the served calibration from the window — rank lookups over
    /// the incrementally maintained sorted scores.
    fn refresh(&mut self) {
        self.since_refresh = 0;
        if self.window.is_empty() {
            return;
        }
        let t0 = Instant::now();
        let conformal = self.fit_window(self.cfg.epsilon);
        self.conformal = Some(conformal);
        self.installed_clock = Some(self.window.clock());
        self.stats.refreshes += 1;
        if self.stats.refresh_ns.len() >= ServeStats::REFRESH_LATENCY_RETAIN {
            // Amortized O(1): drop the older half once the buffer fills.
            self.stats
                .refresh_ns
                .drain(..ServeStats::REFRESH_LATENCY_RETAIN / 2);
        }
        self.stats
            .refresh_ns
            .push(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }

    /// Fits a calibration on the current (non-empty) window at the given
    /// miscoverage — the shared engine of [`PitotServer::refresh`] (at the
    /// configured ε) and the stale-mode fallback (at the widened ε).
    fn fit_window(&self, epsilon: f32) -> PooledConformal {
        // Head-major selection-set view of the window (only consulted by
        // TightestOnValidation, for which the window doubles as the
        // selection set — a streaming approximation of the paper's
        // dedicated selection half).
        let n_heads = self.window.n_heads();
        let (sel_preds, sel_targets, sel_pools) =
            if self.cfg.selection == HeadSelection::TightestOnValidation {
                let mut p: Vec<Vec<f32>> = vec![Vec::with_capacity(self.raw.len()); n_heads];
                let mut t = Vec::with_capacity(self.raw.len());
                let mut k = Vec::with_capacity(self.raw.len());
                for e in &self.raw {
                    for (h, v) in e.preds.iter().enumerate() {
                        p[h].push(*v);
                    }
                    t.push(e.target_log);
                    k.push(e.pool);
                }
                (p, t, k)
            } else {
                (vec![Vec::new(); n_heads], Vec::new(), Vec::new())
            };
        PooledConformal::fit_scored(
            self.window.scored(),
            &PredictionSet {
                predictions: &sel_preds,
                targets_log: &sel_targets,
                pools: &sel_pools,
            },
            &self.xis,
            self.cfg.selection,
            epsilon,
        )
    }

    fn should_fine_tune(&self) -> bool {
        self.cfg.fine_tune_steps > 0
            && self.since_tune >= self.cfg.fine_tune_cooldown
            && self.seen_isolation >= Self::MIN_FINE_TUNE_ISOLATION
            && self.monitor.undercovering()
    }

    /// The fine-tune pool's retention bound (never below the calibration
    /// window, whose members must keep valid dataset indices).
    fn retain_bound(&self) -> usize {
        self.cfg.fine_tune_retain.max(self.cfg.window)
    }

    /// Keeps the server's memory bounded for long-lived sessions: once the
    /// streamed fine-tune pool reaches twice its retention bound, the older
    /// half of the appended observations is dropped from the dataset copy
    /// and every retained index is shifted down (amortized O(1) per
    /// event). The training context is invalidated — its cached residual
    /// targets and batch pools reference pre-compaction indices — and is
    /// rebuilt by the next fine-tune.
    fn maybe_compact_streamed(&mut self) {
        let bound = self.retain_bound();
        if self.cfg.fine_tune_steps == 0 || self.seen.len() < bound.saturating_mul(2) {
            return;
        }
        let dropped = self.seen.len() - bound;
        // Streamed arrivals are appended in order, so `seen` is exactly
        // `base_len..base_len + n`: compaction is one contiguous drain.
        self.dataset
            .observations
            .drain(self.base_len..self.base_len + dropped);
        self.seen = (self.base_len..self.base_len + bound).collect();
        self.seen_isolation = self
            .seen
            .iter()
            .filter(|&&i| self.dataset.observations[i].interferers.is_empty())
            .count();
        for e in &mut self.raw {
            if let Some(idx) = &mut e.obs_idx {
                if *idx >= self.base_len {
                    // Window members are among the most recent `window` ≤
                    // `bound` arrivals, so every one of them survived.
                    debug_assert!(*idx >= self.base_len + dropped);
                    *idx -= dropped;
                }
            }
        }
        self.ctx = None;
        self.ctx_seen = 0;
    }

    /// Warm-start fine-tune on the streamed observations: reuse (or
    /// rebuild) the [`TrainContext`] and [`TrainContext::resume`] for the
    /// configured budget, then refresh towers, re-score the window under
    /// the updated model, and restart the drift monitor. Returns whether a
    /// fine-tune actually ran (it is deferred while the trainable history —
    /// streamed observations *older than the calibration window* — is still
    /// too thin to train on).
    fn fine_tune(&mut self) -> bool {
        self.since_tune = 0;
        let need_rebuild = match &self.ctx {
            None => true,
            Some(_) => self.seen.len() as f32 >= self.ctx_seen as f32 * self.cfg.rebuild_growth,
        };
        if need_rebuild {
            let split = self.online_split();
            let train_isolation = split
                .train
                .iter()
                .filter(|&&i| self.dataset.observations[i].interferers.is_empty())
                .count();
            if train_isolation < Self::MIN_FINE_TUNE_ISOLATION {
                // Not enough pre-window history yet; recalibration alone
                // carries the stream until it accumulates. No fine-tune
                // ran, so don't burn a full cooldown — retry once another
                // drift-window's worth of arrivals is in.
                self.since_tune = self
                    .cfg
                    .fine_tune_cooldown
                    .saturating_sub(self.cfg.drift_min.max(1));
                return false;
            }
            // Frozen offsets for known entities keep the residual space —
            // and the calibration window — comparable across updates; new
            // entities get proper baseline offsets.
            let scaling = self.trained.scaling.extend(&self.dataset, &split.train);
            let mut cfg = self.trained.model.config().clone();
            cfg.steps = self.cfg.fine_tune_steps;
            cfg.eval_every = cfg.eval_every.min(self.cfg.fine_tune_steps.max(1));
            self.ctx = Some(TrainContext::warm_start(
                self.trained.model.clone(),
                scaling,
                &self.dataset,
                &split,
                &cfg,
            ));
            self.ctx_seen = self.seen.len();
        }
        let ctx = self.ctx.as_mut().expect("context just ensured");
        ctx.resume(&self.dataset, self.cfg.fine_tune_steps);
        self.trained = ctx.finish();
        // Fine-tuning is rejected on compressed servers by validation, so
        // this spec is always `none` here — the call keeps the tower-cache
        // construction on the single compression-aware path.
        self.towers = self
            .trained
            .compressed_tower_cache(&self.dataset, &self.cfg.compression);
        self.stats.fine_tunes += 1;
        self.rescore_window();
        self.refresh();
        self.monitor.reset();
        true
    }

    /// Split over the streamed observations. The current calibration
    /// window — the most recent `cfg.window` arrivals — is held **out** of
    /// training: after the update those points re-score the served bounds,
    /// and training on them would bias their residuals small (in-sample
    /// scores ⇒ too-tight γ, voiding the calibration-never-trains
    /// separation). They double as the checkpoint-validation sample
    /// instead. Because the split is frozen at context build and the
    /// window only moves forward, later `resume()` calls on the same
    /// context can never train on a current window member either.
    fn online_split(&self) -> Split {
        let held_out = self.seen.len().min(self.cfg.window);
        let cut = self.seen.len() - held_out;
        Split {
            train: self.seen[..cut].to_vec(),
            val: self.seen[cut..].to_vec(),
            test: Vec::new(),
            train_fraction: 1.0,
            seed: self.trained.split.seed,
        }
    }

    /// Re-predicts every window member under the (updated) model so the
    /// window's scores match the model that will serve them.
    fn rescore_window(&mut self) {
        if self.raw.is_empty() {
            return;
        }
        let obs: Vec<&Observation> = self
            .raw
            .iter()
            .map(|e| {
                let i = e.obs_idx.expect("fine-tune path records dataset indices");
                &self.dataset.observations[i]
            })
            .collect();
        let preds = self.trained.predict_log_runtime_cached(&self.towers, &obs);
        let mut window = WindowedScores::new(self.cfg.window, self.window.n_heads());
        for (j, e) in self.raw.iter_mut().enumerate() {
            e.preds = preds.iter().map(|h| h[j]).collect();
            window.push(&e.preds, e.target_log, e.pool);
        }
        // The rebuilt window must supersede the old one in any fleet
        // coordinator's merged view: advance its clock past every snapshot
        // taken of the pre-rescore state.
        window.advance_clock(self.window.clock() + 1);
        self.window = window;
    }
}
