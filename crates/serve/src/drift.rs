//! Rolling coverage/width monitoring and the drift trigger.

use std::collections::VecDeque;

/// Rolling prequential monitor over the served bounds.
///
/// Each arriving observation is first judged against the *currently served*
/// bound (prequential: predict, then reveal), and the outcome — covered or
/// not, plus the bound's log-space width — enters a fixed-size ring. The
/// monitor answers two questions built on the `pitot_conformal`
/// diagnostics' coverage notion:
///
/// - [`CoverageMonitor::coverage`]: the rolling empirical coverage;
/// - [`CoverageMonitor::undercovering`]: whether that coverage has fallen
///   below the target by more than binomial sampling slack — the signal
///   that the *model* has drifted faster than the calibration window can
///   absorb and a warm-start fine-tune is warranted.
///
/// A stationary stream stays inside the slack with probability controlled
/// by the `z` multiplier, so fine-tunes fire on genuine shift rather than
/// noise.
#[derive(Debug, Clone)]
pub struct CoverageMonitor {
    epsilon: f32,
    z: f32,
    min_n: usize,
    cap: usize,
    hits: VecDeque<bool>,
    covered: usize,
    widths: VecDeque<f32>,
    width_sum: f64,
}

impl CoverageMonitor {
    /// Monitor targeting coverage `1 − epsilon` over the last `cap`
    /// observations, firing below `z` binomial standard deviations once at
    /// least `min_n` observations are buffered.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)` or `cap == 0`.
    pub fn new(epsilon: f32, cap: usize, z: f32, min_n: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon outside (0,1)");
        assert!(cap > 0, "monitor window must be positive");
        Self {
            epsilon,
            z,
            min_n,
            cap,
            hits: VecDeque::with_capacity(cap + 1),
            covered: 0,
            widths: VecDeque::with_capacity(cap + 1),
            width_sum: 0.0,
        }
    }

    /// Records one prequential outcome: whether the served bound covered
    /// the realized runtime, and the bound's log-space width (bound minus
    /// point prediction).
    pub fn push(&mut self, covered: bool, width_log: f32) {
        if self.hits.len() == self.cap {
            if self.hits.pop_front() == Some(true) {
                self.covered -= 1;
            }
            if let Some(w) = self.widths.pop_front() {
                self.width_sum -= f64::from(w);
            }
        }
        self.hits.push_back(covered);
        if covered {
            self.covered += 1;
        }
        self.widths.push_back(width_log);
        self.width_sum += f64::from(width_log);
    }

    /// Observations currently monitored.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether nothing has been monitored yet.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Rolling empirical coverage (`NaN` while empty).
    pub fn coverage(&self) -> f32 {
        if self.hits.is_empty() {
            f32::NAN
        } else {
            self.covered as f32 / self.hits.len() as f32
        }
    }

    /// Rolling mean log-space bound width (`NaN` while empty).
    pub fn mean_width_log(&self) -> f32 {
        if self.widths.is_empty() {
            f32::NAN
        } else {
            (self.width_sum / self.widths.len() as f64) as f32
        }
    }

    /// Whether rolling coverage sits below target by more than binomial
    /// slack: `coverage < 1 − ε − z·√(ε(1−ε)/n)`. Always `false` before
    /// `min_n` observations.
    pub fn undercovering(&self) -> bool {
        self.undercovering_by(self.z, self.min_n)
    }

    /// [`CoverageMonitor::undercovering`] at a caller-supplied slack
    /// multiplier and minimum count, so several consumers with different
    /// sensitivities — the drift detector's fine-tune trigger and the
    /// miscoverage watchdog's poisoning rollback — can share one
    /// prequential ring instead of double-counting outcomes.
    pub fn undercovering_by(&self, z: f32, min_n: usize) -> bool {
        let n = self.hits.len();
        if n < min_n.max(1) {
            return false;
        }
        let slack = z * (self.epsilon * (1.0 - self.epsilon) / n as f32).sqrt();
        self.coverage() < 1.0 - self.epsilon - slack
    }

    /// Clears the monitor — called after a fine-tune so the updated model
    /// is judged on fresh outcomes only.
    pub fn reset(&mut self) {
        self.hits.clear();
        self.covered = 0;
        self.widths.clear();
        self.width_sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_hit_rate_does_not_fire() {
        let mut m = CoverageMonitor::new(0.1, 200, 3.0, 50);
        // Exactly the target rate: 9 covered out of every 10.
        for i in 0..400 {
            m.push(i % 10 != 0, 0.5);
        }
        assert!(!m.undercovering(), "coverage {} fired", m.coverage());
        assert!((m.coverage() - 0.9).abs() < 0.02);
        assert!((m.mean_width_log() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn sustained_undercoverage_fires() {
        let mut m = CoverageMonitor::new(0.1, 200, 3.0, 50);
        for i in 0..200 {
            m.push(i % 10 != 0, 0.5);
        }
        // Shift: only 60% covered from now on.
        for i in 0..200 {
            m.push(i % 5 < 3, 0.5);
        }
        assert!(m.undercovering(), "coverage {} did not fire", m.coverage());
    }

    #[test]
    fn does_not_fire_before_min_n() {
        let mut m = CoverageMonitor::new(0.1, 200, 3.0, 50);
        for _ in 0..49 {
            m.push(false, 0.1);
        }
        assert!(!m.undercovering());
        m.push(false, 0.1);
        assert!(m.undercovering());
    }

    #[test]
    fn undercovering_by_separates_consumers() {
        let mut m = CoverageMonitor::new(0.1, 200, 3.0, 50);
        for i in 0..200 {
            m.push(i % 10 != 0, 0.5);
        }
        // Mild dip to 80% coverage: a tight consumer fires, a looser one
        // does not, and the minimum count gates both.
        for i in 0..200 {
            m.push(i % 5 < 4, 0.5);
        }
        assert!(m.undercovering_by(1.0, 50));
        assert!(!m.undercovering_by(20.0, 50));
        assert!(!m.undercovering_by(1.0, 1000));
    }

    #[test]
    fn empty_window_reports_nan_and_never_fires() {
        let m = CoverageMonitor::new(0.1, 16, 0.0, 0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.coverage().is_nan());
        assert!(m.mean_width_log().is_nan());
        // Even at min_n = 0 with zero slack, an empty window must not read
        // as undercoverage (the n < max(min_n, 1) floor guards the NaN
        // comparison from ever deciding anything).
        assert!(!m.undercovering());
        assert!(!m.undercovering_by(0.0, 0));
    }

    #[test]
    fn all_miss_window_pegs_coverage_at_zero_and_fires_at_min_n() {
        let mut m = CoverageMonitor::new(0.1, 64, 3.0, 8);
        for i in 0..8 {
            assert!(!m.undercovering(), "fired at n = {i}, before min_n");
            m.push(false, 0.25);
        }
        assert_eq!(m.coverage(), 0.0);
        assert!((m.mean_width_log() - 0.25).abs() < 1e-6);
        assert!(m.undercovering(), "an all-miss window at min_n must fire");
        // Still pegged (and still firing) once the ring wraps: eviction of
        // all-miss entries must not drift the counters.
        for _ in 0..128 {
            m.push(false, 0.25);
        }
        assert_eq!(m.len(), 64);
        assert_eq!(m.coverage(), 0.0);
        assert!(m.undercovering());
        m.reset();
        assert!(!m.undercovering(), "reset must clear the trigger");
    }

    #[test]
    fn ring_evicts_and_reset_clears() {
        let mut m = CoverageMonitor::new(0.2, 4, 2.0, 1);
        for _ in 0..4 {
            m.push(false, 1.0);
        }
        for _ in 0..4 {
            m.push(true, 2.0);
        }
        assert_eq!(m.len(), 4);
        assert_eq!(m.coverage(), 1.0);
        assert!((m.mean_width_log() - 2.0).abs() < 1e-6);
        m.reset();
        assert!(m.is_empty());
        assert!(m.coverage().is_nan());
    }
}
