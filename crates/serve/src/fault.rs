//! Deterministic fault injection for fleet serving.
//!
//! A [`FaultPlan`] is a *schedule*, not a process: every fault is keyed to
//! the fleet-wide observation counter (a logical clock), and every
//! probabilistic choice (dropped or delayed merge summaries, retry jitter)
//! is drawn from one seeded RNG in the fleet's single-threaded control
//! path. The same plan and seed therefore produce bitwise-identical
//! decision sequences regardless of `PITOT_THREADS` — chaos runs are as
//! replayable as clean ones, which is what lets CI diff decision digests
//! across thread counts with faults enabled.
//!
//! The plan covers the failure domains `docs/RESILIENCE.md` walks through:
//!
//! - **Replica crashes** ([`ReplicaCrash`]): a replica disappears at one
//!   observation count and rejoins at a later one. Its shard's
//!   observations are lost while it is down; deadline queries fail over to
//!   the next live replica. On rejoin it replays the coordinator's held
//!   window summary ([`pitot_conformal::MergeableWindow::replica_entries`])
//!   and rejoins *warm*.
//! - **Coordinator outages** ([`CoordinatorOutage`]): merge rounds that
//!   fall inside an outage window cannot reach the coordinator. Replicas
//!   degrade gracefully: pairwise gossip merges of their window summaries
//!   (when [`FaultPlan::gossip_during_outage`] is on) keep calibrations
//!   near the union fit; otherwise staleness-triggered local fallback
//!   (see `ServeConfig::staleness_threshold`) serves honestly widened
//!   local bounds.
//! - **Lossy merges** ([`FaultPlan::drop_prob`] /
//!   [`FaultPlan::delay_prob`]): a replica's summary can be dropped (the
//!   coordinator retries with bounded exponential backoff) or delayed by a
//!   few rounds (it is absorbed late; the CRDT clock makes late delivery
//!   harmless).
//! - **Data faults** (fail-*noisy*, not fail-stop): observations whose
//!   runtimes are corrupted to NaN/Inf/zero/negative
//!   ([`FaultPlan::corrupt_prob`]), seeded scale-outlier bursts that
//!   multiply runtimes by `e^{log_scale}` for a few consecutive
//!   observations ([`FaultPlan::outlier_bursts`]), replayed stale
//!   summaries ([`FaultPlan::replay_prob`]), clock-skewed snapshots
//!   ([`FaultPlan::skew_prob`]), and a [`ByzantineReplica`] whose emitted
//!   summaries are tampered (via
//!   [`pitot_conformal::MergeableWindow::corrupt_run`]). Corrupted
//!   telemetry is *injected upstream of* the ingest guard and summary
//!   integrity checks, so the guarded arm of a chaos run exercises the
//!   full detect-quarantine-audit path.
//!
//! Data-fault draws come from a **second** seeded RNG, distinct from the
//! control-path RNG: injecting telemetry noise must not perturb the
//! drop/delay/gossip decision stream, and — because a muted and a
//! corrupt Byzantine replica consume identical data-fault draws — a
//! tamper-everything arm can be pinned bitwise against a never-delivers
//! oracle arm.
//!
//! Site failures mid-job are the orchestrator's half of the story — see
//! `pitot_orchestrator::SiteFault` for killing and re-queuing running jobs
//! in [`pitot_orchestrator::ClusterSim`].

/// One replica crash/rejoin cycle, scheduled on the fleet-wide observation
/// counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaCrash {
    /// Replica index that crashes.
    pub replica: usize,
    /// Fleet-wide observation count at which the replica goes down.
    pub at: usize,
    /// Fleet-wide observation count at which it rejoins (warm, by replaying
    /// the coordinator's held window summary). Must be `> at`.
    pub rejoin_at: usize,
}

/// One coordinator outage window: merge rounds scheduled in
/// `[from, until)` (fleet-wide observation counts) cannot reach the
/// coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordinatorOutage {
    /// First fleet-wide observation count inside the outage.
    pub from: usize,
    /// First fleet-wide observation count after the outage. Must be
    /// `> from`.
    pub until: usize,
}

/// One replica that stops being honest: from a scheduled observation
/// count onward, every summary it emits is tampered (or, in the oracle
/// mode, silently withheld).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzantineReplica {
    /// Replica index that turns Byzantine.
    pub replica: usize,
    /// Fleet-wide observation count from which its summaries misbehave.
    pub from: usize,
    /// Oracle mode: consume exactly the same data-fault RNG draws as the
    /// tampering replica would, but emit *nothing*. Because the summary
    /// integrity layer rejects every tampered summary, a fleet with a
    /// tampering replica must install bitwise-identical calibrations to
    /// its muted twin — the pin the `ext-poison` experiment asserts.
    pub mute: bool,
}

/// A deterministic, seeded fault schedule for a `FleetServer` (see the
/// module docs). [`FaultPlan::none`] is the failure-free identity;
/// builder-style methods add faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the control-path RNG behind drops, delays, retry jitter,
    /// and gossip pairings.
    pub seed: u64,
    /// Scheduled replica crash/rejoin cycles.
    pub crashes: Vec<ReplicaCrash>,
    /// Scheduled coordinator outage windows.
    pub outages: Vec<CoordinatorOutage>,
    /// Probability that a replica's summary is dropped in a coordinator
    /// merge round (retried with backoff). In `[0, 1)`.
    pub drop_prob: f32,
    /// Probability that a replica's summary is delayed (absorbed a few
    /// rounds late) instead of arriving in its round. In `[0, 1)`.
    pub delay_prob: f32,
    /// Maximum delay, in merge rounds, of a delayed summary (the actual
    /// delay is drawn uniformly from `1..=delay_rounds_max`). Must be ≥ 1
    /// when [`FaultPlan::delay_prob`] > 0.
    pub delay_rounds_max: usize,
    /// Base retry backoff in fleet-wide observations after a dropped
    /// summary: attempt `k` waits `retry_backoff << k` observations (plus
    /// seeded jitter in `0..retry_backoff`). Must be ≥ 1 when
    /// [`FaultPlan::drop_prob`] > 0.
    pub retry_backoff: usize,
    /// Retry attempts per dropped summary before the coordinator gives up
    /// until the next scheduled merge round (bounded retry, not a
    /// retry storm).
    pub max_retries: u32,
    /// Whether replicas run pairwise gossip merge rounds while the
    /// coordinator is unreachable (the graceful-degradation ladder's
    /// middle rung; disable to measure staleness fallback alone).
    pub gossip_during_outage: bool,
    /// Probability that an observation's reported runtime is corrupted to
    /// a non-finite or non-positive value (NaN, +∞, 0, −1, cycling
    /// deterministically). In `[0, 1)`.
    pub corrupt_prob: f32,
    /// Probability that an observation *starts* a scale-outlier burst
    /// (while a burst is live, no new one starts). In `[0, 1)`.
    pub outlier_prob: f32,
    /// Log-space shift applied to runtimes inside an outlier burst:
    /// `runtime ← runtime · e^{outlier_log_scale}`. Must be finite and
    /// nonzero when [`FaultPlan::outlier_prob`] > 0; negative values
    /// shrink runtimes (the direction that silently *under*-covers an
    /// unguarded window).
    pub outlier_log_scale: f32,
    /// Maximum burst length in observations (the actual length is drawn
    /// uniformly from `1..=outlier_burst_max`). Must be ≥ 1 when
    /// [`FaultPlan::outlier_prob`] > 0.
    pub outlier_burst_max: usize,
    /// Probability that, in a coordinator merge round, a replica's fresh
    /// summary is replaced by a replay of its last accepted one (a
    /// duplicated/stale delivery, rejected and counted by the integrity
    /// layer). In `[0, 1)`.
    pub replay_prob: f32,
    /// Probability that a replica's summary arrives with its snapshot
    /// clock skewed implausibly far forward (rejected and counted by the
    /// integrity layer). In `[0, 1)`.
    pub skew_prob: f32,
    /// The scheduled Byzantine replica, if any (see [`ByzantineReplica`]).
    pub byzantine: Option<ByzantineReplica>,
}

impl FaultPlan {
    /// The failure-free plan: no crashes, no outages, lossless merges.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            crashes: Vec::new(),
            outages: Vec::new(),
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_rounds_max: 1,
            retry_backoff: 4,
            max_retries: 3,
            gossip_during_outage: true,
            corrupt_prob: 0.0,
            outlier_prob: 0.0,
            outlier_log_scale: 0.0,
            outlier_burst_max: 1,
            replay_prob: 0.0,
            skew_prob: 0.0,
            byzantine: None,
        }
    }

    /// Adds one replica crash/rejoin cycle.
    pub fn crash(mut self, replica: usize, at: usize, rejoin_at: usize) -> Self {
        self.crashes.push(ReplicaCrash {
            replica,
            at,
            rejoin_at,
        });
        self
    }

    /// Adds one coordinator outage window over `[from, until)`.
    pub fn coordinator_outage(mut self, from: usize, until: usize) -> Self {
        self.outages.push(CoordinatorOutage { from, until });
        self
    }

    /// Sets the per-round summary drop probability.
    pub fn drop_summaries(mut self, prob: f32) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Sets the per-round summary delay probability and maximum delay.
    pub fn delay_summaries(mut self, prob: f32, max_rounds: usize) -> Self {
        self.delay_prob = prob;
        self.delay_rounds_max = max_rounds;
        self
    }

    /// Sets the per-observation runtime-corruption probability (NaN/∞/0/−1).
    pub fn corrupt_observations(mut self, prob: f32) -> Self {
        self.corrupt_prob = prob;
        self
    }

    /// Sets the scale-outlier burst schedule: start probability, log-space
    /// shift per corrupted runtime, and maximum burst length.
    pub fn outlier_bursts(mut self, prob: f32, log_scale: f32, max_len: usize) -> Self {
        self.outlier_prob = prob;
        self.outlier_log_scale = log_scale;
        self.outlier_burst_max = max_len;
        self
    }

    /// Sets the per-round stale-summary replay probability.
    pub fn replay_summaries(mut self, prob: f32) -> Self {
        self.replay_prob = prob;
        self
    }

    /// Sets the per-round clock-skew probability.
    pub fn skew_clocks(mut self, prob: f32) -> Self {
        self.skew_prob = prob;
        self
    }

    /// Schedules `replica` to emit tampered summaries from observation
    /// `from` onward.
    pub fn byzantine_replica(mut self, replica: usize, from: usize) -> Self {
        self.byzantine = Some(ByzantineReplica {
            replica,
            from,
            mute: false,
        });
        self
    }

    /// The oracle twin of [`FaultPlan::byzantine_replica`]: same RNG
    /// draws, but the replica's summaries are withheld instead of
    /// tampered (see [`ByzantineReplica::mute`]).
    pub fn mute_replica(mut self, replica: usize, from: usize) -> Self {
        self.byzantine = Some(ByzantineReplica {
            replica,
            from,
            mute: true,
        });
        self
    }

    /// Whether any fault is actually scheduled (a [`FaultPlan::none`] plan
    /// exercises only the bookkeeping).
    pub fn is_trivial(&self) -> bool {
        self.crashes.is_empty()
            && self.outages.is_empty()
            && self.drop_prob == 0.0
            && self.delay_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.outlier_prob == 0.0
            && self.replay_prob == 0.0
            && self.skew_prob == 0.0
            && self.byzantine.is_none()
    }

    /// Observation delay before retry attempt `attempt` (0-based) of a
    /// dropped summary: `(retry_backoff << attempt) + jitter`, saturating
    /// at `usize::MAX` instead of overflowing when the exponential
    /// escapes the machine word (large `max_retries` settings are valid
    /// configuration, not a panic).
    ///
    /// `jitter` is the caller's seeded draw from `0..retry_backoff`
    /// (debug-asserted); keeping the draw at the call site keeps all RNG
    /// consumption in the fleet's single-threaded control path.
    pub fn retry_delay(&self, attempt: u32, jitter: usize) -> usize {
        debug_assert!(
            jitter < self.retry_backoff.max(1),
            "retry jitter {jitter} outside 0..{}",
            self.retry_backoff
        );
        // `checked_shl` only guards the shift *amount*; a value whose top
        // bits shift out still wraps. Saturate on either.
        let base = if attempt <= self.retry_backoff.leading_zeros() {
            self.retry_backoff
                .checked_shl(attempt)
                .unwrap_or(usize::MAX)
        } else {
            usize::MAX
        };
        base.saturating_add(jitter)
    }

    /// Whether `obs` (a fleet-wide observation count) falls inside a
    /// scheduled coordinator outage.
    pub fn coordinator_down_at(&self, obs: usize) -> bool {
        self.outages.iter().any(|o| o.from <= obs && obs < o.until)
    }

    /// Checks internal consistency. `replicas` is the fleet size the plan
    /// will be installed into (crash targets must exist).
    ///
    /// # Panics
    ///
    /// Panics naming the offending field when a crash targets a
    /// nonexistent replica or rejoins before it went down, two crash
    /// windows of one replica overlap, an outage is empty or inverted, a
    /// probability leaves `[0, 1)`, or the retry/delay knobs are zero
    /// while their probabilities are nonzero.
    pub fn validate(&self, replicas: usize) {
        for (k, c) in self.crashes.iter().enumerate() {
            assert!(
                c.replica < replicas,
                "FaultPlan.crashes[{k}].replica = {} is invalid: the fleet \
                 has {replicas} replicas (valid indices: 0..{replicas})",
                c.replica
            );
            assert!(
                c.rejoin_at > c.at,
                "FaultPlan.crashes[{k}].rejoin_at = {} is invalid: a \
                 replica must rejoin strictly after it crashes (crash at = \
                 {}; use rejoin_at > at, or drop the crash entry)",
                c.rejoin_at,
                c.at
            );
            for (j, other) in self.crashes.iter().enumerate().skip(k + 1) {
                if other.replica == c.replica {
                    let disjoint = other.at >= c.rejoin_at || c.at >= other.rejoin_at;
                    assert!(
                        disjoint,
                        "FaultPlan.crashes[{j}] overlaps crashes[{k}] for \
                         replica {}: crash windows of one replica must be \
                         disjoint (separate [at, rejoin_at) intervals)",
                        c.replica
                    );
                }
            }
        }
        for (k, o) in self.outages.iter().enumerate() {
            assert!(
                o.until > o.from,
                "FaultPlan.outages[{k}].until = {} is invalid: an outage \
                 window must be non-empty (from = {}; use until > from, or \
                 drop the outage)",
                o.until,
                o.from
            );
        }
        assert!(
            (0.0..1.0).contains(&self.drop_prob),
            "FaultPlan.drop_prob = {} is invalid: the summary drop \
             probability must be in [0, 1) (1.0 would mean no merge ever \
             succeeds; 0.0 disables drops)",
            self.drop_prob
        );
        assert!(
            (0.0..1.0).contains(&self.delay_prob),
            "FaultPlan.delay_prob = {} is invalid: the summary delay \
             probability must be in [0, 1) (0.0 disables delays)",
            self.delay_prob
        );
        assert!(
            self.delay_prob == 0.0 || self.delay_rounds_max >= 1,
            "FaultPlan.delay_rounds_max = 0 is invalid while delay_prob = \
             {} > 0: a delayed summary must be due within ≥ 1 merge round \
             (default: 1; or set delay_prob = 0.0 to disable delays)",
            self.delay_prob
        );
        assert!(
            self.drop_prob == 0.0 || self.retry_backoff >= 1,
            "FaultPlan.retry_backoff = 0 is invalid while drop_prob = {} > \
             0: retry attempt k waits retry_backoff << k observations, so \
             the base must be ≥ 1 (default: 4; or set drop_prob = 0.0 to \
             disable drops)",
            self.drop_prob
        );
        assert!(
            (0.0..1.0).contains(&self.corrupt_prob),
            "FaultPlan.corrupt_prob = {} is invalid: the runtime corruption \
             probability must be in [0, 1) (1.0 would leave no clean \
             telemetry to calibrate on; 0.0 disables corruption)",
            self.corrupt_prob
        );
        assert!(
            (0.0..1.0).contains(&self.outlier_prob),
            "FaultPlan.outlier_prob = {} is invalid: the outlier-burst \
             start probability must be in [0, 1) (0.0 disables bursts)",
            self.outlier_prob
        );
        assert!(
            self.outlier_prob == 0.0
                || (self.outlier_log_scale.is_finite() && self.outlier_log_scale != 0.0),
            "FaultPlan.outlier_log_scale = {} is invalid while outlier_prob \
             = {} > 0: burst runtimes are multiplied by e^log_scale, so the \
             shift must be finite and nonzero (e.g. -2.0 shrinks runtimes \
             ~7.4x; or set outlier_prob = 0.0 to disable bursts)",
            self.outlier_log_scale,
            self.outlier_prob
        );
        assert!(
            self.outlier_prob == 0.0 || self.outlier_burst_max >= 1,
            "FaultPlan.outlier_burst_max = 0 is invalid while outlier_prob \
             = {} > 0: a burst must span ≥ 1 observation (default: 1; or \
             set outlier_prob = 0.0 to disable bursts)",
            self.outlier_prob
        );
        assert!(
            (0.0..1.0).contains(&self.replay_prob),
            "FaultPlan.replay_prob = {} is invalid: the stale-summary \
             replay probability must be in [0, 1) (0.0 disables replays)",
            self.replay_prob
        );
        assert!(
            (0.0..1.0).contains(&self.skew_prob),
            "FaultPlan.skew_prob = {} is invalid: the clock-skew \
             probability must be in [0, 1) (0.0 disables skew)",
            self.skew_prob
        );
        if let Some(b) = self.byzantine {
            assert!(
                b.replica < replicas,
                "FaultPlan.byzantine.replica = {} is invalid: the fleet has \
                 {replicas} replicas (valid indices: 0..{replicas})",
                b.replica
            );
        }
    }
}

/// What put a fleet into a degraded window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedCause {
    /// A replica was down (its shard's observations were lost and its
    /// queries failed over).
    ReplicaCrash {
        /// The crashed replica's index.
        replica: usize,
    },
    /// The coordinator was unreachable (merge rounds fell back to gossip
    /// or replicas went stale).
    CoordinatorOutage,
}

/// One degraded window's audit record: what was lost, and how the bounds
/// and admission decisions fared while the fault was live. Attribution is
/// to the **most recently opened** still-open window when several overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedWindow {
    /// What opened the window.
    pub cause: DegradedCause,
    /// Fleet-wide observation count at fault onset.
    pub from_obs: usize,
    /// Fleet-wide observation count at which recovery completed (rejoin
    /// for a crash; the first successful coordinator round after the
    /// outage cleared). `None` while the window is still open.
    pub until_obs: Option<usize>,
    /// Observations judged prequentially while the window was open.
    pub bounded: usize,
    /// Judged observations the served bound covered.
    pub covered: usize,
    /// Observations lost outright (routed to a down replica).
    pub lost_observations: usize,
    /// Admission decisions taken on degraded (stale-fallback) calibrations
    /// while the window was open.
    pub degraded_decisions: usize,
    /// Queries shed while the window was open.
    pub shed: usize,
    /// Admitted queries resolved as SLO misses while the window was open.
    pub slo_missed: usize,
}

impl DegradedWindow {
    /// Coverage of the served bounds inside this window (`NaN` if nothing
    /// was judged).
    pub fn coverage(&self) -> f32 {
        if self.bounded == 0 {
            f32::NAN
        } else {
            self.covered as f32 / self.bounded as f32
        }
    }
}

/// Why the coordinator (or a gossip partner) refused to absorb a window
/// summary. The first four map one-to-one onto
/// [`pitot_conformal::SummaryFault`] — structural lies the checksum and
/// sanity checks catch; the last two are clock-plausibility screens the
/// receiver runs on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RejectCause {
    /// The summary's recomputed checksum did not match its claimed one.
    BadChecksum,
    /// A score segment contained a NaN or infinity.
    NonFiniteScore,
    /// A score segment claimed to be sorted but was not.
    UnsortedRun,
    /// The summary's claimed cardinalities disagreed with its segments.
    CardinalityLie,
    /// The summary's clock was not newer than the last accepted one from
    /// the same replica on a freshness-guaranteed path (a duplicated or
    /// replayed send).
    Replayed,
    /// The summary's clock was implausibly far ahead of anything the fleet
    /// has observed.
    SkewedClock,
}

impl RejectCause {
    /// Maps a structural verification failure onto its audit cause.
    pub fn from_fault(fault: pitot_conformal::SummaryFault) -> Self {
        match fault {
            pitot_conformal::SummaryFault::ChecksumMismatch => Self::BadChecksum,
            pitot_conformal::SummaryFault::NonFiniteScore => Self::NonFiniteScore,
            pitot_conformal::SummaryFault::UnsortedRun => Self::UnsortedRun,
            pitot_conformal::SummaryFault::CardinalityMismatch => Self::CardinalityLie,
        }
    }
}

/// One rejected window summary's audit record: which replica's summary was
/// refused, when, and why — the reject-and-count half of the trust
/// boundary (the other half being that nothing rejected is ever absorbed,
/// so a Byzantine replica degrades only itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RejectedSummary {
    /// The replica whose summary (or gossip view segment) was at fault.
    pub replica: usize,
    /// Fleet-wide observation count when the rejection happened.
    pub at_obs: usize,
    /// Why it was refused.
    pub cause: RejectCause,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    fn message<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> String {
        let err = catch_unwind(f).expect_err("must panic");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic carries a message")
    }

    #[test]
    fn trivial_plan_validates_and_knows_it() {
        let p = FaultPlan::none(7);
        p.validate(4);
        assert!(p.is_trivial());
        assert!(!p.coordinator_down_at(0));
        let p = FaultPlan::none(7)
            .crash(1, 10, 20)
            .coordinator_outage(5, 9)
            .drop_summaries(0.2)
            .delay_summaries(0.1, 2);
        p.validate(4);
        assert!(!p.is_trivial());
        assert!(p.coordinator_down_at(5) && p.coordinator_down_at(8));
        assert!(!p.coordinator_down_at(9));
    }

    /// Each rejection names the offending field, its value, and the valid
    /// alternative — the PR 6 convention, one regression test per rule.
    #[test]
    fn rejects_out_of_range_crash_replica() {
        let m = message(|| FaultPlan::none(0).crash(4, 0, 1).validate(4));
        assert!(m.contains("FaultPlan.crashes[0].replica = 4"), "{m}");
        assert!(m.contains("0..4"), "valid alternatives: {m}");
    }

    #[test]
    fn rejects_rejoin_before_crash() {
        let m = message(|| FaultPlan::none(0).crash(0, 10, 10).validate(2));
        assert!(m.contains("FaultPlan.crashes[0].rejoin_at = 10"), "{m}");
        assert!(m.contains("rejoin_at > at"), "fix: {m}");
    }

    #[test]
    fn rejects_overlapping_crashes_of_one_replica() {
        let m = message(|| {
            FaultPlan::none(0)
                .crash(1, 10, 30)
                .crash(1, 20, 40)
                .validate(2)
        });
        assert!(
            m.contains("FaultPlan.crashes[1] overlaps crashes[0]"),
            "{m}"
        );
        assert!(m.contains("disjoint"), "fix: {m}");
        // Disjoint cycles for the same replica are fine.
        FaultPlan::none(0)
            .crash(1, 10, 20)
            .crash(1, 20, 40)
            .validate(2);
    }

    #[test]
    fn rejects_empty_outage() {
        let m = message(|| FaultPlan::none(0).coordinator_outage(5, 5).validate(1));
        assert!(m.contains("FaultPlan.outages[0].until = 5"), "{m}");
        assert!(m.contains("until > from"), "fix: {m}");
    }

    #[test]
    fn rejects_certain_drop() {
        let m = message(|| FaultPlan::none(0).drop_summaries(1.0).validate(1));
        assert!(m.contains("FaultPlan.drop_prob = 1"), "{m}");
        assert!(m.contains("[0, 1)"), "valid range: {m}");
    }

    #[test]
    fn rejects_out_of_range_delay_prob() {
        let m = message(|| FaultPlan::none(0).delay_summaries(-0.5, 2).validate(1));
        assert!(m.contains("FaultPlan.delay_prob = -0.5"), "{m}");
        assert!(m.contains("[0, 1)"), "valid range: {m}");
    }

    #[test]
    fn rejects_zero_delay_bound_with_delays_enabled() {
        let m = message(|| FaultPlan::none(0).delay_summaries(0.5, 0).validate(1));
        assert!(m.contains("FaultPlan.delay_rounds_max = 0"), "{m}");
        assert!(m.contains("delay_prob = 0.0"), "alternative: {m}");
        // Zero is fine while delays are disabled.
        FaultPlan::none(0).delay_summaries(0.0, 0).validate(1);
    }

    #[test]
    fn rejects_zero_backoff_with_drops_enabled() {
        let mut p = FaultPlan::none(0).drop_summaries(0.5);
        p.retry_backoff = 0;
        let m = message(move || p.validate(1));
        assert!(m.contains("FaultPlan.retry_backoff = 0"), "{m}");
        assert!(m.contains("drop_prob = 0.0"), "alternative: {m}");
    }

    #[test]
    fn data_fault_plan_validates_and_is_not_trivial() {
        let p = FaultPlan::none(3)
            .corrupt_observations(0.05)
            .outlier_bursts(0.02, -2.0, 6)
            .replay_summaries(0.1)
            .skew_clocks(0.1)
            .byzantine_replica(2, 100);
        p.validate(4);
        assert!(!p.is_trivial());
        // Each data fault alone also breaks triviality.
        assert!(!FaultPlan::none(0).corrupt_observations(0.1).is_trivial());
        assert!(!FaultPlan::none(0).outlier_bursts(0.1, 1.0, 2).is_trivial());
        assert!(!FaultPlan::none(0).replay_summaries(0.1).is_trivial());
        assert!(!FaultPlan::none(0).skew_clocks(0.1).is_trivial());
        assert!(!FaultPlan::none(0).mute_replica(0, 0).is_trivial());
    }

    #[test]
    fn rejects_certain_corruption() {
        let m = message(|| FaultPlan::none(0).corrupt_observations(1.0).validate(1));
        assert!(m.contains("FaultPlan.corrupt_prob = 1"), "{m}");
        assert!(m.contains("[0, 1)"), "valid range: {m}");
    }

    #[test]
    fn rejects_out_of_range_outlier_prob() {
        let m = message(|| FaultPlan::none(0).outlier_bursts(-0.1, 1.0, 2).validate(1));
        assert!(m.contains("FaultPlan.outlier_prob = -0.1"), "{m}");
        assert!(m.contains("[0, 1)"), "valid range: {m}");
    }

    #[test]
    fn rejects_zero_outlier_scale_with_bursts_enabled() {
        let m = message(|| FaultPlan::none(0).outlier_bursts(0.1, 0.0, 2).validate(1));
        assert!(m.contains("FaultPlan.outlier_log_scale = 0"), "{m}");
        assert!(m.contains("outlier_prob = 0.0"), "alternative: {m}");
        // NaN scale is rejected too; zero scale is fine while disabled.
        let m = message(|| {
            FaultPlan::none(0)
                .outlier_bursts(0.1, f32::NAN, 2)
                .validate(1)
        });
        assert!(m.contains("FaultPlan.outlier_log_scale = NaN"), "{m}");
        FaultPlan::none(0).outlier_bursts(0.0, 0.0, 0).validate(1);
    }

    #[test]
    fn rejects_zero_burst_length_with_bursts_enabled() {
        let m = message(|| FaultPlan::none(0).outlier_bursts(0.1, 1.0, 0).validate(1));
        assert!(m.contains("FaultPlan.outlier_burst_max = 0"), "{m}");
        assert!(m.contains("outlier_prob = 0.0"), "alternative: {m}");
    }

    #[test]
    fn rejects_out_of_range_replay_and_skew_probs() {
        let m = message(|| FaultPlan::none(0).replay_summaries(1.5).validate(1));
        assert!(m.contains("FaultPlan.replay_prob = 1.5"), "{m}");
        let m = message(|| FaultPlan::none(0).skew_clocks(1.5).validate(1));
        assert!(m.contains("FaultPlan.skew_prob = 1.5"), "{m}");
    }

    #[test]
    fn rejects_out_of_range_byzantine_replica() {
        let m = message(|| FaultPlan::none(0).byzantine_replica(4, 10).validate(4));
        assert!(m.contains("FaultPlan.byzantine.replica = 4"), "{m}");
        assert!(m.contains("0..4"), "valid alternatives: {m}");
    }

    proptest::proptest! {
        /// Retry-delay invariants: never panics (however large the
        /// attempt), jitter-bounded above the exponential base, and
        /// monotone in the attempt number even across the saturation
        /// boundary.
        #[test]
        fn retry_delay_is_bounded_and_monotone(
            backoff in 1usize..1000,
            attempt in 0u32..200,
            jitter_k in 0usize..1000,
        ) {
            let mut p = FaultPlan::none(0);
            p.retry_backoff = backoff;
            let jitter = jitter_k % backoff;
            let d = p.retry_delay(attempt, jitter);
            let base = p.retry_delay(attempt, 0);
            // Jitter adds at most backoff-1 (saturating).
            proptest::prop_assert!(d >= base);
            proptest::prop_assert!(d <= base.saturating_add(backoff - 1));
            // The un-jittered base is the saturating exponential.
            if attempt < 40 {
                let exact = backoff.checked_shl(attempt);
                proptest::prop_assert_eq!(base, exact.unwrap_or(usize::MAX));
            }
            // Monotone: the next attempt's floor clears this attempt's
            // ceiling (2·base ≥ base + backoff since base ≥ backoff).
            proptest::prop_assert!(p.retry_delay(attempt + 1, 0) >= d);
            // Saturation, not overflow, at absurd attempt counts.
            proptest::prop_assert_eq!(p.retry_delay(u32::MAX, 0), usize::MAX);
        }
    }

    #[test]
    fn degraded_window_coverage_is_guarded() {
        let w = DegradedWindow {
            cause: DegradedCause::CoordinatorOutage,
            from_obs: 0,
            until_obs: None,
            bounded: 0,
            covered: 0,
            lost_observations: 0,
            degraded_decisions: 0,
            shed: 0,
            slo_missed: 0,
        };
        assert!(w.coverage().is_nan());
        let w = DegradedWindow {
            bounded: 4,
            covered: 3,
            ..w
        };
        assert!((w.coverage() - 0.75).abs() < 1e-6);
    }
}
