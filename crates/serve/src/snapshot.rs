//! Lock-free read-side primitives for the concurrent serving runtime.
//!
//! Two small hand-rolled cells (no `arc-swap`, no `crossbeam` — the build
//! environment has no registry access) carry the concurrent runtime's
//! never-block-the-read-path guarantee:
//!
//! - [`SnapshotCell`]: an epoch-free, two-slot left/right cell holding an
//!   `Arc<T>`. Readers take a cheap reference-counted snapshot without ever
//!   locking; a writer installs a new value by preparing the inactive slot
//!   and flipping an index. Admission and deadline queries load the current
//!   [`PooledConformal`](crate::PooledConformal) through one of these, so a
//!   calibration install never stalls a prediction.
//! - [`SeqLock`]: a sequence-counter cell for small `Copy` telemetry
//!   (per-lane progress counters). Readers optimistically copy the payload
//!   and retry on a torn sequence; writers never wait for readers.
//!
//! Both are deliberately conservative: every atomic uses `SeqCst`, and the
//! safety arguments are spelled out inline. Oracle property tests at the
//! bottom stress each cell from multiple threads and assert no torn reads
//! (checksummed payloads) and no lost updates.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One slot of the two-slot cell: a value plus the count of readers
/// currently inside it.
struct Slot<T> {
    readers: AtomicUsize,
    value: UnsafeCell<Option<Arc<T>>>,
}

/// A two-slot left/right cell: lock-free `Arc<T>` snapshots for readers,
/// mutex-serialized installs for writers.
///
/// [`load`](Self::load) never blocks — at worst it retries a few times while
/// racing a concurrent flip. [`store`](Self::store) waits only for readers
/// that are *still inside the retiring slot*, never for future readers, so
/// installs complete as soon as in-flight loads finish.
pub struct SnapshotCell<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot readers should enter.
    active: AtomicUsize,
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads and mutates the
// inactive slot only after its reader count is zero (see `store`), so it is
// as thread-safe as `T` itself.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> Default for SnapshotCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SnapshotCell<T> {
    /// An empty cell: [`load`](Self::load) returns `None` until the first
    /// [`store`](Self::store).
    pub fn new() -> Self {
        Self {
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(None),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(None),
                },
            ],
            active: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// A cell pre-loaded with `value`.
    pub fn with_value(value: Arc<T>) -> Self {
        let cell = Self::new();
        cell.store(value);
        cell
    }

    /// Takes a snapshot of the current value without blocking.
    ///
    /// Lock-free: the loop body retries only when a writer flips the active
    /// slot between this reader's index load and its registration — at most
    /// once per concurrent install.
    pub fn load(&self) -> Option<Arc<T>> {
        loop {
            let i = self.active.load(Ordering::SeqCst);
            self.slots[i].readers.fetch_add(1, Ordering::SeqCst);
            // Re-check: if the active index still points here, any writer
            // that flips from now on must wait for our registered count
            // before mutating this slot, so the read below is safe.
            if self.active.load(Ordering::SeqCst) == i {
                // SAFETY: registered in `readers` with the slot confirmed
                // active; `store` mutates a slot only after it has been
                // inactive *and* its reader count has drained to zero.
                let value = unsafe { (*self.slots[i].value.get()).clone() };
                self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
                return value;
            }
            // A writer flipped under us; we may have registered in a slot it
            // is about to reuse. Back out and retry on the new active slot.
            self.slots[i].readers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Installs `value` as the current snapshot.
    ///
    /// Blocks other writers (mutex) and spins until readers still inside the
    /// slot being replaced have left; never blocks readers.
    pub fn store(&self, value: Arc<T>) {
        let _guard = self.writer.lock().unwrap();
        let inactive = 1 - self.active.load(Ordering::SeqCst);
        // Readers that registered in `inactive` before the previous flip are
        // draining; wait them out before touching the value. New readers all
        // land in the currently-active slot, so this terminates.
        while self.slots[inactive].readers.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `inactive` is not the active slot (readers re-check after
        // registering and back out), its old readers have drained, and the
        // writer mutex excludes other writers.
        unsafe {
            *self.slots[inactive].value.get() = Some(value);
        }
        self.active.store(inactive, Ordering::SeqCst);
    }
}

/// A sequence-lock cell for small `Copy` payloads: wait-free writes,
/// optimistic retrying reads.
///
/// The writer bumps the sequence to odd, writes the payload, bumps back to
/// even. A reader copies the payload between two sequence loads and retries
/// unless both loads agree on an even value — so a torn (mid-write) copy is
/// never returned. Multiple writers are serialized by an internal mutex;
/// readers never block and are never blocked.
pub struct SeqLock<T: Copy> {
    seq: AtomicU64,
    value: UnsafeCell<T>,
    writer: Mutex<()>,
}

// SAFETY: readers only return payload copies validated by the sequence
// protocol; writers are mutex-serialized.
unsafe impl<T: Copy + Send> Send for SeqLock<T> {}
unsafe impl<T: Copy + Send> Sync for SeqLock<T> {}

impl<T: Copy> SeqLock<T> {
    /// A cell holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            seq: AtomicU64::new(0),
            value: UnsafeCell::new(value),
            writer: Mutex::new(()),
        }
    }

    /// Publishes `value`. Wait-free with respect to readers.
    pub fn write(&self, value: T) {
        let _guard = self.writer.lock().unwrap();
        let s = self.seq.load(Ordering::SeqCst);
        self.seq.store(s + 1, Ordering::SeqCst); // odd: write in progress
                                                 // SAFETY: the writer mutex excludes other writers; readers validate
                                                 // the sequence and discard any copy taken while it was odd.
        unsafe {
            std::ptr::write_volatile(self.value.get(), value);
        }
        self.seq.store(s + 2, Ordering::SeqCst); // even: stable
    }

    /// Reads a consistent copy of the payload, retrying across concurrent
    /// writes.
    pub fn read(&self) -> T {
        loop {
            let s1 = self.seq.load(Ordering::SeqCst);
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: the copy may race a writer; the sequence re-check
            // below discards it in that case, and `T: Copy` means the
            // possibly-torn bytes are never dropped or dereferenced.
            let value = unsafe { std::ptr::read_volatile(self.value.get()) };
            std::sync::atomic::fence(Ordering::SeqCst);
            if self.seq.load(Ordering::SeqCst) == s1 {
                return value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn snapshot_cell_starts_empty_and_loads_stores() {
        let cell: SnapshotCell<u64> = SnapshotCell::new();
        assert!(cell.load().is_none());
        cell.store(Arc::new(7));
        assert_eq!(*cell.load().unwrap(), 7);
        cell.store(Arc::new(8));
        assert_eq!(*cell.load().unwrap(), 8);
        let seeded = SnapshotCell::with_value(Arc::new(3u64));
        assert_eq!(*seeded.load().unwrap(), 3);
    }

    #[test]
    fn snapshot_cell_old_snapshots_survive_installs() {
        let cell = SnapshotCell::with_value(Arc::new(vec![1u8; 64]));
        let old = cell.load().unwrap();
        cell.store(Arc::new(vec![2u8; 64]));
        cell.store(Arc::new(vec![3u8; 64]));
        // The pre-install snapshot is still intact (Arc keeps it alive).
        assert!(old.iter().all(|&b| b == 1));
        assert!(cell.load().unwrap().iter().all(|&b| b == 3));
    }

    /// Readers hammer the cell while a writer installs checksummed payloads;
    /// every loaded snapshot must be internally consistent (payload matches
    /// its checksum) — i.e. no reader ever observes a half-installed value.
    #[test]
    fn snapshot_cell_readers_never_see_torn_installs() {
        const READERS: usize = 3;
        const INSTALLS: u64 = 2_000;
        let cell = Arc::new(SnapshotCell::with_value(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut loads = 0u64;
                    // Check `stop` after the load, not before: on a 1-core
                    // box a reader may first be scheduled only after the
                    // writer finished, and it must still verify one snapshot.
                    loop {
                        let snap = cell.load().expect("seeded cell");
                        let (x, checksum) = *snap;
                        assert_eq!(checksum, x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                        loads += 1;
                        if stop.load(Ordering::SeqCst) {
                            return loads;
                        }
                    }
                })
            })
            .collect();
        for x in 1..=INSTALLS {
            cell.store(Arc::new((x, x.wrapping_mul(0x9E37_79B9_7F4A_7C15))));
        }
        stop.store(true, Ordering::SeqCst);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader made progress");
        }
        assert_eq!(cell.load().unwrap().0, INSTALLS);
    }

    #[test]
    fn seqlock_round_trips() {
        let cell = SeqLock::new([1u64, 2, 3]);
        assert_eq!(cell.read(), [1, 2, 3]);
        cell.write([4, 5, 6]);
        assert_eq!(cell.read(), [4, 5, 6]);
    }

    /// The no-torn-read oracle from the issue: N writer threads flip a
    /// checksummed payload under a seeded schedule while readers spin; any
    /// torn read would break `payload[last] == fnv(payload[..last])`.
    #[test]
    fn seqlock_reads_are_never_torn_under_writer_stress() {
        const WRITERS: usize = 2;
        const WRITES_PER: u64 = 4_000;
        fn checksummed(seed: u64) -> [u64; 8] {
            let mut p = [0u64; 8];
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
            for slot in p.iter_mut().take(7) {
                h = h.wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17) ^ seed;
                *slot = h;
            }
            p[7] = p[..7]
                .iter()
                .fold(0u64, |a, &v| (a ^ v).wrapping_mul(0x0000_0100_0000_01b3));
            p
        }
        let cell = Arc::new(SeqLock::new(checksummed(0)));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                // Same stop-after-read shape as the snapshot test: the
                // reader must verify at least one payload even if it is
                // first scheduled after the writers already finished.
                loop {
                    let p = cell.read();
                    let expect = p[..7]
                        .iter()
                        .fold(0u64, |a, &v| (a ^ v).wrapping_mul(0x0000_0100_0000_01b3));
                    assert_eq!(p[7], expect, "torn read: payload fails checksum");
                    reads += 1;
                    if stop.load(Ordering::SeqCst) {
                        return reads;
                    }
                }
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    // Seeded per-writer schedule: deterministic seeds, with
                    // an occasional yield to vary interleavings.
                    for i in 0..WRITES_PER {
                        let seed = (w as u64) << 32 | i;
                        cell.write(checksummed(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for t in writers {
            t.join().unwrap();
        }
        stop.store(true, Ordering::SeqCst);
        assert!(reader.join().unwrap() > 0, "reader made progress");
    }
}
