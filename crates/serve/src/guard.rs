//! The trustworthy-telemetry ingest guard: quarantine, never silently drop.
//!
//! PR 7's fleet assumed *fail-stop* faults — a replica is either correct or
//! absent. Real telemetry also fails *noisy*: NaN runtimes from a broken
//! probe, zero/negative durations from clock bugs, and scale outliers from
//! a mislabeled unit or a poisoned reporter. One such observation entering
//! the sliding calibration window shifts every quantile the paper's
//! guarantee is built on, silently, for everyone sharing the fleet
//! calibration.
//!
//! The guard screens every arriving observation **before** it is judged,
//! windowed, or monitored:
//!
//! 1. **Finite/bounds validation** — a runtime that is not a positive
//!    finite duration is quarantined ([`QuarantineCause::NonFiniteRuntime`]
//!    / [`QuarantineCause::NonPositiveRuntime`]) instead of panicking (the
//!    unguarded server keeps the fail-stop panic).
//! 2. **Robust MAD screen** — the arrival's head-0 nonconformity score is
//!    compared against the window's median via the median absolute
//!    deviation: `|s − median| > k · 1.4826 · MAD` quarantines
//!    ([`QuarantineCause::MadOutlier`]). The median/MAD pair tolerates up
//!    to half the window being contaminated, which is exactly the property
//!    a poisoning screen needs — a mean/variance screen would be dragged
//!    toward the poison it is screening for.
//!
//! Nothing is ever dropped silently: every quarantined observation lands
//! in a bounded audit ring ([`QuarantineRecord`]) *and* a cumulative
//! per-cause counter ([`GuardStats`]), and the two are tied by the
//! [`GuardStats::is_consistent`] identity that the closed-loop tests
//! assert. The quarantine buffer is an audit trail, not a dead-letter
//! queue: entries age out of the ring, but the counters never lie about
//! how many there were.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Why an observation was quarantined instead of entering the calibration
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineCause {
    /// The reported runtime was NaN or infinite.
    NonFiniteRuntime,
    /// The reported runtime was zero or negative (no positive duration —
    /// its log-space target is undefined).
    NonPositiveRuntime,
    /// The observation's head-0 nonconformity score failed the robust MAD
    /// outlier screen against the current window.
    MadOutlier,
    /// The entry was purged from the window retroactively by a miscoverage
    /// watchdog rollback (it passed the ingest screen but a later, cleaner
    /// window exposed it).
    WatchdogRollback,
}

/// One quarantined observation: the audit record proving nothing was
/// dropped silently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Server observation ordinal (streamed observations consumed,
    /// including this one) at quarantine time.
    pub at: u64,
    /// Why it was quarantined.
    pub cause: QuarantineCause,
    /// Raw IEEE-754 bits of the reported runtime — bits, not the float,
    /// because the interesting offenders (NaN, ±∞) have no faithful JSON
    /// representation. Recover with [`QuarantineRecord::runtime_s`].
    pub runtime_bits: u32,
    /// The head-0 nonconformity score that was screened, when one was
    /// computable (`None` for runtime-level causes — a NaN runtime has no
    /// score). Always finite when present.
    pub score: Option<f32>,
}

impl QuarantineRecord {
    /// The reported runtime reconstructed from its stored bits.
    pub fn runtime_s(&self) -> f32 {
        f32::from_bits(self.runtime_bits)
    }
}

/// Cumulative quarantine counters — the "zero silent drops" ledger. The
/// total always equals the sum of the per-cause counters
/// ([`GuardStats::is_consistent`]); records may age out of the bounded
/// audit ring, counters never decrease.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardStats {
    /// Observations quarantined, all causes.
    pub quarantined: usize,
    /// NaN/infinite reported runtimes.
    pub nonfinite_runtimes: usize,
    /// Zero or negative reported runtimes.
    pub nonpositive_runtimes: usize,
    /// Robust MAD-screen rejections at ingest.
    pub mad_outliers: usize,
    /// Window entries purged retroactively by watchdog rollbacks.
    pub watchdog_purged: usize,
    /// Miscoverage-watchdog firings (each may purge zero or more entries).
    pub watchdog_fires: usize,
}

impl GuardStats {
    /// The zero-silent-drops identity: the total equals the sum of the
    /// per-cause counters.
    pub fn is_consistent(&self) -> bool {
        self.quarantined
            == self.nonfinite_runtimes
                + self.nonpositive_runtimes
                + self.mad_outliers
                + self.watchdog_purged
    }

    /// Elementwise sum, for fleet-level aggregation across replicas.
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            quarantined: self.quarantined + other.quarantined,
            nonfinite_runtimes: self.nonfinite_runtimes + other.nonfinite_runtimes,
            nonpositive_runtimes: self.nonpositive_runtimes + other.nonpositive_runtimes,
            mad_outliers: self.mad_outliers + other.mad_outliers,
            watchdog_purged: self.watchdog_purged + other.watchdog_purged,
            watchdog_fires: self.watchdog_fires + other.watchdog_fires,
        }
    }
}

/// One miscoverage-watchdog firing: the audit record of a
/// quarantine-rollback rescore (see `PitotServer` docs; the
/// `DegradedWindow` analogue for poisoning).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogIncident {
    /// Server observation ordinal when the watchdog fired.
    pub at: u64,
    /// The rolling prequential coverage that tripped it (finite).
    pub coverage: f32,
    /// Window entries purged by the rollback's robust re-screen.
    pub purged: usize,
    /// Window entries that survived the re-screen.
    pub kept: usize,
}

/// The per-server guard state: configuration excerpts, cumulative
/// counters, and the bounded quarantine audit ring.
#[derive(Debug, Clone)]
pub(crate) struct IngestGuard {
    retain: usize,
    stats: GuardStats,
    records: VecDeque<QuarantineRecord>,
}

impl IngestGuard {
    pub(crate) fn new(retain: usize) -> Self {
        Self {
            retain: retain.max(1),
            stats: GuardStats::default(),
            records: VecDeque::new(),
        }
    }

    /// The runtime-level quarantine cause for a reported duration, if any
    /// (the check the unguarded server expresses as a panic).
    pub(crate) fn runtime_cause(runtime_s: f32) -> Option<QuarantineCause> {
        if !runtime_s.is_finite() {
            Some(QuarantineCause::NonFiniteRuntime)
        } else if runtime_s <= 0.0 {
            Some(QuarantineCause::NonPositiveRuntime)
        } else {
            None
        }
    }

    /// Quarantines one observation: bump the cause counter and the total,
    /// append to the audit ring (evicting past the retention bound), and
    /// return the record.
    pub(crate) fn quarantine(
        &mut self,
        at: u64,
        runtime_s: f32,
        score: Option<f32>,
        cause: QuarantineCause,
    ) -> QuarantineRecord {
        self.stats.quarantined += 1;
        match cause {
            QuarantineCause::NonFiniteRuntime => self.stats.nonfinite_runtimes += 1,
            QuarantineCause::NonPositiveRuntime => self.stats.nonpositive_runtimes += 1,
            QuarantineCause::MadOutlier => self.stats.mad_outliers += 1,
            QuarantineCause::WatchdogRollback => self.stats.watchdog_purged += 1,
        }
        let record = QuarantineRecord {
            at,
            cause,
            runtime_bits: runtime_s.to_bits(),
            score,
        };
        self.records.push_back(record);
        if self.records.len() > self.retain {
            self.records.pop_front();
        }
        record
    }

    pub(crate) fn record_watchdog_fire(&mut self) {
        self.stats.watchdog_fires += 1;
    }

    pub(crate) fn stats(&self) -> GuardStats {
        self.stats
    }

    pub(crate) fn records(&self) -> impl Iterator<Item = &QuarantineRecord> + '_ {
        self.records.iter()
    }
}

/// Median of an ascending (under `total_cmp`) slice: the middle element,
/// or the midpoint of the two middles for even lengths.
fn median_sorted(sorted: &[f32]) -> f32 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Robust location/scale of an ascending score slice: the median and the
/// MAD-based σ estimate `1.4826 · median(|s − median|)` (the Gaussian
/// consistency constant). Returns σ = 0 when more than half the scores
/// are identical — callers treat that as "no scale estimate" and pass the
/// screen rather than quarantining everything off-median.
pub(crate) fn robust_scale(sorted: &[f32]) -> (f32, f32) {
    debug_assert!(!sorted.is_empty(), "robust scale of an empty slice");
    let med = median_sorted(sorted);
    let mut dev: Vec<f32> = sorted.iter().map(|s| (s - med).abs()).collect();
    dev.sort_unstable_by(f32::total_cmp);
    (med, 1.4826 * median_sorted(&dev))
}

/// Whether score `s` fails the robust screen `|s − median| > k·σ̂` against
/// the given ascending window scores. Never fails when the scale estimate
/// degenerates to zero (see [`robust_scale`]).
pub(crate) fn is_mad_outlier(sorted: &[f32], s: f32, k: f32) -> bool {
    let (med, sigma) = robust_scale(sorted);
    sigma > 0.0 && (s - med).abs() > k * sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_scale_matches_hand_computation() {
        // scores 0..7: median 3.5; deviations {0.5,0.5,1.5,1.5,2.5,2.5,3.5,3.5} → MAD 2.0.
        let s: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let (med, sigma) = robust_scale(&s);
        assert!((med - 3.5).abs() < 1e-6);
        assert!((sigma - 1.4826 * 2.0).abs() < 1e-4);
        // Odd length: median is the middle element.
        let (med, _) = robust_scale(&[1.0, 2.0, 9.0]);
        assert!((med - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mad_screen_is_immune_to_minority_contamination() {
        // 75% clean scores near 0, 25% poisoned at −50: the median and MAD
        // stay with the clean mass, so a clean arrival passes and a
        // poisoned one fails — the property a mean/variance screen lacks.
        let mut s: Vec<f32> = (0..30).map(|i| (i as f32 - 15.0) * 0.1).collect();
        s.extend((0..10).map(|_| -50.0f32));
        s.sort_unstable_by(f32::total_cmp);
        assert!(!is_mad_outlier(&s, 0.3, 8.0), "clean arrival quarantined");
        assert!(is_mad_outlier(&s, -50.0, 8.0), "poison passed the screen");
    }

    #[test]
    fn degenerate_scale_passes_everything() {
        // All-identical scores: MAD = 0, no scale estimate — the screen
        // must pass rather than quarantine every off-median arrival.
        let s = vec![1.0f32; 9];
        assert!(!is_mad_outlier(&s, 100.0, 8.0));
    }

    #[test]
    fn quarantine_counts_causes_and_bounds_the_ring() {
        let mut g = IngestGuard::new(2);
        g.quarantine(1, f32::NAN, None, QuarantineCause::NonFiniteRuntime);
        g.quarantine(2, -1.0, None, QuarantineCause::NonPositiveRuntime);
        g.quarantine(3, 4.0, Some(9.0), QuarantineCause::MadOutlier);
        g.quarantine(4, 5.0, Some(-9.0), QuarantineCause::WatchdogRollback);
        let s = g.stats();
        assert!(s.is_consistent());
        assert_eq!(s.quarantined, 4);
        assert_eq!(
            (
                s.nonfinite_runtimes,
                s.nonpositive_runtimes,
                s.mad_outliers,
                s.watchdog_purged
            ),
            (1, 1, 1, 1)
        );
        // Ring keeps only the newest `retain` records; counters keep all.
        let held: Vec<u64> = g.records().map(|r| r.at).collect();
        assert_eq!(held, vec![3, 4]);
        // NaN runtimes survive the bits round-trip.
        let rec = g.quarantine(5, f32::NAN, None, QuarantineCause::NonFiniteRuntime);
        assert!(rec.runtime_s().is_nan());
    }

    #[test]
    fn runtime_cause_classifies_the_fail_stop_domain() {
        assert_eq!(
            IngestGuard::runtime_cause(f32::NAN),
            Some(QuarantineCause::NonFiniteRuntime)
        );
        assert_eq!(
            IngestGuard::runtime_cause(f32::INFINITY),
            Some(QuarantineCause::NonFiniteRuntime)
        );
        assert_eq!(
            IngestGuard::runtime_cause(0.0),
            Some(QuarantineCause::NonPositiveRuntime)
        );
        assert_eq!(
            IngestGuard::runtime_cause(-3.0),
            Some(QuarantineCause::NonPositiveRuntime)
        );
        assert_eq!(IngestGuard::runtime_cause(1.5), None);
    }

    #[test]
    fn guard_stats_merge_elementwise() {
        let a = GuardStats {
            quarantined: 3,
            nonfinite_runtimes: 1,
            nonpositive_runtimes: 0,
            mad_outliers: 2,
            watchdog_purged: 0,
            watchdog_fires: 1,
        };
        let b = GuardStats {
            quarantined: 2,
            nonfinite_runtimes: 0,
            nonpositive_runtimes: 1,
            mad_outliers: 0,
            watchdog_purged: 1,
            watchdog_fires: 0,
        };
        let m = a.merged(&b);
        assert!(a.is_consistent() && b.is_consistent() && m.is_consistent());
        assert_eq!(m.quarantined, 5);
        assert_eq!(m.watchdog_fires, 1);
    }
}
