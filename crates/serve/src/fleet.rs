//! Multi-replica serving: sharded replicas, one fleet calibration.
//!
//! The deployment the paper sketches is a *fleet* of edge sites feeding one
//! conformal predictor. A single [`crate::PitotServer`] cannot be that
//! predictor — each site sees only its own completions — but the merge
//! protocol of [`pitot_conformal::MergeableWindow`] makes the fleet view
//! cheap: every replica keeps its local sliding window, the coordinator
//! merges window *summaries* (sorted-run segments, no raw observations) on
//! a cadence, fits one fleet-level [`pitot_conformal::PooledConformal`] on
//! the union — bitwise identical to what a centralized server holding all
//! the windows would fit — and installs it back into every replica. Validity
//! rests on the same exchangeability-of-splits argument that justifies the
//! moving calibration set in the first place: the union of per-replica
//! windows is just another split of the fleet's recent history.
//!
//! On top of the merged calibration sits SLO-aware admission
//! ([`crate::AdmissionQueue`]): queries carry deadlines and are admitted or
//! shed by the conformal bound's upper edge — the first place the intervals
//! drive a control decision instead of being reported.
//!
//! Everything stays deterministic: sharding is a pure hash, merges happen on
//! a fixed observation cadence, and one event sequence yields one output
//! sequence regardless of replica count (each replica's stream is disjoint).

use crate::admission::{AdmissionDecision, AdmissionQueue};
use crate::config::FleetConfig;
use crate::server::{ObservedFeedback, PitotServer, Prediction};
use pitot::TrainedPitot;
use pitot_conformal::{MergeableWindow, PooledConformal, PredictionSet};
use pitot_testbed::{Dataset, Observation};

/// A placement question with an SLO attached: "will `workload` on
/// `platform` next to `interferers` finish within `deadline_s` seconds?"
#[derive(Debug, Clone)]
pub struct DeadlineQuery {
    /// Caller-chosen correlation id (must be unique among unresolved
    /// queries; echoed on the outcome and used by
    /// [`FleetServer::resolve`]).
    pub id: u64,
    /// Workload catalog index.
    pub workload: u32,
    /// Platform catalog index.
    pub platform: u32,
    /// Workloads co-resident on the platform.
    pub interferers: Vec<u32>,
    /// Relative deadline budget in seconds.
    pub deadline_s: f64,
}

/// What the fleet decided for one deadline query.
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// The query's correlation id.
    pub id: u64,
    /// Replica that answered the query.
    pub replica: usize,
    /// Admit or shed (with the reason).
    pub decision: AdmissionDecision,
    /// The prediction the decision was made on; `prediction.bound_s` is the
    /// conformal upper edge compared against the deadline.
    pub prediction: Prediction,
}

/// Aggregated fleet counters: per-replica serving stats summed, plus the
/// coordinator's own merge and admission records.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetStats {
    /// Observations consumed across all replicas.
    pub observations: usize,
    /// Queries answered across all replicas.
    pub queries: usize,
    /// Prequentially covered observations (served bound ≥ realized).
    pub covered: usize,
    /// Observations judged prequentially.
    pub bounded: usize,
    /// Coordinator merge rounds performed.
    pub merges: usize,
    /// Admission decision counters.
    pub admission: crate::admission::AdmissionStats,
}

impl FleetStats {
    /// Fleet-wide prequential coverage (`NaN` before any observation).
    pub fn coverage(&self) -> f32 {
        if self.bounded == 0 {
            f32::NAN
        } else {
            self.covered as f32 / self.bounded as f32
        }
    }
}

/// The sharded serving layer: N replica [`PitotServer`]s on disjoint event
/// streams, one merged fleet calibration, and SLO-aware admission (see the
/// module docs).
pub struct FleetServer {
    cfg: FleetConfig,
    replicas: Vec<PitotServer>,
    /// The coordinator's converged view of every replica window.
    merged: MergeableWindow,
    fleet_conformal: Option<PooledConformal>,
    admission: AdmissionQueue,
    xis: Vec<f32>,
    since_merge: usize,
    merges: usize,
}

impl std::fmt::Debug for FleetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetServer")
            .field("replicas", &self.replicas.len())
            .field("merges", &self.merges)
            .field("has_fleet_conformal", &self.fleet_conformal.is_some())
            .field("admission", self.admission.stats())
            .finish_non_exhaustive()
    }
}

impl FleetServer {
    /// Builds a fleet of `cfg.replicas` servers around clones of one
    /// trained model and dataset. Each replica's local refresh cadence is
    /// overridden to "never": the coordinator owns every calibration
    /// refresh, so replicas serve exactly the fleet-level bounds between
    /// merges.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`FleetConfig::validate`]).
    pub fn new(trained: TrainedPitot, dataset: &Dataset, cfg: FleetConfig) -> Self {
        cfg.validate();
        let mut serve_cfg = cfg.serve.clone();
        // The coordinator owns refresh: local refits must never overwrite
        // an installed fleet calibration between merges.
        serve_cfg.refresh_every = usize::MAX;
        let xis = trained.model.config().objective.xis();
        let replicas: Vec<PitotServer> = (0..cfg.replicas)
            .map(|_| PitotServer::new(trained.clone(), dataset.clone(), serve_cfg.clone()))
            .collect();
        let n_heads = trained.model.n_heads();
        let admission = AdmissionQueue::new(cfg.admission.clone());
        Self {
            cfg,
            replicas,
            merged: MergeableWindow::empty(n_heads),
            fleet_conformal: None,
            admission,
            xis,
            since_merge: 0,
            merges: 0,
        }
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The replica a `(workload, platform)` pair is sharded to: a pure
    /// deterministic hash, so one entity's events always land on the same
    /// replica (disjoint streams by construction).
    pub fn shard_for(&self, workload: u32, platform: u32) -> usize {
        // Fibonacci hashing over the packed pair; any fixed mixing works,
        // it only has to be deterministic and reasonably balanced.
        let key = (u64::from(workload) << 32) | u64::from(platform);
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 33) % self.replicas.len() as u64) as usize
    }

    /// Seeds every replica's calibration window from disjoint round-robin
    /// shards of `idx` (e.g. the trained split's validation half), then
    /// runs an immediate merge so the fleet starts on a fleet-level
    /// calibration.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-range index.
    pub fn seed_calibration(&mut self, idx: &[usize]) {
        assert!(!idx.is_empty(), "cannot seed from an empty index set");
        let n = self.replicas.len();
        let mut shards: Vec<Vec<usize>> = vec![Vec::with_capacity(idx.len().div_ceil(n)); n];
        for (i, &v) in idx.iter().enumerate() {
            shards[i % n].push(v);
        }
        for (replica, shard) in self.replicas.iter_mut().zip(&shards) {
            if !shard.is_empty() {
                replica.seed_calibration(shard);
            }
        }
        self.merge_now();
    }

    /// Routes one observation to its shard at simulated time `at_s` (must
    /// be monotone non-decreasing per replica). Returns the shard index and
    /// the replica's prequential feedback. Every
    /// [`FleetConfig::merge_every`]-th observation triggers a coordinator
    /// merge + fleet-wide install.
    pub fn observe(&mut self, at_s: f64, obs: Observation) -> (usize, ObservedFeedback) {
        let r = self.shard_for(obs.workload, obs.platform);
        (r, self.observe_at(r, at_s, obs))
    }

    /// [`FleetServer::observe`] with an explicit replica — for callers that
    /// partition streams themselves (per-site deployments where the shard
    /// is the site).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range, or as
    /// [`PitotServer::on_event`] panics.
    pub fn observe_at(&mut self, replica: usize, at_s: f64, obs: Observation) -> ObservedFeedback {
        let fb = self.replicas[replica]
            .on_event(at_s, crate::server::Event::Observe(obs))
            .observed
            .expect("observation events produce feedback");
        self.since_merge += 1;
        if self.since_merge >= self.cfg.merge_every {
            self.merge_now();
        }
        fb
    }

    /// Answers one deadline query and decides admission by the conformal
    /// upper edge: admit iff `bound_s + slack ≤ deadline_s` and the backlog
    /// has room. The decision is recorded; report the realized runtime via
    /// [`FleetServer::resolve`] to score it.
    ///
    /// # Panics
    ///
    /// Panics if `q.id` is already pending, or on an out-of-catalog
    /// workload/platform/interferer.
    pub fn deadline_query(&mut self, q: DeadlineQuery) -> AdmissionOutcome {
        let replica = self.shard_for(q.workload, q.platform);
        let prediction = self.replicas[replica].query_now(q.workload, q.platform, &q.interferers);
        let decision = self
            .admission
            .decide(q.id, f64::from(prediction.bound_s), q.deadline_s);
        AdmissionOutcome {
            id: q.id,
            replica,
            decision,
            prediction,
        }
    }

    /// Reports the realized runtime of a decided query, scoring its
    /// admission decision (SLO met/missed for admitted queries,
    /// would-have-met/missed audit for shed ones). Returns whether the
    /// query had been admitted, or `None` for an unknown id.
    pub fn resolve(&mut self, id: u64, realized_s: f64) -> Option<bool> {
        self.admission.resolve(id, realized_s)
    }

    /// Runs a coordinator merge round now: absorbs every replica's window
    /// summary into the converged fleet view, fits the fleet calibration on
    /// the union, and installs it into every replica. A no-op (beyond
    /// resetting the cadence) while every window is still empty.
    pub fn merge_now(&mut self) {
        self.since_merge = 0;
        for (r, replica) in self.replicas.iter().enumerate() {
            // Skip replicas whose windows have not advanced since the
            // last merge: their held run is already current, and a
            // snapshot would deep-copy the sorted slices for nothing.
            if self.merged.replica_clock(r as u64) == Some(replica.window_clock()) {
                continue;
            }
            self.merged.absorb(&replica.window_summary(r as u64));
        }
        if self.merged.is_empty() {
            return;
        }
        let scored = self.merged.to_scored();
        // Fleet head selection never uses a validation set (FleetConfig
        // rejects TightestOnValidation), so an empty selection set is fine.
        let empty_preds: Vec<Vec<f32>> = vec![Vec::new(); self.merged.n_heads()];
        let conformal = PooledConformal::fit_scored(
            &scored,
            &PredictionSet {
                predictions: &empty_preds,
                targets_log: &[],
                pools: &[],
            },
            &self.xis,
            self.cfg.serve.selection,
            self.cfg.serve.epsilon,
        );
        for replica in &mut self.replicas {
            replica.install_calibration(conformal.clone());
        }
        self.fleet_conformal = Some(conformal);
        self.merges += 1;
    }

    /// The currently installed fleet-level calibration (absent until the
    /// first merge finds a non-empty window).
    pub fn fleet_conformal(&self) -> Option<&PooledConformal> {
        self.fleet_conformal.as_ref()
    }

    /// One replica's server (e.g. for its local stats or window).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn replica(&self, replica: usize) -> &PitotServer {
        &self.replicas[replica]
    }

    /// Aggregated counters across replicas plus coordinator-side records.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats {
            merges: self.merges,
            admission: *self.admission.stats(),
            ..FleetStats::default()
        };
        for r in &self.replicas {
            let rs = r.stats();
            s.observations += rs.observations;
            s.queries += rs.queries;
            s.covered += rs.covered;
            s.bounded += rs.bounded;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::AdmissionConfig;
    use pitot::{train, Objective, PitotConfig};
    use pitot_conformal::HeadSelection;
    use pitot_testbed::{split::Split, Testbed, TestbedConfig};
    use rand::{seq::SliceRandom, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Dataset, Split, TrainedPitot) {
        let testbed = Testbed::generate(&TestbedConfig::small());
        let dataset = testbed.collect_dataset();
        let split = Split::stratified(&dataset, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 300;
        let trained = train(&dataset, &split, &cfg);
        (dataset, split, trained)
    }

    fn fleet_cfg(replicas: usize, merge_every: usize) -> FleetConfig {
        let mut serve = ServeConfig::at(0.1);
        serve.window = 128;
        serve.selection = HeadSelection::NaiveXi;
        FleetConfig {
            serve,
            replicas,
            merge_every,
            admission: AdmissionConfig::default(),
        }
    }

    #[test]
    fn fleet_matches_centralized_calibration_bitwise() {
        // A 3-replica fleet and a 1-replica "fleet" (same total window
        // budget) fed the same stream must install the identical
        // calibration whenever their union windows coincide — here the
        // windows are large enough that nothing evicts, so after a merge
        // at the same point the union is literally the same set.
        let (dataset, split, trained) = fixture();
        let mut fleet = FleetServer::new(trained.clone(), &dataset, fleet_cfg(3, usize::MAX));
        let mut single = FleetServer::new(trained, &dataset, fleet_cfg(1, usize::MAX));

        let mut idx = split.test.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        idx.shuffle(&mut rng);
        idx.truncate(100);
        for (t, &i) in idx.iter().enumerate() {
            let obs = dataset.observations[i].clone();
            fleet.observe(t as f64, obs.clone());
            single.observe(t as f64, obs);
        }
        fleet.merge_now();
        single.merge_now();
        let (a, b) = (
            fleet.fleet_conformal().expect("fleet calibrated"),
            single.fleet_conformal().expect("single calibrated"),
        );
        assert_eq!(a.pool_calibrations(), b.pool_calibrations());
        for pool in 0..4 {
            assert_eq!(a.calibration_for(pool), b.calibration_for(pool));
        }
    }

    #[test]
    fn shards_are_disjoint_and_stable() {
        let (dataset, split, trained) = fixture();
        let fleet = FleetServer::new(trained, &dataset, fleet_cfg(4, 32));
        for &i in split.test.iter().take(200) {
            let o = &dataset.observations[i];
            let r = fleet.shard_for(o.workload, o.platform);
            assert!(r < 4);
            assert_eq!(r, fleet.shard_for(o.workload, o.platform));
        }
    }

    #[test]
    fn admission_sheds_infeasible_deadlines_and_scores_them() {
        let (dataset, split, trained) = fixture();
        let mut fleet = FleetServer::new(trained, &dataset, fleet_cfg(2, 64));
        fleet.seed_calibration(&split.val);

        let mut admitted = 0usize;
        let mut shed = 0usize;
        for (j, &i) in split.test.iter().take(120).enumerate() {
            let o = &dataset.observations[i];
            // Alternate generous and impossible budgets.
            let deadline = if j % 2 == 0 {
                f64::from(o.runtime_s) * 50.0
            } else {
                f64::from(o.runtime_s) * 1e-4
            };
            let out = fleet.deadline_query(DeadlineQuery {
                id: j as u64,
                workload: o.workload,
                platform: o.platform,
                interferers: o.interferers.clone(),
                deadline_s: deadline,
            });
            if out.decision.admitted() {
                admitted += 1;
            } else {
                shed += 1;
            }
            assert_eq!(
                fleet.resolve(j as u64, f64::from(o.runtime_s)),
                Some(out.decision.admitted())
            );
        }
        assert!(admitted > 0, "generous deadlines should admit");
        assert!(shed > 0, "impossible deadlines should shed");
        let stats = fleet.stats();
        assert_eq!(stats.admission.decisions(), 120);
        // Every impossible deadline was a correct shed; generous ones that
        // were admitted should overwhelmingly attain.
        assert!(stats.admission.shed_would_have_missed > 0);
        assert!(
            stats.admission.attainment() > 0.9,
            "attainment {} too low for 50x budgets",
            stats.admission.attainment()
        );
    }

    #[test]
    fn merge_cadence_counts_rounds() {
        let (dataset, split, trained) = fixture();
        let mut fleet = FleetServer::new(trained, &dataset, fleet_cfg(2, 10));
        for (t, &i) in split.test.iter().take(35).enumerate() {
            fleet.observe(t as f64, dataset.observations[i].clone());
        }
        // 35 observations at cadence 10 → 3 merge rounds.
        assert_eq!(fleet.stats().merges, 3);
        assert!(fleet.fleet_conformal().is_some());
        assert_eq!(fleet.stats().observations, 35);
        assert_eq!(
            fleet.stats().coverage(),
            fleet.stats().covered as f32 / 35.0
        );
    }
}
