//! Multi-replica serving: sharded replicas, one fleet calibration.
//!
//! The deployment the paper sketches is a *fleet* of edge sites feeding one
//! conformal predictor. A single [`crate::PitotServer`] cannot be that
//! predictor — each site sees only its own completions — but the merge
//! protocol of [`pitot_conformal::MergeableWindow`] makes the fleet view
//! cheap: every replica keeps its local sliding window, the coordinator
//! merges window *summaries* (sorted-run segments, no raw observations) on
//! a cadence, fits one fleet-level [`pitot_conformal::PooledConformal`] on
//! the union — bitwise identical to what a centralized server holding all
//! the windows would fit — and installs it back into every replica. Validity
//! rests on the same exchangeability-of-splits argument that justifies the
//! moving calibration set in the first place: the union of per-replica
//! windows is just another split of the fleet's recent history.
//!
//! On top of the merged calibration sits SLO-aware admission
//! ([`crate::AdmissionQueue`]): queries carry deadlines and are admitted or
//! shed by the conformal bound's upper edge — the first place the intervals
//! drive a control decision instead of being reported.
//!
//! Everything stays deterministic: sharding is a pure hash, merges happen on
//! a fixed observation cadence, and one event sequence yields one output
//! sequence regardless of replica count (each replica's stream is disjoint).
//!
//! # Failure domains and degraded mode
//!
//! [`FleetServer::with_faults`] installs a [`FaultPlan`] — a seeded,
//! schedule-based fault injector keyed to the fleet-wide observation
//! counter (no wall-clock anywhere). Under faults the fleet degrades along
//! a ladder instead of failing:
//!
//! 1. **Fleet calibration** (healthy): coordinator merges on cadence.
//! 2. **Gossip calibration** (coordinator outage): live replicas pair up
//!    (seeded shuffle), exchange CRDT window summaries, and each refits
//!    from its own gossip view — converging toward the coordinator's union
//!    fit (see the `gossip` property suite in `pitot-conformal`).
//! 3. **Stale-local fallback** (outage with gossip disabled, or a replica
//!    cut off long enough): once the installed calibration's staleness
//!    exceeds [`crate::ServeConfig::staleness_threshold`], a replica serves
//!    from its own window at the widened miscoverage
//!    `ε × stale_epsilon_factor` — honestly wider bounds, tagged
//!    [`Prediction::degraded`] all the way into the admission audit.
//!
//! Crashed replicas lose their shard's observations (counted, audited) and
//! their queries fail over to the next live replica; on rejoin they replay
//! the coordinator's held window summary
//! ([`pitot_conformal::MergeableWindow::replica_entries`]) and restart
//! *warm*. Dropped merge summaries are retried with bounded seeded
//! backoff; delayed ones are absorbed late (the CRDT clock makes stale
//! deliveries harmless). Every fault window opens a [`DegradedWindow`]
//! audit attributing coverage/SLO loss to the fault that caused it.
//!
//! # Trust boundary: fail-noisy telemetry
//!
//! The same [`FaultPlan`] can also corrupt the *data* instead of the
//! links: observations arrive with NaN/Inf/negative runtimes or
//! scale-outlier bursts, and summaries arrive tampered (a Byzantine
//! replica), replayed, or clock-skewed. The fleet treats every replica
//! summary and every observation as **untrusted until screened**:
//!
//! - Observations pass each replica's ingest guard
//!   ([`crate::ServeConfig::ingest_guard`]), which quarantines — never
//!   silently drops — corrupt runtimes and MAD-outlier scores into an
//!   audited side buffer ([`crate::GuardStats`]).
//! - Summaries are verified **before** being absorbed, on every path
//!   (coordinator round, delayed delivery, retry, gossip join):
//!   per-segment checksums and structural sanity via
//!   [`pitot_conformal::MergeableWindow::verify`], plus receiver-side
//!   clock-plausibility screens for replays and skews. Each refusal is
//!   counted and recorded as a [`RejectedSummary`] naming the offending
//!   replica, so a Byzantine replica degrades only itself: the installed
//!   fleet calibration stays bitwise-pinned to what a clean-replica-only
//!   fleet would fit.

use crate::admission::{AdmissionDecision, AdmissionQueue};
use crate::config::{FleetConfig, ServeConfig};
use crate::fault::{DegradedCause, DegradedWindow, FaultPlan, RejectCause, RejectedSummary};
use crate::guard::GuardStats;
use crate::server::{ObservedFeedback, PitotServer, Prediction};
use pitot::TrainedPitot;
use pitot_conformal::{MergeableWindow, PooledConformal, PredictionSet, TamperMode};
use pitot_testbed::{Dataset, Observation};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The clock jump a skew-injected summary carries — far beyond any honest
/// clock at the scales the harnesses run, so the receiver's plausibility
/// screen (see [`FleetServer::skew_threshold`]) separates it cleanly.
const SKEW_JUMP: u64 = 1 << 20;

/// A placement question with an SLO attached: "will `workload` on
/// `platform` next to `interferers` finish within `deadline_s` seconds?"
#[derive(Debug, Clone)]
pub struct DeadlineQuery {
    /// Caller-chosen correlation id (must be unique among unresolved
    /// queries; echoed on the outcome and used by
    /// [`FleetServer::resolve`]).
    pub id: u64,
    /// Workload catalog index.
    pub workload: u32,
    /// Platform catalog index.
    pub platform: u32,
    /// Workloads co-resident on the platform.
    pub interferers: Vec<u32>,
    /// Relative deadline budget in seconds.
    pub deadline_s: f64,
}

/// What the fleet decided for one deadline query.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionOutcome {
    /// The query's correlation id.
    pub id: u64,
    /// Replica that answered the query.
    pub replica: usize,
    /// Admit or shed (with the reason).
    pub decision: AdmissionDecision,
    /// The prediction the decision was made on; `prediction.bound_s` is the
    /// conformal upper edge compared against the deadline.
    pub prediction: Prediction,
    /// Whether the query's home shard replica was down and the answer came
    /// from a failover replica instead (same fleet calibration, different
    /// server). Always `false` without an installed [`FaultPlan`].
    pub failover: bool,
}

/// Aggregated fleet counters: per-replica serving stats summed, plus the
/// coordinator's own merge and admission records.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetStats {
    /// Observations consumed across all replicas.
    pub observations: usize,
    /// Queries answered across all replicas.
    pub queries: usize,
    /// Prequentially covered observations (served bound ≥ realized).
    pub covered: usize,
    /// Observations judged prequentially.
    pub bounded: usize,
    /// Coordinator merge rounds that actually refit and reinstalled the
    /// fleet calibration.
    pub merges: usize,
    /// Coordinator rounds skipped because no replica window had advanced
    /// since the last merge (the fleet calibration clock stood still, so
    /// reinstalling identical clones everywhere would be pure waste).
    pub skipped_installs: usize,
    /// Pairwise gossip rounds run while the coordinator was unreachable.
    pub gossip_rounds: usize,
    /// Observations lost because their shard's replica was down.
    pub lost_observations: usize,
    /// Deadline queries answered by a failover replica (home shard down).
    pub failover_queries: usize,
    /// Merge summaries dropped by the fault plan (initial sends and failed
    /// retries both count).
    pub dropped_summaries: usize,
    /// Merge summaries delayed by the fault plan (absorbed late).
    pub delayed_summaries: usize,
    /// Dropped summaries later delivered by a successful retry.
    pub retried_summaries: usize,
    /// Dropped summaries abandoned after
    /// [`FaultPlan::max_retries`] failed retries (the next scheduled merge
    /// round picks the replica up again).
    pub merge_giveups: usize,
    /// Crashed replicas that rejoined warm (window replayed from the
    /// coordinator's held summary).
    pub recoveries: usize,
    /// Observations judged under a stale-local fallback calibration,
    /// summed across replicas.
    pub degraded_bounded: usize,
    /// Degraded-judged observations the widened fallback covered.
    pub degraded_covered: usize,
    /// Stale-mode fallback refits performed across replicas.
    pub fallback_refits: usize,
    /// Observations whose runtime the fault plan corrupted into a NaN,
    /// infinity, or negative value before delivery.
    pub injected_corrupt: usize,
    /// Observations the fault plan scaled into outliers (every member of a
    /// burst counts).
    pub injected_outliers: usize,
    /// Stale duplicate summaries the fault plan re-sent in place of fresh
    /// ones.
    pub injected_replays: usize,
    /// Summaries the fault plan emitted with an implausibly skewed clock.
    pub injected_skews: usize,
    /// Summary emissions the Byzantine replica tampered with (or, in mute
    /// mode, withheld while consuming identical RNG draws).
    pub byzantine_emissions: usize,
    /// Summaries refused by the integrity screen across all absorb paths
    /// (see [`FleetServer::rejected_audit`] for the per-rejection records).
    pub rejected_summaries: usize,
    /// Ingest-guard quarantine counters summed across replicas (crashed
    /// instances' counters included) — the observation-level half of the
    /// zero-silent-drops ledger.
    pub guard: GuardStats,
    /// Admission decision counters.
    pub admission: crate::admission::AdmissionStats,
}

impl FleetStats {
    /// Fleet-wide prequential coverage (`NaN` before any observation).
    pub fn coverage(&self) -> f32 {
        if self.bounded == 0 {
            f32::NAN
        } else {
            self.covered as f32 / self.bounded as f32
        }
    }
}

/// A dropped summary's retry bookkeeping: how many retries have failed and
/// when the next one becomes eligible (fleet-wide observation count, with
/// exponential backoff plus seeded jitter).
#[derive(Debug, Clone, Copy)]
struct RetryState {
    attempts: u32,
    next_at: usize,
}

/// A delayed summary in flight: absorbed once the coordinator's round
/// counter reaches `due_round`.
#[derive(Debug)]
struct DelayedSummary {
    due_round: usize,
    replica: u64,
    summary: MergeableWindow,
}

/// Everything needed to rebuild a crashed replica from scratch.
struct FleetTemplate {
    trained: TrainedPitot,
    dataset: Dataset,
    serve_cfg: ServeConfig,
}

/// Live state of an installed [`FaultPlan`]: which replicas are down, what
/// is mid-retry or mid-delay, per-replica gossip views, and the degraded
/// window audit log. All mutation happens in the fleet's single-threaded
/// control path, so every RNG draw has a fixed order — determinism across
/// `PITOT_THREADS` is preserved by construction.
struct FaultRuntime {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    /// A second, independently seeded stream for the *data* faults
    /// (corrupt runtimes, outlier bursts, replay/skew draws, tamper
    /// salts), so enabling telemetry noise never perturbs the control
    /// faults' drop/delay/gossip draws — and so a Byzantine replica's
    /// muted oracle twin can consume bitwise-identical draws.
    data_rng: ChaCha8Rng,
    /// Remaining length of the outlier burst in flight (0 = none).
    outlier_left: usize,
    /// Byzantine summary emissions so far (cycles the tamper mode).
    byz_emissions: usize,
    /// Per replica: the last cleanly emitted summary, held so a replay
    /// injection has a genuine stale duplicate to re-send.
    prev_summary: Vec<Option<MergeableWindow>>,
    injected_corrupt: usize,
    injected_outliers: usize,
    injected_replays: usize,
    injected_skews: usize,
    down: Vec<bool>,
    /// Per `plan.crashes` entry: whether the crash / rejoin has fired.
    crash_done: Vec<bool>,
    rejoin_done: Vec<bool>,
    /// Per `plan.crashes` entry: index of its open audit window.
    crash_audit: Vec<Option<usize>>,
    /// Per replica: pending retry of a dropped summary.
    retry: Vec<Option<RetryState>>,
    delayed: Vec<DelayedSummary>,
    /// Per replica: its gossip-converged view of the fleet (used only
    /// during coordinator outages).
    gossip: Vec<MergeableWindow>,
    audits: Vec<DegradedWindow>,
    /// Index of the currently open coordinator-outage audit, if any.
    outage_open: Option<usize>,
    /// Coordinator merge rounds seen (successful or skipped) — the clock
    /// delayed summaries are due against.
    round: usize,
    gossip_rounds: usize,
    lost_observations: usize,
    failover_queries: usize,
    dropped_summaries: usize,
    delayed_summaries: usize,
    retried_summaries: usize,
    merge_giveups: usize,
    recoveries: usize,
}

impl FaultRuntime {
    fn new(plan: FaultPlan, replicas: usize, n_heads: usize) -> Self {
        let n_crashes = plan.crashes.len();
        Self {
            rng: ChaCha8Rng::seed_from_u64(plan.seed ^ 0xFA_07_1C_A5),
            data_rng: ChaCha8Rng::seed_from_u64(plan.seed ^ 0xDA_7A_BA_D5),
            outlier_left: 0,
            byz_emissions: 0,
            prev_summary: vec![None; replicas],
            injected_corrupt: 0,
            injected_outliers: 0,
            injected_replays: 0,
            injected_skews: 0,
            down: vec![false; replicas],
            crash_done: vec![false; n_crashes],
            rejoin_done: vec![false; n_crashes],
            crash_audit: vec![None; n_crashes],
            retry: vec![None; replicas],
            delayed: Vec::new(),
            gossip: (0..replicas)
                .map(|_| MergeableWindow::empty(n_heads))
                .collect(),
            audits: Vec::new(),
            outage_open: None,
            round: 0,
            gossip_rounds: 0,
            lost_observations: 0,
            failover_queries: 0,
            dropped_summaries: 0,
            delayed_summaries: 0,
            retried_summaries: 0,
            merge_giveups: 0,
            recoveries: 0,
            plan,
        }
    }

    /// The most recently opened still-open degraded window (attribution
    /// target when several overlap).
    fn open_audit(&mut self) -> Option<&mut DegradedWindow> {
        self.audits.iter_mut().rev().find(|a| a.until_obs.is_none())
    }
}

/// The sharded serving layer: N replica [`PitotServer`]s on disjoint event
/// streams, one merged fleet calibration, and SLO-aware admission (see the
/// module docs).
pub struct FleetServer {
    cfg: FleetConfig,
    replicas: Vec<PitotServer>,
    /// The coordinator's converged view of every replica window.
    merged: MergeableWindow,
    fleet_conformal: Option<PooledConformal>,
    admission: AdmissionQueue,
    xis: Vec<f32>,
    since_merge: usize,
    merges: usize,
    skipped_installs: usize,
    /// Fleet-wide observations consumed (the fault schedule's clock).
    obs_seen: usize,
    /// Present iff a fault plan is installed (crash recovery needs to
    /// rebuild replicas from scratch).
    template: Option<Box<FleetTemplate>>,
    faults: Option<FaultRuntime>,
    /// Counters inherited from replaced (crashed) replica instances, so
    /// fleet totals survive a rejoin. Only the per-replica-summed fields
    /// are ever nonzero here.
    retired: FleetStats,
    /// Guard counters inherited from replaced (crashed) replica instances.
    retired_guard: GuardStats,
    /// Bounded audit ring of refused summaries, oldest first.
    rejected: Vec<RejectedSummary>,
    /// Total refusals ever (never truncated, unlike the ring).
    rejected_total: usize,
}

impl std::fmt::Debug for FleetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetServer")
            .field("replicas", &self.replicas.len())
            .field("merges", &self.merges)
            .field("has_fleet_conformal", &self.fleet_conformal.is_some())
            .field("admission", self.admission.stats())
            .finish_non_exhaustive()
    }
}

impl FleetServer {
    /// Builds a fleet of `cfg.replicas` servers around clones of one
    /// trained model and dataset. Each replica's local refresh cadence is
    /// overridden to "never": the coordinator owns every calibration
    /// refresh, so replicas serve exactly the fleet-level bounds between
    /// merges.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`FleetConfig::validate`]).
    pub fn new(trained: TrainedPitot, dataset: &Dataset, cfg: FleetConfig) -> Self {
        cfg.validate();
        let mut serve_cfg = cfg.serve.clone();
        // The coordinator owns refresh: local refits must never overwrite
        // an installed fleet calibration between merges.
        serve_cfg.refresh_every = usize::MAX;
        let xis = trained.model.config().objective.xis();
        // Per-replica compression: each replica serves (and calibrates)
        // through its own compressed tower cache; `cfg.compression` is the
        // single source of truth (the serve-level field is overridden).
        let replicas: Vec<PitotServer> = (0..cfg.replicas)
            .map(|r| {
                let mut rc = serve_cfg.clone();
                rc.compression = cfg.replica_compression(r);
                PitotServer::new(trained.clone(), dataset.clone(), rc)
            })
            .collect();
        let n_heads = trained.model.n_heads();
        let admission = AdmissionQueue::new(cfg.admission.clone());
        Self {
            cfg,
            replicas,
            merged: MergeableWindow::empty(n_heads),
            fleet_conformal: None,
            admission,
            xis,
            since_merge: 0,
            merges: 0,
            skipped_installs: 0,
            obs_seen: 0,
            template: None,
            faults: None,
            retired: FleetStats::default(),
            retired_guard: GuardStats::default(),
            rejected: Vec::new(),
            rejected_total: 0,
        }
    }

    /// Maximum rejected-summary audit records retained (the
    /// [`FleetStats::rejected_summaries`] counter is never truncated).
    pub const REJECT_RETAIN: usize = 1024;

    /// [`FleetServer::new`] with a deterministic fault schedule installed
    /// (see the module docs for the degradation ladder the fleet walks
    /// under it). Keeps a template of the trained model + dataset so
    /// crashed replicas can be rebuilt and rejoined warm.
    ///
    /// # Panics
    ///
    /// Panics if the fleet configuration or the fault plan is inconsistent
    /// (see [`FaultPlan::validate`]; crash targets are checked against
    /// `cfg.replicas`).
    pub fn with_faults(
        trained: TrainedPitot,
        dataset: &Dataset,
        cfg: FleetConfig,
        plan: FaultPlan,
    ) -> Self {
        plan.validate(cfg.replicas);
        let mut fleet = Self::new(trained.clone(), dataset, cfg);
        let mut serve_cfg = fleet.cfg.serve.clone();
        serve_cfg.refresh_every = usize::MAX;
        let n_heads = trained.model.n_heads();
        fleet.template = Some(Box::new(FleetTemplate {
            trained,
            dataset: dataset.clone(),
            serve_cfg,
        }));
        fleet.faults = Some(FaultRuntime::new(plan, fleet.replicas.len(), n_heads));
        fleet
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The replica a `(workload, platform)` pair is sharded to: a pure
    /// deterministic hash, so one entity's events always land on the same
    /// replica (disjoint streams by construction).
    pub fn shard_for(&self, workload: u32, platform: u32) -> usize {
        // Fibonacci hashing over the packed pair; any fixed mixing works,
        // it only has to be deterministic and reasonably balanced.
        let key = (u64::from(workload) << 32) | u64::from(platform);
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 33) % self.replicas.len() as u64) as usize
    }

    /// Seeds every replica's calibration window from disjoint round-robin
    /// shards of `idx` (e.g. the trained split's validation half), then
    /// runs an immediate merge so the fleet starts on a fleet-level
    /// calibration.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-range index.
    pub fn seed_calibration(&mut self, idx: &[usize]) {
        assert!(!idx.is_empty(), "cannot seed from an empty index set");
        let n = self.replicas.len();
        let mut shards: Vec<Vec<usize>> = vec![Vec::with_capacity(idx.len().div_ceil(n)); n];
        for (i, &v) in idx.iter().enumerate() {
            shards[i % n].push(v);
        }
        for (replica, shard) in self.replicas.iter_mut().zip(&shards) {
            if !shard.is_empty() {
                replica.seed_calibration(shard);
            }
        }
        self.merge_now();
    }

    /// Routes one observation to its shard at simulated time `at_s` (must
    /// be monotone non-decreasing per replica). Returns the shard index and
    /// the replica's prequential feedback — `None` when the shard's
    /// replica is down under the installed fault plan (the observation is
    /// lost; counted in [`FleetStats::lost_observations`]). Every
    /// [`FleetConfig::merge_every`]-th observation triggers a coordinator
    /// merge + fleet-wide install (or a gossip round during an outage).
    pub fn observe(&mut self, at_s: f64, obs: Observation) -> (usize, Option<ObservedFeedback>) {
        let r = self.shard_for(obs.workload, obs.platform);
        (r, self.observe_at(r, at_s, obs))
    }

    /// [`FleetServer::observe`] with an explicit replica — for callers that
    /// partition streams themselves (per-site deployments where the shard
    /// is the site).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range, or as
    /// [`PitotServer::on_event`] panics.
    pub fn observe_at(
        &mut self,
        replica: usize,
        at_s: f64,
        obs: Observation,
    ) -> Option<ObservedFeedback> {
        self.tick();
        let obs = self.inject_data_faults(obs);
        if self.faults.as_ref().is_some_and(|f| f.down[replica]) {
            let f = self.faults.as_mut().expect("just checked");
            f.lost_observations += 1;
            if let Some(a) = f.open_audit() {
                a.lost_observations += 1;
            }
            self.after_observation();
            return None;
        }
        let resp = self.replicas[replica].on_event(at_s, crate::server::Event::Observe(obs));
        if resp.quarantined.is_some() {
            // Audited in the replica's guard counters — never judged, so
            // no prequential feedback.
            self.after_observation();
            return None;
        }
        let fb = resp
            .observed
            .expect("accepted observation events produce feedback");
        if let Some(f) = &mut self.faults {
            if let Some(a) = f.open_audit() {
                a.bounded += 1;
                if fb.covered {
                    a.covered += 1;
                }
            }
        }
        self.after_observation();
        Some(fb)
    }

    /// The fault plan's telemetry-corruption layer: with the data-fault
    /// knobs live, an observation's runtime may arrive as NaN/Inf/negative
    /// or scaled into an outlier burst. Draws come from the dedicated data
    /// RNG and are consumed even when the target replica is down, so the
    /// corruption stream is a fixed function of the schedule position.
    fn inject_data_faults(&mut self, mut obs: Observation) -> Observation {
        let Some(f) = &mut self.faults else {
            return obs;
        };
        if f.plan.corrupt_prob <= 0.0 && f.plan.outlier_prob <= 0.0 {
            return obs;
        }
        if f.outlier_left > 0 {
            f.outlier_left -= 1;
            obs.runtime_s *= f.plan.outlier_log_scale.exp();
            f.injected_outliers += 1;
            return obs;
        }
        let u: f32 = f.data_rng.gen_range(0.0f32..1.0);
        if u < f.plan.corrupt_prob {
            obs.runtime_s = match f.data_rng.gen_range(0u32..3) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                _ => -obs.runtime_s,
            };
            f.injected_corrupt += 1;
        } else if u < f.plan.corrupt_prob + f.plan.outlier_prob {
            f.outlier_left = f.data_rng.gen_range(1..=f.plan.outlier_burst_max) - 1;
            obs.runtime_s *= f.plan.outlier_log_scale.exp();
            f.injected_outliers += 1;
        }
        obs
    }

    /// Per-observation control-path work after the event itself: process
    /// due merge retries, then run the cadence merge.
    fn after_observation(&mut self) {
        self.process_due_retries();
        self.since_merge += 1;
        if self.since_merge >= self.cfg.merge_every {
            self.merge_now();
        }
    }

    /// Advances the fleet-wide observation clock and applies every fault
    /// transition due at it: outage audit opening, crashes (replica
    /// replaced by a tombstone of `down = true`; its gossip view and retry
    /// state cleared), and rejoins (replica rebuilt from the template,
    /// window replayed warm from the coordinator's held summary, current
    /// fleet calibration installed).
    fn tick(&mut self) {
        self.obs_seen += 1;
        let obs = self.obs_seen;
        let mut faults = match self.faults.take() {
            Some(f) => f,
            None => return,
        };
        if faults.plan.coordinator_down_at(obs) && faults.outage_open.is_none() {
            faults.outage_open = Some(faults.audits.len());
            faults.audits.push(DegradedWindow {
                cause: DegradedCause::CoordinatorOutage,
                from_obs: obs,
                until_obs: None,
                bounded: 0,
                covered: 0,
                lost_observations: 0,
                degraded_decisions: 0,
                shed: 0,
                slo_missed: 0,
            });
        }
        for k in 0..faults.plan.crashes.len() {
            let c = faults.plan.crashes[k];
            if !faults.crash_done[k] && obs >= c.at && obs < c.rejoin_at {
                faults.crash_done[k] = true;
                faults.down[c.replica] = true;
                faults.retry[c.replica] = None;
                faults.gossip[c.replica] = MergeableWindow::empty(self.merged.n_heads());
                faults.crash_audit[k] = Some(faults.audits.len());
                faults.audits.push(DegradedWindow {
                    cause: DegradedCause::ReplicaCrash { replica: c.replica },
                    from_obs: obs,
                    until_obs: None,
                    bounded: 0,
                    covered: 0,
                    lost_observations: 0,
                    degraded_decisions: 0,
                    shed: 0,
                    slo_missed: 0,
                });
            }
            if !faults.rejoin_done[k] && obs >= c.rejoin_at && faults.crash_done[k] {
                faults.rejoin_done[k] = true;
                faults.down[c.replica] = false;
                self.rejoin_replica(c.replica);
                if let Some(a) = faults.crash_audit[k].take() {
                    faults.audits[a].until_obs = Some(obs);
                }
                faults.recoveries += 1;
            }
        }
        self.faults = Some(faults);
    }

    /// Rebuilds a crashed replica from the template and rejoins it warm:
    /// replay the coordinator's held window summary (score-identical to
    /// the pre-crash window), then install the current fleet calibration.
    fn rejoin_replica(&mut self, r: usize) {
        // The crashed instance's counters survive into the fleet totals.
        let rs = self.replicas[r].stats();
        self.retired.observations += rs.observations;
        self.retired.queries += rs.queries;
        self.retired.covered += rs.covered;
        self.retired.bounded += rs.bounded;
        self.retired.degraded_bounded += rs.degraded_bounded;
        self.retired.degraded_covered += rs.degraded_covered;
        self.retired.fallback_refits += rs.fallback_refits;
        self.retired_guard = self.retired_guard.merged(&self.replicas[r].guard_stats());
        let t = self
            .template
            .as_ref()
            .expect("fault plans are installed with a template");
        // The rebuilt replica keeps its per-replica compression level: a
        // compressed replica rejoins compressed (its restored window scores
        // came from the compressed model).
        let mut serve_cfg = t.serve_cfg.clone();
        serve_cfg.compression = self.cfg.replica_compression(r);
        let mut server = PitotServer::new(t.trained.clone(), t.dataset.clone(), serve_cfg);
        if let Some((clock, entries)) = self.merged.replica_entries(r as u64) {
            server.restore_window(entries, clock);
        }
        if let Some(c) = &self.fleet_conformal {
            server.install_calibration(c.clone());
        }
        self.replicas[r] = server;
    }

    /// Answers one deadline query and decides admission by the conformal
    /// upper edge: admit iff `bound_s + slack ≤ deadline_s` and the backlog
    /// has room. The decision is recorded; report the realized runtime via
    /// [`FleetServer::resolve`] to score it.
    ///
    /// # Panics
    ///
    /// Panics if `q.id` is already pending, or on an out-of-catalog
    /// workload/platform/interferer.
    pub fn deadline_query(&mut self, q: DeadlineQuery) -> AdmissionOutcome {
        let home = self.shard_for(q.workload, q.platform);
        let mut replica = home;
        let mut failover = false;
        if let Some(f) = &self.faults {
            if f.down[home] {
                let n = self.replicas.len();
                replica = (1..n)
                    .map(|d| (home + d) % n)
                    .find(|&r| !f.down[r])
                    .expect("deadline_query: every replica in the fleet is down");
                failover = true;
            }
        }
        let prediction = self.replicas[replica].query_now(q.workload, q.platform, &q.interferers);
        let decision = self.admission.decide_tagged(
            q.id,
            f64::from(prediction.bound_s),
            q.deadline_s,
            prediction.degraded,
        );
        if let Some(f) = &mut self.faults {
            if failover {
                f.failover_queries += 1;
            }
            if let Some(a) = f.open_audit() {
                if prediction.degraded {
                    a.degraded_decisions += 1;
                }
                if !decision.admitted() {
                    a.shed += 1;
                }
            }
        }
        AdmissionOutcome {
            id: q.id,
            replica,
            decision,
            prediction,
            failover,
        }
    }

    /// Reports the realized runtime of a decided query, scoring its
    /// admission decision (SLO met/missed for admitted queries,
    /// would-have-met/missed audit for shed ones). Returns whether the
    /// query had been admitted, or `None` for an unknown id.
    pub fn resolve(&mut self, id: u64, realized_s: f64) -> Option<bool> {
        let missed_before = self.admission.stats().slo_missed;
        let res = self.admission.resolve(id, realized_s);
        if self.admission.stats().slo_missed > missed_before {
            if let Some(f) = &mut self.faults {
                if let Some(a) = f.open_audit() {
                    a.slo_missed += 1;
                }
            }
        }
        res
    }

    /// Runs a merge round now. With the coordinator reachable this is a
    /// coordinator round: absorb every live replica's window summary into
    /// the converged fleet view (subject to the fault plan's drop/delay
    /// draws), fit the fleet calibration on the union, and install it into
    /// every live replica — unless **no** window advanced since the last
    /// round, in which case the refit and the installs are skipped
    /// entirely (the fleet calibration clock stood still; counted in
    /// [`FleetStats::skipped_installs`]). During a coordinator outage the
    /// round degrades to pairwise gossip (see the module docs) when the
    /// plan enables it, or does nothing beyond resetting the cadence.
    pub fn merge_now(&mut self) {
        self.since_merge = 0;
        if self.coordinator_down() {
            if self
                .faults
                .as_ref()
                .is_some_and(|f| f.plan.gossip_during_outage)
            {
                self.gossip_round();
            }
            return;
        }
        self.coordinator_round();
    }

    fn coordinator_down(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.plan.coordinator_down_at(self.obs_seen))
    }

    /// Materializes replica `r`'s window summary through the fault plan's
    /// tampering layer. `None` means the replica stays silent this round
    /// (a Byzantine replica in mute-oracle mode). Every RNG draw the
    /// tampering path makes is also made on the mute path, so a tampering
    /// fleet and its muted twin stay draw-aligned.
    fn emit_summary(
        server: &PitotServer,
        f: &mut FaultRuntime,
        r: usize,
        obs_seen: usize,
    ) -> Option<MergeableWindow> {
        let mut summary = server.window_summary(r as u64);
        if let Some(b) = f.plan.byzantine {
            if b.replica == r && obs_seen >= b.from {
                let salt = f.data_rng.gen_range(0u64..=u64::MAX);
                let mode = match f.byz_emissions % 4 {
                    0 => TamperMode::Checksum,
                    1 => TamperMode::Cardinality,
                    2 => TamperMode::NonFinite,
                    _ => TamperMode::Unsorted,
                };
                f.byz_emissions += 1;
                if b.mute {
                    return None;
                }
                summary.corrupt_run(r as u64, mode, salt);
                return Some(summary);
            }
        }
        if f.plan.replay_prob > 0.0 || f.plan.skew_prob > 0.0 {
            let u: f32 = f.data_rng.gen_range(0.0f32..1.0);
            if u < f.plan.replay_prob {
                if let Some(prev) = &f.prev_summary[r] {
                    f.injected_replays += 1;
                    return Some(prev.clone());
                }
            } else if u < f.plan.replay_prob + f.plan.skew_prob {
                f.injected_skews += 1;
                summary.skew_run_clock(r as u64, SKEW_JUMP);
                return Some(summary);
            }
        }
        f.prev_summary[r] = Some(summary.clone());
        Some(summary)
    }

    /// The largest clock an honest replica could plausibly have reached:
    /// the window clock advances once per push (at most one per fleet
    /// observation) plus once per wholesale rebuild (rescore or watchdog
    /// rollback, each gated on observations), on top of up to
    /// window-capacity seeded entries. Anything beyond is a skewed clock.
    fn skew_threshold(&self) -> u64 {
        (2 * self.obs_seen + self.cfg.serve.window + 1024) as u64
    }

    /// Records one refused summary in the counter and the bounded ring.
    fn reject(&mut self, replica: usize, cause: RejectCause) {
        self.rejected_total += 1;
        if self.rejected.len() >= Self::REJECT_RETAIN {
            self.rejected.remove(0);
        }
        self.rejected.push(RejectedSummary {
            replica,
            at_obs: self.obs_seen,
            cause,
        });
    }

    /// Screens an incoming summary from replica `r` and absorbs it into
    /// the coordinator's merged view only if it passes: structural
    /// verification (checksums, cardinality, sortedness, finiteness) on
    /// every path, plus clock-plausibility screens — a skew screen always,
    /// and a freshness screen on direct sends (`delayed = false`; delayed
    /// deliveries are legitimately stale, the CRDT clock makes them
    /// harmless). Returns whether the merged view changed; refusals are
    /// counted and audited, never silent.
    fn try_absorb(&mut self, r: u64, summary: &MergeableWindow, delayed: bool) -> bool {
        if let Err(e) = summary.verify() {
            self.reject(e.replica as usize, RejectCause::from_fault(e.fault));
            return false;
        }
        let held = self.merged.replica_clock(r);
        if let Some(c) = summary.replica_clock(r) {
            if c > self.skew_threshold() {
                self.reject(r as usize, RejectCause::SkewedClock);
                return false;
            }
            if !delayed && held.is_some_and(|h| c <= h) {
                self.reject(r as usize, RejectCause::Replayed);
                return false;
            }
        }
        self.merged.absorb(summary);
        self.merged.replica_clock(r) != held
    }

    /// Fits the fleet calibration on a merged view's union. Fleet head
    /// selection never uses a validation set (FleetConfig rejects
    /// TightestOnValidation), so an empty selection set is fine.
    fn fit_union(&self, merged: &MergeableWindow) -> PooledConformal {
        let scored = merged.to_scored();
        let empty_preds: Vec<Vec<f32>> = vec![Vec::new(); merged.n_heads()];
        PooledConformal::fit_scored(
            &scored,
            &PredictionSet {
                predictions: &empty_preds,
                targets_log: &[],
                pools: &[],
            },
            &self.xis,
            self.cfg.serve.selection,
            self.cfg.serve.epsilon,
        )
    }

    fn coordinator_round(&mut self) {
        let mut changed = false;
        let mut faults = self.faults.take();
        if let Some(f) = &mut faults {
            f.round += 1;
            // Deliver delayed summaries that have come due. The CRDT clock
            // makes a stale delivery harmless: absorb only changes the
            // held run when the delayed snapshot is still the newest.
            let round = f.round;
            let mut still_delayed = Vec::new();
            for d in std::mem::take(&mut f.delayed) {
                if d.due_round > round {
                    still_delayed.push(d);
                    continue;
                }
                changed |= self.try_absorb(d.replica, &d.summary, true);
            }
            f.delayed = still_delayed;
        }
        for r in 0..self.replicas.len() {
            if let Some(f) = &faults {
                if f.down[r] {
                    continue;
                }
            }
            // Skip replicas whose windows have not advanced since the
            // last merge: their held run is already current, and a
            // snapshot would deep-copy the sorted slices for nothing.
            if self.merged.replica_clock(r as u64) == Some(self.replicas[r].window_clock()) {
                continue;
            }
            let summary = if let Some(f) = &mut faults {
                if f.plan.drop_prob > 0.0 || f.plan.delay_prob > 0.0 {
                    let u: f32 = f.rng.gen_range(0.0f32..1.0);
                    if u < f.plan.drop_prob {
                        // Dropped in flight: schedule a bounded retry.
                        f.dropped_summaries += 1;
                        if f.plan.max_retries > 0 && f.retry[r].is_none() {
                            let jitter = f.rng.gen_range(0..f.plan.retry_backoff);
                            f.retry[r] = Some(RetryState {
                                attempts: 0,
                                next_at: self.obs_seen + f.plan.retry_delay(0, jitter),
                            });
                        }
                        continue;
                    }
                    if u < f.plan.drop_prob + f.plan.delay_prob {
                        // Delayed in flight: snapshot now (through the
                        // tampering layer), absorb later.
                        let due = f.round + f.rng.gen_range(1..=f.plan.delay_rounds_max);
                        if let Some(s) = Self::emit_summary(&self.replicas[r], f, r, self.obs_seen)
                        {
                            f.delayed.push(DelayedSummary {
                                due_round: due,
                                replica: r as u64,
                                summary: s,
                            });
                            f.delayed_summaries += 1;
                        }
                        continue;
                    }
                }
                // Summary arrived; any pending retry is obsolete. A `None`
                // emission is a Byzantine mute staying silent this round.
                f.retry[r] = None;
                match Self::emit_summary(&self.replicas[r], f, r, self.obs_seen) {
                    Some(s) => s,
                    None => continue,
                }
            } else {
                self.replicas[r].window_summary(r as u64)
            };
            changed |= self.try_absorb(r as u64, &summary, false);
        }
        self.faults = faults;
        if self.merged.is_empty() {
            return;
        }
        if !changed && self.fleet_conformal.is_some() {
            // Nothing advanced: the refit would reproduce the installed
            // calibration bitwise, and N clone-installs would be waste.
            self.skipped_installs += 1;
            self.close_outage_audit();
            return;
        }
        let conformal = self.fit_union(&self.merged);
        self.install_everywhere(conformal);
        self.merges += 1;
        self.close_outage_audit();
    }

    /// Installs a fleet calibration into every *live* replica (down
    /// replicas receive it at rejoin) and records it as the fleet's.
    fn install_everywhere(&mut self, conformal: PooledConformal) {
        for (r, replica) in self.replicas.iter_mut().enumerate() {
            if self.faults.as_ref().is_some_and(|f| f.down[r]) {
                continue;
            }
            replica.install_calibration(conformal.clone());
        }
        self.fleet_conformal = Some(conformal);
    }

    /// Closes the open coordinator-outage audit window, if its outage has
    /// cleared — called from successful coordinator rounds only, so
    /// "recovery complete" means a post-outage round actually ran.
    fn close_outage_audit(&mut self) {
        let obs = self.obs_seen;
        if let Some(f) = &mut self.faults {
            if !f.plan.coordinator_down_at(obs) {
                if let Some(k) = f.outage_open.take() {
                    f.audits[k].until_obs = Some(obs);
                }
            }
        }
    }

    /// One pairwise gossip round among live replicas: each refreshes its
    /// own run in its gossip view, a seeded shuffle pairs them up, each
    /// pair exchanges states (state-based CRDT join), and every live
    /// replica refits + installs a calibration from its own gossip view at
    /// the nominal ε. Repeated rounds converge every view to the
    /// coordinator's union fit (property-tested in `pitot-conformal`).
    fn gossip_round(&mut self) {
        let mut faults = self.faults.take().expect("gossip runs under faults");
        let live: Vec<usize> = (0..self.replicas.len())
            .filter(|&r| !faults.down[r])
            .collect();
        for &r in &live {
            if faults.gossip[r].replica_clock(r as u64) != Some(self.replicas[r].window_clock()) {
                // Self-refresh goes through the tampering layer too: a
                // Byzantine replica corrupts (only) its own gossip view.
                if let Some(s) =
                    Self::emit_summary(&self.replicas[r], &mut faults, r, self.obs_seen)
                {
                    faults.gossip[r].absorb(&s);
                }
            }
        }
        let mut order = live.clone();
        order.shuffle(&mut faults.rng);
        for pair in order.chunks(2) {
            if let [a, b] = *pair {
                // Verify both sides before the state-based join: a corrupt
                // view (a Byzantine replica's own) is refused by every
                // partner, so the corruption never propagates.
                let mut refused = false;
                for side in [a, b] {
                    if let Err(e) = faults.gossip[side].verify() {
                        self.reject(e.replica as usize, RejectCause::from_fault(e.fault));
                        refused = true;
                    }
                }
                if refused {
                    continue;
                }
                let joined = faults.gossip[a].merge(&faults.gossip[b]);
                faults.gossip[a] = joined.clone();
                faults.gossip[b] = joined;
            }
        }
        faults.gossip_rounds += 1;
        self.faults = Some(faults);
        for &r in &live {
            let f = self.faults.as_ref().expect("just restored");
            if f.gossip[r].is_empty() || f.gossip[r].verify().is_err() {
                // A corrupt own view (already audited at the pairwise
                // join) must not be fitted: the Byzantine replica serves
                // its stale install until staleness triggers the widened
                // local fallback — it degrades only itself.
                continue;
            }
            let conformal = self.fit_union(&f.gossip[r]);
            // An install resets the replica's staleness clock: gossip is
            // the degradation ladder's middle rung, above stale-local
            // fallback.
            self.replicas[r].install_calibration(conformal);
        }
    }

    /// Attempts every due summary retry (dropped sends waiting out their
    /// backoff). A successful retry absorbs the replica's summary and
    /// refreshes the fleet calibration immediately — a partial merge
    /// between scheduled rounds; a failed one backs off exponentially
    /// until [`FaultPlan::max_retries`] is exhausted.
    fn process_due_retries(&mut self) {
        if self.faults.is_none() || self.coordinator_down() {
            return;
        }
        let obs = self.obs_seen;
        let due: Vec<usize> = {
            let f = self.faults.as_ref().expect("checked above");
            (0..self.replicas.len())
                .filter(|&r| f.retry[r].is_some_and(|s| obs >= s.next_at))
                .collect()
        };
        for r in due {
            self.attempt_retry(r);
        }
    }

    fn attempt_retry(&mut self, r: usize) {
        let mut faults = self.faults.take().expect("retry runs under faults");
        if faults.down[r] {
            faults.retry[r] = None;
            self.faults = Some(faults);
            return;
        }
        let u: f32 = faults.rng.gen_range(0.0f32..1.0);
        if u < faults.plan.drop_prob {
            // Retry failed too: back off exponentially (seeded jitter,
            // overflow-saturating — see [`FaultPlan::retry_delay`]) or
            // give up until the next scheduled round.
            faults.dropped_summaries += 1;
            let state = faults.retry[r].as_mut().expect("due retry has state");
            state.attempts += 1;
            if state.attempts >= faults.plan.max_retries {
                faults.retry[r] = None;
                faults.merge_giveups += 1;
            } else {
                let jitter = faults.rng.gen_range(0..faults.plan.retry_backoff);
                state.next_at = self
                    .obs_seen
                    .saturating_add(faults.plan.retry_delay(state.attempts, jitter));
            }
            self.faults = Some(faults);
            return;
        }
        faults.retry[r] = None;
        faults.retried_summaries += 1;
        let mut absorbed = false;
        if self.merged.replica_clock(r as u64) != Some(self.replicas[r].window_clock()) {
            if let Some(summary) =
                Self::emit_summary(&self.replicas[r], &mut faults, r, self.obs_seen)
            {
                absorbed = self.try_absorb(r as u64, &summary, false);
            }
        }
        self.faults = Some(faults);
        if absorbed && !self.merged.is_empty() {
            // A successful retry is a partial merge between rounds:
            // refresh the fleet calibration immediately.
            let conformal = self.fit_union(&self.merged);
            self.install_everywhere(conformal);
        }
    }

    /// The currently installed fleet-level calibration (absent until the
    /// first merge finds a non-empty window).
    pub fn fleet_conformal(&self) -> Option<&PooledConformal> {
        self.fleet_conformal.as_ref()
    }

    /// One replica's server (e.g. for its local stats or window).
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range.
    pub fn replica(&self, replica: usize) -> &PitotServer {
        &self.replicas[replica]
    }

    /// The degraded-window audit log: one entry per fault window the fleet
    /// has entered (crash or coordinator outage), attributing lost
    /// observations, coverage, degraded decisions, sheds, and SLO misses
    /// to it. Empty without an installed fault plan. An entry with
    /// `until_obs = None` is still open.
    pub fn degraded_audit(&self) -> &[DegradedWindow] {
        self.faults.as_ref().map_or(&[], |f| &f.audits)
    }

    /// Aggregated counters across replicas plus coordinator-side records.
    pub fn stats(&self) -> FleetStats {
        let mut s = self.retired;
        s.merges = self.merges;
        s.skipped_installs = self.skipped_installs;
        s.rejected_summaries = self.rejected_total;
        s.admission = *self.admission.stats();
        if let Some(f) = &self.faults {
            s.gossip_rounds = f.gossip_rounds;
            s.lost_observations = f.lost_observations;
            s.failover_queries = f.failover_queries;
            s.dropped_summaries = f.dropped_summaries;
            s.delayed_summaries = f.delayed_summaries;
            s.retried_summaries = f.retried_summaries;
            s.merge_giveups = f.merge_giveups;
            s.recoveries = f.recoveries;
            s.injected_corrupt = f.injected_corrupt;
            s.injected_outliers = f.injected_outliers;
            s.injected_replays = f.injected_replays;
            s.injected_skews = f.injected_skews;
            s.byzantine_emissions = f.byz_emissions;
        }
        s.guard = self.retired_guard;
        for r in &self.replicas {
            let rs = r.stats();
            s.observations += rs.observations;
            s.queries += rs.queries;
            s.covered += rs.covered;
            s.bounded += rs.bounded;
            s.degraded_bounded += rs.degraded_bounded;
            s.degraded_covered += rs.degraded_covered;
            s.fallback_refits += rs.fallback_refits;
            s.guard = s.guard.merged(&r.guard_stats());
        }
        s
    }

    /// The bounded rejected-summary audit ring, oldest first: one record
    /// per summary the integrity screen refused, naming the offending
    /// replica (see [`FleetStats::rejected_summaries`] for the untruncated
    /// count). Empty while every sender is honest.
    pub fn rejected_audit(&self) -> &[RejectedSummary] {
        &self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::AdmissionConfig;
    use pitot::{train, Objective, PitotConfig};
    use pitot_conformal::HeadSelection;
    use pitot_testbed::{split::Split, Testbed, TestbedConfig};
    use rand::{seq::SliceRandom, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Dataset, Split, TrainedPitot) {
        let testbed = Testbed::generate(&TestbedConfig::small());
        let dataset = testbed.collect_dataset();
        let split = Split::stratified(&dataset, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 300;
        let trained = train(&dataset, &split, &cfg);
        (dataset, split, trained)
    }

    fn fleet_cfg(replicas: usize, merge_every: usize) -> FleetConfig {
        let mut serve = ServeConfig::at(0.1);
        serve.window = 128;
        serve.selection = HeadSelection::NaiveXi;
        FleetConfig {
            serve,
            replicas,
            merge_every,
            admission: AdmissionConfig::default(),
            compression: Vec::new(),
        }
    }

    #[test]
    fn fleet_matches_centralized_calibration_bitwise() {
        // A 3-replica fleet and a 1-replica "fleet" (same total window
        // budget) fed the same stream must install the identical
        // calibration whenever their union windows coincide — here the
        // windows are large enough that nothing evicts, so after a merge
        // at the same point the union is literally the same set.
        let (dataset, split, trained) = fixture();
        let mut fleet = FleetServer::new(trained.clone(), &dataset, fleet_cfg(3, usize::MAX));
        let mut single = FleetServer::new(trained, &dataset, fleet_cfg(1, usize::MAX));

        let mut idx = split.test.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        idx.shuffle(&mut rng);
        idx.truncate(100);
        for (t, &i) in idx.iter().enumerate() {
            let obs = dataset.observations[i].clone();
            fleet.observe(t as f64, obs.clone());
            single.observe(t as f64, obs);
        }
        fleet.merge_now();
        single.merge_now();
        let (a, b) = (
            fleet.fleet_conformal().expect("fleet calibrated"),
            single.fleet_conformal().expect("single calibrated"),
        );
        assert_eq!(a.pool_calibrations(), b.pool_calibrations());
        for pool in 0..4 {
            assert_eq!(a.calibration_for(pool), b.calibration_for(pool));
        }
    }

    #[test]
    fn shards_are_disjoint_and_stable() {
        let (dataset, split, trained) = fixture();
        let fleet = FleetServer::new(trained, &dataset, fleet_cfg(4, 32));
        for &i in split.test.iter().take(200) {
            let o = &dataset.observations[i];
            let r = fleet.shard_for(o.workload, o.platform);
            assert!(r < 4);
            assert_eq!(r, fleet.shard_for(o.workload, o.platform));
        }
    }

    #[test]
    fn admission_sheds_infeasible_deadlines_and_scores_them() {
        let (dataset, split, trained) = fixture();
        let mut fleet = FleetServer::new(trained, &dataset, fleet_cfg(2, 64));
        fleet.seed_calibration(&split.val);

        let mut admitted = 0usize;
        let mut shed = 0usize;
        for (j, &i) in split.test.iter().take(120).enumerate() {
            let o = &dataset.observations[i];
            // Alternate generous and impossible budgets.
            let deadline = if j % 2 == 0 {
                f64::from(o.runtime_s) * 50.0
            } else {
                f64::from(o.runtime_s) * 1e-4
            };
            let out = fleet.deadline_query(DeadlineQuery {
                id: j as u64,
                workload: o.workload,
                platform: o.platform,
                interferers: o.interferers.clone(),
                deadline_s: deadline,
            });
            if out.decision.admitted() {
                admitted += 1;
            } else {
                shed += 1;
            }
            assert_eq!(
                fleet.resolve(j as u64, f64::from(o.runtime_s)),
                Some(out.decision.admitted())
            );
        }
        assert!(admitted > 0, "generous deadlines should admit");
        assert!(shed > 0, "impossible deadlines should shed");
        let stats = fleet.stats();
        assert_eq!(stats.admission.decisions(), 120);
        // Every impossible deadline was a correct shed; generous ones that
        // were admitted should overwhelmingly attain.
        assert!(stats.admission.shed_would_have_missed > 0);
        assert!(
            stats.admission.attainment() > 0.9,
            "attainment {} too low for 50x budgets",
            stats.admission.attainment()
        );
    }

    #[test]
    fn merge_cadence_counts_rounds() {
        let (dataset, split, trained) = fixture();
        let mut fleet = FleetServer::new(trained, &dataset, fleet_cfg(2, 10));
        for (t, &i) in split.test.iter().take(35).enumerate() {
            fleet.observe(t as f64, dataset.observations[i].clone());
        }
        // 35 observations at cadence 10 → 3 merge rounds.
        assert_eq!(fleet.stats().merges, 3);
        assert!(fleet.fleet_conformal().is_some());
        assert_eq!(fleet.stats().observations, 35);
        assert_eq!(
            fleet.stats().coverage(),
            fleet.stats().covered as f32 / 35.0
        );
    }
}
