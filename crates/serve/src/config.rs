//! Serving-loop configuration.

use pitot_conformal::HeadSelection;

/// Knobs for a [`crate::PitotServer`].
///
/// The defaults serve bounds at the given miscoverage with a 512-observation
/// sliding window refreshed on every arrival, micro-batches of 16 queries,
/// arity-keyed calibration pools, and fine-tuning disabled (set
/// [`ServeConfig::fine_tune_steps`] to opt in).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target miscoverage ε of the served upper bounds.
    pub epsilon: f32,
    /// Sliding calibration window capacity (observations retained).
    pub window: usize,
    /// Conformal refresh cadence: refit the served calibration after this
    /// many observations (1 = every arrival; refreshes are rank lookups
    /// over the incrementally maintained window, so 1 is affordable).
    pub refresh_every: usize,
    /// Queries buffered before a batched prediction pass answers them all.
    pub microbatch: usize,
    /// Key calibration pools by interference arity (the paper's pooling);
    /// `false` uses one global pool — e.g. to isolate the effect of
    /// windowing in comparisons.
    pub pool_by_arity: bool,
    /// Quantile-head selection policy for the served calibration. With
    /// [`HeadSelection::TightestOnValidation`] the window doubles as the
    /// selection set (a streaming approximation of the paper's dedicated
    /// selection half).
    pub selection: HeadSelection,
    /// Rolling prequential-coverage window the drift detector watches.
    pub drift_window: usize,
    /// Binomial-slack multiplier: drift fires when rolling coverage falls
    /// below `1 − ε − z·√(ε(1−ε)/n)`.
    pub drift_z: f32,
    /// Minimum monitored observations before drift can fire.
    pub drift_min: usize,
    /// Optimizer steps per drift-triggered warm-start fine-tune
    /// (`0` disables fine-tuning; recalibration alone still runs).
    pub fine_tune_steps: usize,
    /// Streamed observations retained as the fine-tune training pool. The
    /// server's dataset copy is compacted to the most recent
    /// `fine_tune_retain.max(window)` arrivals once it exceeds that bound,
    /// so a long-lived server's memory stays bounded; older observations
    /// are forgotten (the model has already absorbed them through earlier
    /// fine-tunes).
    pub fine_tune_retain: usize,
    /// Minimum observations between fine-tunes (lets the refreshed
    /// calibration and monitor re-fill before judging the updated model).
    pub fine_tune_cooldown: usize,
    /// Rebuild the training context (folding newly arrived observations
    /// into the batch pools) once the arrived set has grown by this factor
    /// since the last build; between rebuilds, fine-tunes are pure
    /// [`pitot::TrainContext::resume`] calls.
    pub rebuild_growth: f32,
    /// Staleness tolerance of an installed calibration, in local window
    /// pushes (the eviction clock): once more than this many observations
    /// arrive after an [`crate::PitotServer::install_calibration`] /
    /// refresh without a newer install, the server degrades to a local
    /// fallback calibration fit on its own window at the widened
    /// miscoverage `epsilon × stale_epsilon_factor`. `0` (the default)
    /// disables staleness tracking — the installed calibration is trusted
    /// forever. Only meaningful when installs come from outside (fleet
    /// mode); a self-refreshing server never goes stale.
    pub staleness_threshold: usize,
    /// Miscoverage multiplier of the stale-fallback calibration, in
    /// `(0, 1]`: the fallback fits at `epsilon × stale_epsilon_factor`,
    /// honestly *widening* intervals to reflect that the local window is a
    /// shard, not the fleet (1.0 = no widening; default 0.5 halves ε).
    pub stale_epsilon_factor: f32,
    /// Master switch of the trustworthy-telemetry ingest guard. When on,
    /// non-finite/non-positive runtimes are **quarantined** into the
    /// audited side buffer (see [`crate::GuardStats`]) instead of
    /// panicking, and the MAD outlier screen (below) runs on every
    /// arrival. When off (the default), ingest trusts its telemetry and a
    /// corrupt runtime panics at the event boundary — the fail-stop
    /// posture of PR 7.
    pub ingest_guard: bool,
    /// Robust outlier screen: an arriving observation whose head-0
    /// nonconformity score `s` satisfies
    /// `|s − median| > guard_mad_k · 1.4826 · MAD` over the current
    /// window is quarantined. `0.0` disables the screen (the finite/bounds
    /// checks still run while [`ServeConfig::ingest_guard`] is on).
    /// Default 8.0 — far enough out that honest drift passes and only
    /// scale-class corruption trips it.
    pub guard_mad_k: f32,
    /// Minimum window occupancy before the MAD screen judges arrivals (a
    /// near-empty window has no robust scale estimate). Default 64.
    pub guard_min_n: usize,
    /// Quarantine audit records retained (a bounded ring; the per-cause
    /// *counters* are cumulative and never truncated). Default 256.
    pub quarantine_retain: usize,
    /// Miscoverage watchdog: fires when prequential coverage over the
    /// drift window falls below `1 − ε − watchdog_z·√(ε(1−ε)/n)`,
    /// triggering a quarantine-rollback rescore of the calibration window
    /// (poisoned entries are purged by the MAD screen and the rebuilt
    /// window's clock advances past every poisoned snapshot). `0.0` (the
    /// default) disables the watchdog. Requires the ingest guard and MAD
    /// screen to be enabled. Typical: 4.0 — strictly wider slack than
    /// `drift_z` so model drift retrains before poisoning rolls back.
    pub watchdog_z: f32,
    /// Minimum judged observations before the watchdog can fire (and,
    /// because firing resets the coverage monitor, the minimum spacing
    /// between consecutive firings). Default 128.
    pub watchdog_min: usize,
    /// Tower compression served by this server (int8 and/or magnitude
    /// pruning; see [`pitot::CompressionSpec`]). The server calibrates on
    /// the *compressed* model's residuals, so coverage holds at every
    /// level — intervals widen to absorb the compression error.
    /// Incompatible with fine-tuning: a warm-start retrain would re-grow
    /// pruned weights and stale the frozen int8 towers.
    pub compression: pitot::CompressionSpec,
}

impl ServeConfig {
    /// Defaults at miscoverage `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)`.
    pub fn at(epsilon: f32) -> Self {
        let cfg = Self {
            epsilon,
            window: 512,
            refresh_every: 1,
            microbatch: 16,
            pool_by_arity: true,
            selection: HeadSelection::NaiveXi,
            drift_window: 256,
            drift_z: 3.0,
            drift_min: 64,
            fine_tune_steps: 0,
            fine_tune_retain: 8192,
            fine_tune_cooldown: 256,
            rebuild_growth: 1.5,
            staleness_threshold: 0,
            stale_epsilon_factor: 0.5,
            ingest_guard: false,
            guard_mad_k: 8.0,
            guard_min_n: 64,
            quarantine_retain: 256,
            watchdog_z: 0.0,
            watchdog_min: 128,
            compression: pitot::CompressionSpec::none(),
        };
        cfg.validate();
        cfg
    }

    /// [`ServeConfig::at`] with the full trustworthy-telemetry posture on:
    /// ingest guard, MAD screen, and the miscoverage watchdog at
    /// `watchdog_z = 4.0`.
    pub fn guarded(epsilon: f32) -> Self {
        let cfg = Self {
            ingest_guard: true,
            watchdog_z: 4.0,
            ..Self::at(epsilon)
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε, a zero window/cadence/micro-batch, or a
    /// rebuild growth factor below 1.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "ServeConfig.epsilon = {} is outside (0,1): the target \
             miscoverage must be a strict probability (typical values: \
             0.05, 0.1, 0.2)",
            self.epsilon
        );
        assert!(
            self.window > 0,
            "ServeConfig.window = 0 is invalid: the sliding calibration \
             window must retain at least 1 observation (default: 512)"
        );
        assert!(
            self.refresh_every > 0,
            "ServeConfig.refresh_every = 0 is invalid: the conformal \
             refresh cadence must be at least 1 observation (1 = refresh \
             on every arrival, the default)"
        );
        assert!(
            self.microbatch > 0,
            "ServeConfig.microbatch = 0 is invalid: the micro-batch must \
             hold at least 1 query (1 = no batching; default: 16)"
        );
        assert!(
            self.drift_window > 0,
            "ServeConfig.drift_window = 0 is invalid: the drift detector's \
             rolling coverage window must hold at least 1 observation \
             (default: 256)"
        );
        assert!(
            self.drift_z >= 0.0,
            "ServeConfig.drift_z = {} is invalid: the binomial-slack \
             multiplier must be non-negative (0.0 = fire on any dip below \
             1 − ε; default: 3.0)",
            self.drift_z
        );
        assert!(
            self.fine_tune_retain > 0,
            "ServeConfig.fine_tune_retain = 0 is invalid: the fine-tune \
             training pool must retain at least 1 observation (default: \
             8192; to disable fine-tuning set fine_tune_steps = 0 instead)"
        );
        assert!(
            self.rebuild_growth >= 1.0,
            "ServeConfig.rebuild_growth = {} is invalid: the context \
             rebuild factor must be ≥ 1 (1.0 = rebuild on every fine-tune; \
             default: 1.5)",
            self.rebuild_growth
        );
        assert!(
            self.stale_epsilon_factor > 0.0 && self.stale_epsilon_factor <= 1.0,
            "ServeConfig.stale_epsilon_factor = {} is invalid: the \
             degraded-mode miscoverage multiplier must be in (0, 1] (the \
             fallback fits at ε × factor, so values > 1 would *narrow* \
             stale bounds; 1.0 = no widening, default: 0.5; set \
             staleness_threshold = 0 to disable the fallback entirely)",
            self.stale_epsilon_factor
        );
        assert!(
            self.staleness_threshold == 0 || self.staleness_threshold >= self.drift_min,
            "ServeConfig.staleness_threshold = {} is invalid: a nonzero \
             staleness tolerance below drift_min = {} would degrade to a \
             local fallback fit on fewer observations than the drift \
             monitor itself trusts; use staleness_threshold ≥ drift_min, \
             or 0 to disable staleness tracking (the default)",
            self.staleness_threshold,
            self.drift_min
        );
        assert!(
            self.guard_mad_k.is_finite() && self.guard_mad_k >= 0.0,
            "ServeConfig.guard_mad_k = {} is invalid: the MAD outlier \
             multiplier must be finite and ≥ 0 (0.0 disables the screen; \
             default: 8.0)",
            self.guard_mad_k
        );
        assert!(
            !self.ingest_guard || self.guard_min_n >= 1,
            "ServeConfig.guard_min_n = 0 is invalid while ingest_guard is \
             on: the MAD screen needs at least 1 windowed observation for \
             a scale estimate (default: 64; or set ingest_guard = false)"
        );
        assert!(
            !self.ingest_guard || self.quarantine_retain >= 1,
            "ServeConfig.quarantine_retain = 0 is invalid while \
             ingest_guard is on: quarantining must never be silent, so the \
             audit ring must retain at least 1 record (default: 256; or \
             set ingest_guard = false)"
        );
        assert!(
            self.watchdog_z.is_finite() && self.watchdog_z >= 0.0,
            "ServeConfig.watchdog_z = {} is invalid: the watchdog's \
             binomial-slack multiplier must be finite and ≥ 0 (0.0 \
             disables the watchdog; typical: 4.0)",
            self.watchdog_z
        );
        assert!(
            self.watchdog_z == 0.0 || self.ingest_guard,
            "ServeConfig.watchdog_z = {} is invalid while ingest_guard = \
             false: the watchdog's quarantine-rollback rescore purges \
             entries through the guard's MAD screen, so enable \
             ingest_guard = true (or set watchdog_z = 0.0 to disable the \
             watchdog)",
            self.watchdog_z
        );
        assert!(
            self.watchdog_z == 0.0 || self.guard_mad_k > 0.0,
            "ServeConfig.guard_mad_k = 0 is invalid while watchdog_z = {} \
             > 0: a rollback with the MAD screen disabled would purge \
             nothing and re-fire forever; use guard_mad_k > 0 (default: \
             8.0) or watchdog_z = 0.0",
            self.watchdog_z
        );
        assert!(
            self.watchdog_z == 0.0 || self.watchdog_min >= 1,
            "ServeConfig.watchdog_min = 0 is invalid while watchdog_z = {} \
             > 0: the watchdog must see at least 1 judged observation \
             before rolling back a window (default: 128; or set watchdog_z \
             = 0.0)",
            self.watchdog_z
        );
        self.compression.validate();
        assert!(
            self.compression.is_none() || self.fine_tune_steps == 0,
            "ServeConfig.fine_tune_steps = {} is invalid while compression \
             = {:?}: a warm-start fine-tune re-grows pruned weights and \
             stales the frozen int8 towers, invalidating the compressed \
             model the calibration was fit on; keep fine_tune_steps = 0 on \
             compressed servers, or serve dense \
             (compression = CompressionSpec::none()) to fine-tune",
            self.fine_tune_steps,
            self.compression.level,
        );
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::at(0.1)
    }
}

/// Knobs for a [`crate::FleetServer`]: per-replica serving config plus the
/// coordinator's merge cadence and admission policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-replica serving configuration. The replica-local refresh cadence
    /// is ignored (the coordinator owns every refresh); `window` is the
    /// *per-replica* window, so the fleet calibration set holds up to
    /// `replicas × window` observations.
    pub serve: ServeConfig,
    /// Number of replica servers (disjoint event shards).
    pub replicas: usize,
    /// Coordinator merge cadence: merge replica summaries and reinstall the
    /// fleet calibration after this many fleet-wide observations.
    pub merge_every: usize,
    /// SLO-aware admission policy for deadline queries.
    pub admission: crate::admission::AdmissionConfig,
    /// Per-replica tower compression: empty (the default) serves every
    /// replica dense; otherwise one [`pitot::CompressionSpec`] per replica
    /// (`len() == replicas`). Mixed fleets are fine — each replica
    /// calibrates and predicts through its own (possibly compressed) tower
    /// cache; the merged fleet calibration pools their scores, which stay
    /// exchangeable within each replica's shard. The per-replica serve
    /// config's `compression` field is ignored in fleet mode — this vector
    /// is the single source of truth.
    pub compression: Vec<pitot::CompressionSpec>,
}

impl FleetConfig {
    /// Defaults at miscoverage `epsilon` with the given replica count:
    /// per-replica windows of 256 and a merge every 32 observations.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)` or `replicas` is zero.
    pub fn at(epsilon: f32, replicas: usize) -> Self {
        let mut serve = ServeConfig::at(epsilon);
        serve.window = 256;
        let cfg = Self {
            serve,
            replicas,
            merge_every: 32,
            admission: crate::admission::AdmissionConfig::default(),
            compression: Vec::new(),
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an invalid serve or admission config, a zero replica
    /// count or merge cadence, the
    /// [`HeadSelection::TightestOnValidation`] policy — the coordinator
    /// fits on merged score summaries and has no fleet-wide selection set,
    /// so fleets must use [`HeadSelection::SingleHead`] or
    /// [`HeadSelection::NaiveXi`] — or enabled fine-tuning: a replica
    /// fine-tune refits its served calibration from the local window alone
    /// (and diverges its model from its peers'), which would silently
    /// replace the installed fleet calibration between merges. Per-site
    /// models sharing the window protocol are a future multi-model-routing
    /// direction, not supported here.
    pub fn validate(&self) {
        self.serve.validate();
        self.admission.validate();
        assert!(
            self.replicas > 0,
            "FleetConfig.replicas = 0 is invalid: a fleet needs at least 1 \
             replica server (default: 4)"
        );
        assert!(
            self.merge_every > 0,
            "FleetConfig.merge_every = 0 is invalid: the coordinator merge \
             cadence must be at least 1 fleet-wide observation (default: 32)"
        );
        assert!(
            self.serve.selection != HeadSelection::TightestOnValidation,
            "FleetConfig.serve.selection = TightestOnValidation is not \
             supported in fleet mode: the coordinator fits on merged score \
             summaries and has no selection set; use HeadSelection::SingleHead \
             or HeadSelection::NaiveXi instead"
        );
        assert!(
            self.serve.fine_tune_steps == 0,
            "FleetConfig.serve.fine_tune_steps = {} is not supported in \
             fleet mode: a per-replica fine-tune would silently override \
             the installed fleet calibration between merges; keep \
             fine_tune_steps = 0 in fleet mode (single-server PitotServer \
             supports fine-tuning)",
            self.serve.fine_tune_steps
        );
        assert!(
            self.compression.is_empty() || self.compression.len() == self.replicas,
            "FleetConfig.compression has {} entries for {} replicas: the \
             per-replica compression vector must either be empty (every \
             replica dense, the default) or hold exactly one \
             CompressionSpec per replica",
            self.compression.len(),
            self.replicas
        );
        for spec in &self.compression {
            spec.validate();
        }
    }

    /// The compression spec replica `r` serves under ([`CompressionSpec`
    /// ][pitot::CompressionSpec]`::none()` when the vector is empty).
    pub fn replica_compression(&self, r: usize) -> pitot::CompressionSpec {
        self.compression
            .get(r)
            .copied()
            .unwrap_or_else(pitot::CompressionSpec::none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServeConfig::default().validate();
        ServeConfig::at(0.05).validate();
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn rejects_bad_epsilon() {
        let _ = ServeConfig::at(1.5);
    }

    #[test]
    #[should_panic(expected = "ServeConfig.window = 0 is invalid")]
    fn rejects_zero_window() {
        let c = ServeConfig {
            window: 0,
            ..ServeConfig::default()
        };
        c.validate();
    }

    #[test]
    fn fleet_defaults_validate() {
        FleetConfig::at(0.1, 4).validate();
    }

    #[test]
    #[should_panic(expected = "no selection set")]
    fn fleet_rejects_tightest_selection() {
        let mut c = FleetConfig::at(0.1, 2);
        c.serve.selection = HeadSelection::TightestOnValidation;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "fine_tune_steps = 0 in fleet mode")]
    fn fleet_rejects_fine_tuning() {
        let mut c = FleetConfig::at(0.1, 2);
        c.serve.fine_tune_steps = 10;
        c.validate();
    }

    /// Validation messages must name the offending field, show its value,
    /// and point at the allowed alternatives — an operator reading the
    /// panic alone should know what to change.
    #[test]
    fn validation_messages_name_field_value_and_alternatives() {
        use std::panic::catch_unwind;
        fn message<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> String {
            let err = catch_unwind(f).expect_err("must panic");
            err.downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .expect("panic carries a message")
        }

        let m = message(|| {
            let mut c = FleetConfig::at(0.1, 2);
            c.serve.selection = HeadSelection::TightestOnValidation;
            c.validate();
        });
        assert!(m.contains("FleetConfig.serve.selection"), "field: {m}");
        assert!(m.contains("TightestOnValidation"), "offending value: {m}");
        assert!(
            m.contains("HeadSelection::SingleHead") && m.contains("HeadSelection::NaiveXi"),
            "alternatives: {m}"
        );

        let m = message(|| {
            let mut c = FleetConfig::at(0.1, 2);
            c.serve.fine_tune_steps = 10;
            c.validate();
        });
        assert!(
            m.contains("FleetConfig.serve.fine_tune_steps"),
            "field: {m}"
        );
        assert!(m.contains("10"), "offending value: {m}");
        assert!(m.contains("fine_tune_steps = 0"), "fix: {m}");

        let m = message(|| {
            let mut c = FleetConfig::at(0.1, 2);
            c.replicas = 0;
            c.validate();
        });
        assert!(m.contains("FleetConfig.replicas = 0"), "{m}");

        let m = message(|| {
            let mut c = FleetConfig::at(0.1, 2);
            c.merge_every = 0;
            c.validate();
        });
        assert!(m.contains("FleetConfig.merge_every = 0"), "{m}");

        let m = message(|| {
            let _ = ServeConfig::at(1.5);
        });
        assert!(m.contains("ServeConfig.epsilon = 1.5"), "{m}");
        assert!(
            m.contains("0.05") || m.contains("0.1"),
            "typical values: {m}"
        );

        let m = message(|| {
            let c = ServeConfig {
                rebuild_growth: 0.5,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.rebuild_growth = 0.5"), "{m}");

        let m = message(|| {
            let c = ServeConfig {
                stale_epsilon_factor: 1.5,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.stale_epsilon_factor = 1.5"), "{m}");
        assert!(m.contains("(0, 1]"), "valid range: {m}");
        assert!(m.contains("staleness_threshold = 0"), "alternative: {m}");

        let m = message(|| {
            let c = ServeConfig {
                staleness_threshold: 8,
                drift_min: 64,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.staleness_threshold = 8"), "{m}");
        assert!(m.contains("drift_min = 64"), "constraint source: {m}");
        assert!(m.contains("≥ drift_min"), "fix: {m}");

        // --- trustworthy-telemetry guard/watchdog knobs (PR 8) ---
        let m = message(|| {
            let c = ServeConfig {
                guard_mad_k: -1.0,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.guard_mad_k = -1"), "{m}");
        assert!(m.contains("8.0"), "default: {m}");

        let m = message(|| {
            let c = ServeConfig {
                ingest_guard: true,
                guard_min_n: 0,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.guard_min_n = 0"), "{m}");
        assert!(m.contains("ingest_guard = false"), "alternative: {m}");

        let m = message(|| {
            let c = ServeConfig {
                ingest_guard: true,
                quarantine_retain: 0,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.quarantine_retain = 0"), "{m}");
        assert!(m.contains("never be silent"), "rationale: {m}");

        let m = message(|| {
            let c = ServeConfig {
                watchdog_z: f32::NAN,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.watchdog_z = NaN"), "{m}");

        let m = message(|| {
            let c = ServeConfig {
                ingest_guard: false,
                watchdog_z: 4.0,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.watchdog_z = 4"), "{m}");
        assert!(m.contains("ingest_guard = true"), "fix: {m}");

        let m = message(|| {
            let c = ServeConfig {
                ingest_guard: true,
                watchdog_z: 4.0,
                guard_mad_k: 0.0,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.guard_mad_k = 0"), "{m}");
        assert!(m.contains("watchdog_z = 4"), "constraint source: {m}");

        let m = message(|| {
            let c = ServeConfig {
                ingest_guard: true,
                watchdog_z: 4.0,
                watchdog_min: 0,
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.watchdog_min = 0"), "{m}");
        assert!(m.contains("watchdog_z = 0.0"), "alternative: {m}");

        // --- compressed-tower knobs ---
        let m = message(|| {
            let c = ServeConfig {
                fine_tune_steps: 10,
                compression: pitot::CompressionSpec::int8(),
                ..ServeConfig::default()
            };
            c.validate();
        });
        assert!(m.contains("ServeConfig.fine_tune_steps = 10"), "field: {m}");
        assert!(m.contains("Int8"), "offending value: {m}");
        assert!(m.contains("CompressionSpec::none()"), "alternative: {m}");

        let m = message(|| {
            let mut c = FleetConfig::at(0.1, 3);
            c.compression = vec![pitot::CompressionSpec::int8(); 2];
            c.validate();
        });
        assert!(
            m.contains("FleetConfig.compression has 2 entries for 3 replicas"),
            "{m}"
        );
        assert!(m.contains("empty"), "alternative: {m}");
    }

    /// Compressed serving composes with everything except fine-tuning; a
    /// compressed fleet validates per replica.
    #[test]
    fn compression_knob_edges_validate() {
        let c = ServeConfig {
            compression: pitot::CompressionSpec::pruned_int8(0.5),
            ..ServeConfig::default()
        };
        c.validate();
        let mut f = FleetConfig::at(0.1, 2);
        f.compression = vec![
            pitot::CompressionSpec::none(),
            pitot::CompressionSpec::pruned(0.3),
        ];
        f.validate();
        assert!(f.replica_compression(0).is_none());
        assert_eq!(f.replica_compression(1).sparsity, 0.3);
        // Empty vector: every replica dense.
        let f = FleetConfig::at(0.1, 2);
        assert!(f.replica_compression(1).is_none());
    }

    /// The guarded preset and the guard knobs' accepted edges validate:
    /// screen disabled under a live guard, watchdog off with guard on,
    /// and the full posture.
    #[test]
    fn guard_knob_edges_validate() {
        ServeConfig::guarded(0.1).validate();
        let c = ServeConfig {
            ingest_guard: true,
            guard_mad_k: 0.0, // finite/bounds checks only
            ..ServeConfig::default()
        };
        c.validate();
        let c = ServeConfig {
            ingest_guard: true,
            guard_min_n: 1,
            quarantine_retain: 1,
            watchdog_z: 4.0,
            watchdog_min: 1,
            ..ServeConfig::default()
        };
        c.validate();
        // Guard knobs are inert while the guard is off.
        let c = ServeConfig {
            ingest_guard: false,
            guard_min_n: 0,
            quarantine_retain: 0,
            ..ServeConfig::default()
        };
        c.validate();
    }

    /// The staleness knobs' accepted edges: disabled, exactly drift_min,
    /// and a factor of exactly 1 all validate.
    #[test]
    fn staleness_knob_edges_validate() {
        let c = ServeConfig {
            staleness_threshold: 0,
            stale_epsilon_factor: 1.0,
            ..ServeConfig::default()
        };
        c.validate();
        let c = ServeConfig {
            staleness_threshold: 64,
            drift_min: 64,
            ..ServeConfig::default()
        };
        c.validate();
    }
}
