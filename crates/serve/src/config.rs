//! Serving-loop configuration.

use pitot_conformal::HeadSelection;

/// Knobs for a [`crate::PitotServer`].
///
/// The defaults serve bounds at the given miscoverage with a 512-observation
/// sliding window refreshed on every arrival, micro-batches of 16 queries,
/// arity-keyed calibration pools, and fine-tuning disabled (set
/// [`ServeConfig::fine_tune_steps`] to opt in).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target miscoverage ε of the served upper bounds.
    pub epsilon: f32,
    /// Sliding calibration window capacity (observations retained).
    pub window: usize,
    /// Conformal refresh cadence: refit the served calibration after this
    /// many observations (1 = every arrival; refreshes are rank lookups
    /// over the incrementally maintained window, so 1 is affordable).
    pub refresh_every: usize,
    /// Queries buffered before a batched prediction pass answers them all.
    pub microbatch: usize,
    /// Key calibration pools by interference arity (the paper's pooling);
    /// `false` uses one global pool — e.g. to isolate the effect of
    /// windowing in comparisons.
    pub pool_by_arity: bool,
    /// Quantile-head selection policy for the served calibration. With
    /// [`HeadSelection::TightestOnValidation`] the window doubles as the
    /// selection set (a streaming approximation of the paper's dedicated
    /// selection half).
    pub selection: HeadSelection,
    /// Rolling prequential-coverage window the drift detector watches.
    pub drift_window: usize,
    /// Binomial-slack multiplier: drift fires when rolling coverage falls
    /// below `1 − ε − z·√(ε(1−ε)/n)`.
    pub drift_z: f32,
    /// Minimum monitored observations before drift can fire.
    pub drift_min: usize,
    /// Optimizer steps per drift-triggered warm-start fine-tune
    /// (`0` disables fine-tuning; recalibration alone still runs).
    pub fine_tune_steps: usize,
    /// Streamed observations retained as the fine-tune training pool. The
    /// server's dataset copy is compacted to the most recent
    /// `fine_tune_retain.max(window)` arrivals once it exceeds that bound,
    /// so a long-lived server's memory stays bounded; older observations
    /// are forgotten (the model has already absorbed them through earlier
    /// fine-tunes).
    pub fine_tune_retain: usize,
    /// Minimum observations between fine-tunes (lets the refreshed
    /// calibration and monitor re-fill before judging the updated model).
    pub fine_tune_cooldown: usize,
    /// Rebuild the training context (folding newly arrived observations
    /// into the batch pools) once the arrived set has grown by this factor
    /// since the last build; between rebuilds, fine-tunes are pure
    /// [`pitot::TrainContext::resume`] calls.
    pub rebuild_growth: f32,
}

impl ServeConfig {
    /// Defaults at miscoverage `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)`.
    pub fn at(epsilon: f32) -> Self {
        let cfg = Self {
            epsilon,
            window: 512,
            refresh_every: 1,
            microbatch: 16,
            pool_by_arity: true,
            selection: HeadSelection::NaiveXi,
            drift_window: 256,
            drift_z: 3.0,
            drift_min: 64,
            fine_tune_steps: 0,
            fine_tune_retain: 8192,
            fine_tune_cooldown: 256,
            rebuild_growth: 1.5,
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range ε, a zero window/cadence/micro-batch, or a
    /// rebuild growth factor below 1.
    pub fn validate(&self) {
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon {} outside (0,1)",
            self.epsilon
        );
        assert!(self.window > 0, "window must be positive");
        assert!(self.refresh_every > 0, "refresh cadence must be positive");
        assert!(self.microbatch > 0, "micro-batch size must be positive");
        assert!(self.drift_window > 0, "drift window must be positive");
        assert!(self.drift_z >= 0.0, "drift z must be non-negative");
        assert!(
            self.fine_tune_retain > 0,
            "fine-tune retention must be positive"
        );
        assert!(
            self.rebuild_growth >= 1.0,
            "rebuild growth factor must be ≥ 1"
        );
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::at(0.1)
    }
}

/// Knobs for a [`crate::FleetServer`]: per-replica serving config plus the
/// coordinator's merge cadence and admission policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-replica serving configuration. The replica-local refresh cadence
    /// is ignored (the coordinator owns every refresh); `window` is the
    /// *per-replica* window, so the fleet calibration set holds up to
    /// `replicas × window` observations.
    pub serve: ServeConfig,
    /// Number of replica servers (disjoint event shards).
    pub replicas: usize,
    /// Coordinator merge cadence: merge replica summaries and reinstall the
    /// fleet calibration after this many fleet-wide observations.
    pub merge_every: usize,
    /// SLO-aware admission policy for deadline queries.
    pub admission: crate::admission::AdmissionConfig,
}

impl FleetConfig {
    /// Defaults at miscoverage `epsilon` with the given replica count:
    /// per-replica windows of 256 and a merge every 32 observations.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)` or `replicas` is zero.
    pub fn at(epsilon: f32, replicas: usize) -> Self {
        let mut serve = ServeConfig::at(epsilon);
        serve.window = 256;
        let cfg = Self {
            serve,
            replicas,
            merge_every: 32,
            admission: crate::admission::AdmissionConfig::default(),
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on an invalid serve or admission config, a zero replica
    /// count or merge cadence, the
    /// [`HeadSelection::TightestOnValidation`] policy — the coordinator
    /// fits on merged score summaries and has no fleet-wide selection set,
    /// so fleets must use [`HeadSelection::SingleHead`] or
    /// [`HeadSelection::NaiveXi`] — or enabled fine-tuning: a replica
    /// fine-tune refits its served calibration from the local window alone
    /// (and diverges its model from its peers'), which would silently
    /// replace the installed fleet calibration between merges. Per-site
    /// models sharing the window protocol are a future multi-model-routing
    /// direction, not supported here.
    pub fn validate(&self) {
        self.serve.validate();
        self.admission.validate();
        assert!(self.replicas > 0, "at least one replica required");
        assert!(self.merge_every > 0, "merge cadence must be positive");
        assert!(
            self.serve.selection != HeadSelection::TightestOnValidation,
            "fleet calibration has no selection set; use SingleHead or NaiveXi"
        );
        assert!(
            self.serve.fine_tune_steps == 0,
            "per-replica fine-tuning would override the fleet calibration; \
             keep fine_tune_steps = 0 in fleet mode"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        ServeConfig::default().validate();
        ServeConfig::at(0.05).validate();
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn rejects_bad_epsilon() {
        let _ = ServeConfig::at(1.5);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let c = ServeConfig {
            window: 0,
            ..ServeConfig::default()
        };
        c.validate();
    }

    #[test]
    fn fleet_defaults_validate() {
        FleetConfig::at(0.1, 4).validate();
    }

    #[test]
    #[should_panic(expected = "no selection set")]
    fn fleet_rejects_tightest_selection() {
        let mut c = FleetConfig::at(0.1, 2);
        c.serve.selection = HeadSelection::TightestOnValidation;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "fine_tune_steps = 0 in fleet mode")]
    fn fleet_rejects_fine_tuning() {
        let mut c = FleetConfig::at(0.1, 2);
        c.serve.fine_tune_steps = 10;
        c.validate();
    }
}
