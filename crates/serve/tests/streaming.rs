//! Behavioural tests for the streaming serving loop: stationary coverage,
//! micro-batching, determinism, drift-triggered fine-tuning, and the
//! closed loop with the placement simulator.

use pitot::{train, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::HeadSelection;
use pitot_orchestrator::{BaselinePolicy, JobStream};
use pitot_serve::{run_closed_loop, Event, PitotServer, ServeConfig};
use pitot_testbed::{split::Split, Dataset, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::rc::Rc;

fn fixture() -> (Testbed, Dataset, Split, TrainedPitot) {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let mut cfg = PitotConfig::tiny();
    cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
    cfg.steps = 400;
    let trained = train(&dataset, &split, &cfg);
    (testbed, dataset, split, trained)
}

/// Shuffled test indices: an exchangeable (stationary) stream.
fn stationary_stream(split: &Split, n: usize, seed: u64) -> Vec<usize> {
    let mut idx = split.test.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx.truncate(n);
    idx
}

#[test]
fn stationary_stream_holds_coverage_within_binomial_slack() {
    let (_tb, dataset, split, trained) = fixture();
    let eps = 0.1f32;
    let mut cfg = ServeConfig::at(eps);
    cfg.window = 400;
    cfg.refresh_every = 1;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);

    let stream = stationary_stream(&split, 3000, 7);
    for (t, &i) in stream.iter().enumerate() {
        let obs = dataset.observations[i].clone();
        let fb = server
            .on_event(t as f64, Event::Observe(obs))
            .observed
            .expect("observation feedback");
        assert!(fb.bound_log.is_finite());
    }

    let stats = server.stats();
    assert_eq!(stats.bounded, stream.len());
    assert_eq!(stats.refreshes, stream.len() + 1); // +1 for the seed refresh
    assert!(server.window_len() <= 400);

    // Exchangeable stream ⇒ prequential coverage within binomial slack of
    // nominal (both the rolling window and the full session).
    let n = stats.bounded as f32;
    let slack = 3.5 * (eps * (1.0 - eps) / n).sqrt() + 0.01;
    let cov = stats.coverage();
    assert!(
        cov >= 1.0 - eps - slack,
        "session coverage {cov} below {} - {slack}",
        1.0 - eps
    );
    // No pathological over-coverage either (the window should adapt, not
    // inflate): stay under ~1 − ε/4.
    assert!(
        cov <= 1.0 - eps / 4.0,
        "session coverage {cov} suspiciously high"
    );
}

#[test]
fn microbatch_matches_synchronous_queries_bitwise() {
    let (_tb, dataset, split, trained) = fixture();
    let mut cfg = ServeConfig::at(0.1);
    cfg.microbatch = 4;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);

    // Direct synchronous answers, before queueing anything.
    let queries: Vec<(u32, u32, Vec<u32>)> = (0..10)
        .map(|q| {
            let o = &dataset.observations[split.test[q * 13]];
            (o.workload, o.platform, o.interferers.clone())
        })
        .collect();
    let direct: Vec<_> = queries
        .iter()
        .map(|(w, p, k)| server.query_now(*w, *p, k))
        .collect();

    // The same queries through the event loop: batches of 4 release on the
    // filling event; a final flush drains the remainder.
    let mut batched = Vec::new();
    for (q, (w, p, k)) in queries.iter().enumerate() {
        let out = server.on_event(
            q as f64,
            Event::Query {
                id: q as u64,
                workload: *w,
                platform: *p,
                interferers: k.clone(),
            },
        );
        if q % 4 == 3 {
            assert_eq!(out.predictions.len(), 4, "batch must release when full");
        } else {
            assert!(out.predictions.is_empty(), "partial batch must buffer");
        }
        batched.extend(out.predictions);
    }
    batched.extend(server.on_event(10.0, Event::Flush).predictions);

    assert_eq!(batched.len(), queries.len());
    for (q, p) in batched.iter().enumerate() {
        assert_eq!(p.id, q as u64);
        assert_eq!(p.point_s, direct[q].point_s, "query {q} point diverged");
        assert_eq!(p.bound_s, direct[q].bound_s, "query {q} bound diverged");
    }
    // Both paths count: 10 synchronous query_now calls + 10 batched.
    assert_eq!(server.stats().queries, 2 * queries.len());
}

#[test]
fn identical_event_sequences_are_bitwise_deterministic() {
    let (_tb, dataset, split, trained) = fixture();
    let build = |trained: TrainedPitot| {
        let mut cfg = ServeConfig::at(0.1);
        cfg.window = 128;
        let mut s = PitotServer::new(trained, dataset.clone(), cfg);
        s.seed_calibration(&split.val);
        s
    };
    let mut a = build(trained.clone());
    let mut b = build(trained);

    let stream = stationary_stream(&split, 400, 3);
    for (t, &i) in stream.iter().enumerate() {
        let ev = Event::Observe(dataset.observations[i].clone());
        let fa = a.on_event(t as f64, ev.clone()).observed.unwrap();
        let fb = b.on_event(t as f64, ev).observed.unwrap();
        assert_eq!(fa, fb, "feedback diverged at event {t}");
    }
    let qa = a.query_now(0, 0, &[1, 2]);
    let qb = b.query_now(0, 0, &[1, 2]);
    assert_eq!(qa, qb);
}

#[test]
fn runtime_drift_fires_fine_tune_and_recovers_coverage() {
    // The cluster slows down mid-stream (thermal throttling: every runtime
    // grows by e^0.6). A static model+calibration under-covers; the drift
    // detector must fire, the warm-start fine-tune must run, and the
    // post-update loop must recover coverage.
    let (_tb, dataset, split, trained) = fixture();
    let eps = 0.1f32;
    let mut cfg = ServeConfig::at(eps);
    cfg.window = 300;
    cfg.drift_window = 150;
    cfg.drift_min = 60;
    cfg.fine_tune_steps = 60;
    cfg.fine_tune_cooldown = 150;
    // Freeze recalibration so recovery must come from the fine-tune path
    // (drift detection watches the served bounds either way). A huge
    // cadence means the only refreshes are the seed's and the
    // post-fine-tune one.
    cfg.refresh_every = usize::MAX;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);

    let stream = stationary_stream(&split, 2500, 11);
    let drift = 0.6f32;
    let mut pre_drift_miss = 0usize;
    let mut post_events = 0usize;
    let mut post_covered = 0usize;
    for (t, &i) in stream.iter().enumerate() {
        let mut obs = dataset.observations[i].clone();
        obs.runtime_s *= drift.exp(); // the world got slower
        let fb = server
            .on_event(t as f64, Event::Observe(obs))
            .observed
            .unwrap();
        if server.stats().fine_tunes == 0 && !fb.covered {
            pre_drift_miss += 1;
        }
        if server.stats().fine_tunes > 0 && !fb.fine_tuned {
            post_events += 1;
            if fb.covered {
                post_covered += 1;
            }
        }
    }

    let stats = server.stats();
    assert!(
        stats.fine_tunes >= 1,
        "drift detector never fired a fine-tune (misses before: {pre_drift_miss})"
    );
    // The detector fires as soon as drift_min outcomes are in, so the
    // pre-fine-tune stretch is short — but it must show real misses.
    assert!(
        pre_drift_miss > 15,
        "drifted stream should miss the stale bounds often, got {pre_drift_miss}"
    );
    assert!(
        post_events > 300,
        "not enough post-fine-tune stream to judge"
    );
    let post_cov = post_covered as f32 / post_events as f32;
    // The fine-tune + window re-score must restore coverage to near
    // nominal (generous slack: the model absorbs the shift imperfectly and
    // the re-scored window carries mixed pre/post-update scores).
    assert!(
        post_cov >= 1.0 - eps - 0.08,
        "post-fine-tune coverage {post_cov} did not recover"
    );
}

#[test]
fn fine_tune_disabled_never_touches_the_model() {
    let (_tb, dataset, split, trained) = fixture();
    let before = trained.model.store().params().to_vec();
    let mut cfg = ServeConfig::at(0.1);
    cfg.fine_tune_steps = 0;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);
    for (t, &i) in stationary_stream(&split, 500, 5).iter().enumerate() {
        let mut obs = dataset.observations[i].clone();
        obs.runtime_s *= 3.0; // heavy drift, but fine-tuning is off
        server.on_event(t as f64, Event::Observe(obs));
    }
    assert_eq!(server.stats().fine_tunes, 0);
    assert_eq!(server.trained().model.store().params(), &before[..]);
    // The dataset copy must not have grown either (arrivals are only
    // recorded when they can be trained on).
    assert_eq!(
        server.dataset().observations.len(),
        dataset.observations.len()
    );
}

#[test]
fn fine_tune_pool_compaction_bounds_memory_and_keeps_tuning() {
    // A long-lived server with fine-tuning enabled must not grow without
    // bound: the streamed pool compacts to the retention bound, indices
    // stay valid across compactions, and fine-tunes keep working after.
    let (_tb, dataset, split, trained) = fixture();
    let base = dataset.observations.len();
    let mut cfg = ServeConfig::at(0.1);
    cfg.window = 100;
    cfg.drift_window = 80;
    cfg.drift_min = 40;
    cfg.fine_tune_steps = 20;
    cfg.fine_tune_cooldown = 200;
    cfg.fine_tune_retain = 200;
    // Freeze recalibration (as in the drift test) so sustained drift keeps
    // the monitor firing instead of being absorbed by the window.
    cfg.refresh_every = usize::MAX;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);

    let mut last_tune_at = 0usize;
    for (t, &i) in stationary_stream(&split, 1500, 13).iter().enumerate() {
        let mut obs = dataset.observations[i].clone();
        // Drift escalates mid-stream, after compaction has happened at
        // ~400 arrivals, so a fine-tune must also run post-compaction.
        let drift = if t < 600 { 0.6f32 } else { 1.4 };
        obs.runtime_s *= drift.exp();
        let fb = server
            .on_event(t as f64, Event::Observe(obs))
            .observed
            .unwrap();
        if fb.fine_tuned {
            last_tune_at = t;
        }
        // Invariant at every step: the dataset copy never exceeds the base
        // plus twice the retention bound (compaction triggers at 2×).
        assert!(
            server.dataset().observations.len() <= base + 400,
            "dataset grew past the retention bound at event {t}: {}",
            server.dataset().observations.len()
        );
    }
    // 1500 streamed events with retention 200 ⇒ compaction definitely ran,
    // and fine-tunes still fired across compaction boundaries.
    assert!(server.dataset().observations.len() < base + 1500);
    assert!(
        server.stats().fine_tunes >= 2,
        "expected fine-tunes on both drift levels, got {}",
        server.stats().fine_tunes
    );
    assert!(
        last_tune_at > 600,
        "no fine-tune ran after compaction (last at {last_tune_at})"
    );
    let cov = server.stats().coverage();
    assert!((0.0..=1.0).contains(&cov));
}

#[test]
fn tightest_selection_serves_and_stays_calibrated() {
    let (_tb, dataset, split, trained) = fixture();
    let eps = 0.1f32;
    let mut cfg = ServeConfig::at(eps);
    cfg.selection = HeadSelection::TightestOnValidation;
    cfg.window = 300;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);
    for (t, &i) in stationary_stream(&split, 1200, 9).iter().enumerate() {
        server.on_event(t as f64, Event::Observe(dataset.observations[i].clone()));
    }
    let cov = server.stats().coverage();
    let slack = 3.5 * (eps * (1.0 - eps) / server.stats().bounded as f32).sqrt() + 0.02;
    assert!(cov >= 1.0 - eps - slack, "coverage {cov}");
}

#[test]
fn closed_loop_feeds_every_completion_back() {
    let (tb, dataset, split, trained) = fixture();
    let mut cfg = ServeConfig::at(0.1);
    cfg.window = 200;
    let mut server = PitotServer::new(trained, dataset, cfg);
    server.seed_calibration(&split.val);
    let server = Rc::new(RefCell::new(server));

    let jobs = JobStream::generate(&tb, 120, 0.2, 21);
    let site: Vec<usize> = (0..5).collect();
    let report = run_closed_loop(
        &tb,
        &jobs,
        &mut BaselinePolicy::deadline_aware(),
        &server,
        Some(&site),
    );
    assert_eq!(report.completed, 120);

    let server = server.borrow();
    let stats = server.stats();
    // Every completion streamed back in and was judged prequentially.
    assert_eq!(stats.observations, 120);
    assert_eq!(stats.bounded, 120);
    // Placement decisions queried the live server, and those synchronous
    // queries are counted (memoized: one per candidate question, even when
    // the policy reads both the point estimate and the bound).
    assert!(stats.queries >= 120, "queries {}", stats.queries);
    assert!(stats.refreshes > 100, "refreshes {}", stats.refreshes);
    // The loop's bounds stay sane: rolling coverage is a valid fraction.
    let cov = stats.coverage();
    assert!((0.0..=1.0).contains(&cov));
}

#[test]
#[should_panic(expected = "positive finite duration")]
fn rejects_non_finite_observed_runtime() {
    let (_tb, dataset, split, trained) = fixture();
    let mut server = PitotServer::new(trained, dataset.clone(), ServeConfig::at(0.1));
    let mut obs = dataset.observations[split.test[0]].clone();
    obs.runtime_s = 0.0; // a telemetry glitch must not poison the window
    server.on_event(0.0, Event::Observe(obs));
}
