//! Fail-noisy behaviour of the trust layer: ingest-guard quarantine with
//! the clean-subset oracle pin, Byzantine summary rejection with the
//! mute-twin bitwise pin, replay/skew clock screening, the miscoverage
//! watchdog's quarantine-rollback, and serde round-trips of every audit
//! record.

use pitot::{train, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::HeadSelection;
use pitot_serve::{
    AdmissionConfig, Event, FaultPlan, FleetConfig, FleetServer, GuardStats, PitotServer,
    QuarantineCause, QuarantineRecord, RejectCause, RejectedSummary, ServeConfig, WatchdogIncident,
};
use pitot_testbed::{split::Split, Dataset, Observation, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn fixture() -> (Dataset, Split, TrainedPitot) {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let mut cfg = PitotConfig::tiny();
    cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
    cfg.steps = 300;
    let trained = train(&dataset, &split, &cfg);
    (dataset, split, trained)
}

fn serve_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::at(0.1);
    cfg.window = 128;
    cfg.selection = HeadSelection::NaiveXi;
    cfg.fine_tune_steps = 0;
    cfg
}

fn fleet_cfg(replicas: usize, merge_every: usize) -> FleetConfig {
    FleetConfig {
        serve: serve_cfg(),
        replicas,
        merge_every,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

fn stream(_dataset: &Dataset, split: &Split, n: usize, seed: u64) -> Vec<usize> {
    let mut idx = split.test.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    while idx.len() < n {
        idx.extend_from_within(0..idx.len().min(n - idx.len()));
    }
    idx.truncate(n);
    idx
}

/// Streams observations into `fleet`, judging coverage on the accepted
/// (non-quarantined, non-lost) subset.
fn drive(fleet: &mut FleetServer, dataset: &Dataset, idx: &[usize]) -> (usize, usize) {
    let (mut covered, mut judged) = (0usize, 0usize);
    for (t, &i) in idx.iter().enumerate() {
        let (_, fb) = fleet.observe(t as f64, dataset.observations[i].clone());
        if let Some(fb) = fb {
            judged += 1;
            covered += usize::from(fb.covered);
        }
    }
    (covered, judged)
}

#[test]
fn guarded_server_is_bitwise_pinned_to_the_clean_subset_oracle() {
    // The guarded server fed a poisoned stream must hold exactly the
    // calibration state of the same server fed only the observations the
    // guard accepted: quarantine must be a pure filter, bitwise.
    let (dataset, split, trained) = fixture();
    let mut cfg = serve_cfg();
    cfg.ingest_guard = true;
    let mut guarded = PitotServer::new(trained.clone(), dataset.clone(), cfg.clone());
    guarded.seed_calibration(&split.val);

    let idx = stream(&dataset, &split, 200, 31);
    let mut accepted: Vec<Observation> = Vec::new();
    for (t, &i) in idx.iter().enumerate() {
        let mut obs = dataset.observations[i].clone();
        // A deterministic sprinkle of corruption: NaN, −∞ spirit (negative
        // duration), and heavy scale outliers.
        match t % 11 {
            0 => obs.runtime_s = f32::NAN,
            5 => obs.runtime_s = -obs.runtime_s,
            8 => obs.runtime_s *= (14.0f32).exp(),
            _ => {}
        }
        let resp = guarded.on_event(t as f64, Event::Observe(obs.clone()));
        if resp.quarantined.is_none() {
            accepted.push(obs);
        } else {
            assert!(resp.observed.is_none(), "quarantined AND judged");
        }
    }
    let stats = guarded.guard_stats();
    assert!(stats.is_consistent());
    assert!(stats.nonfinite_runtimes > 0, "NaN injections never landed");
    assert!(stats.nonpositive_runtimes > 0);
    assert!(stats.mad_outliers > 0, "scale outliers passed the screen");
    // Zero silent drops: every stream position is either judged or audited.
    assert_eq!(accepted.len() + stats.quarantined, idx.len());
    assert_eq!(guarded.stats().bounded, accepted.len());
    assert_eq!(
        guarded.quarantine_records().count(),
        stats.quarantined.min(cfg.quarantine_retain)
    );

    // Oracle: the same config replayed over the accepted subset only.
    let mut oracle = PitotServer::new(trained, dataset.clone(), cfg);
    oracle.seed_calibration(&split.val);
    for (t, obs) in accepted.into_iter().enumerate() {
        let resp = oracle.on_event(t as f64, Event::Observe(obs));
        assert!(resp.quarantined.is_none(), "oracle re-quarantined");
    }
    assert_eq!(
        guarded.window_summary(0),
        oracle.window_summary(0),
        "guarded window diverged from the clean-subset oracle"
    );
}

#[test]
fn fleet_quarantines_injected_corruption_with_full_accounting() {
    let (dataset, split, trained) = fixture();
    let plan = FaultPlan::none(22)
        .corrupt_observations(0.05)
        .outlier_bursts(0.03, 10.0, 3);
    let mut cfg = fleet_cfg(3, 16);
    cfg.serve.ingest_guard = true;
    cfg.serve.guard_mad_k = 6.0;
    let mut fleet = FleetServer::with_faults(trained, &dataset, cfg, plan);
    fleet.seed_calibration(&split.val);
    let idx = stream(&dataset, &split, 400, 32);
    let (covered, judged) = drive(&mut fleet, &dataset, &idx);

    let s = fleet.stats();
    assert!(s.injected_corrupt > 0, "corruption draws never fired");
    assert!(s.injected_outliers > 0, "outlier draws never fired");
    assert!(s.guard.is_consistent());
    // Every corrupted runtime landed in a runtime-level quarantine cause
    // (no crashes in this plan, so nothing was lost in transit).
    assert_eq!(
        s.guard.nonfinite_runtimes + s.guard.nonpositive_runtimes,
        s.injected_corrupt
    );
    assert!(s.guard.mad_outliers > 0, "no outlier was screened");
    // Zero silent drops, fleet-wide: delivered = judged + quarantined at
    // ingest (watchdog purges re-audit entries that were already judged).
    let ingest_quarantined =
        s.guard.nonfinite_runtimes + s.guard.nonpositive_runtimes + s.guard.mad_outliers;
    assert_eq!(s.observations, s.bounded + ingest_quarantined);
    assert_eq!(s.bounded, judged);
    // The guarded fleet's coverage on accepted telemetry holds.
    let cov = covered as f32 / judged as f32;
    assert!(cov >= 0.85, "guarded coverage {cov} collapsed under poison");
}

#[test]
fn byzantine_replica_never_shifts_the_fleet_calibration() {
    // The tampering replica's summaries are all rejected by the integrity
    // screen, so the installed fleet calibration must be bitwise identical
    // to the muted-oracle twin's — the Byzantine replica degrades only
    // itself.
    let (dataset, split, trained) = fixture();
    let idx = stream(&dataset, &split, 300, 33);
    let run = |plan: FaultPlan| {
        let mut fleet = FleetServer::with_faults(trained.clone(), &dataset, fleet_cfg(3, 16), plan);
        fleet.seed_calibration(&split.val);
        drive(&mut fleet, &dataset, &idx);
        fleet
    };
    let tampered = run(FaultPlan::none(21).byzantine_replica(1, 50));
    let muted = run(FaultPlan::none(21).mute_replica(1, 50));

    let (a, b) = (
        tampered
            .fleet_conformal()
            .expect("tampered fleet calibrated"),
        muted.fleet_conformal().expect("muted fleet calibrated"),
    );
    assert_eq!(a.pool_calibrations(), b.pool_calibrations());
    for pool in 0..4 {
        assert_eq!(
            a.calibration_for(pool),
            b.calibration_for(pool),
            "Byzantine replica shifted the fleet calibration (pool {pool})"
        );
    }
    let st = tampered.stats();
    assert!(st.byzantine_emissions > 0, "the Byzantine never emitted");
    assert!(
        st.rejected_summaries > 0,
        "no tampered summary was rejected"
    );
    assert!(
        tampered.rejected_audit().iter().all(|r| r.replica == 1),
        "a rejection named an honest replica"
    );
    // Every tamper mode in the cycle lands in a structural cause.
    assert!(tampered
        .rejected_audit()
        .iter()
        .any(|r| r.cause == RejectCause::BadChecksum));
    // The muted twin consumed identical draws but emitted nothing.
    assert!(muted.stats().byzantine_emissions > 0);
    assert_eq!(muted.stats().rejected_summaries, 0);
}

#[test]
fn replayed_and_skewed_summaries_are_rejected_and_audited() {
    let (dataset, split, trained) = fixture();
    let plan = FaultPlan::none(23).replay_summaries(0.4).skew_clocks(0.3);
    let mut fleet = FleetServer::with_faults(trained, &dataset, fleet_cfg(3, 8), plan);
    fleet.seed_calibration(&split.val);
    let idx = stream(&dataset, &split, 300, 34);
    let (covered, judged) = drive(&mut fleet, &dataset, &idx);

    let s = fleet.stats();
    assert!(s.injected_replays > 0, "replay draws never fired");
    assert!(s.injected_skews > 0, "skew draws never fired");
    assert!(s.rejected_summaries > 0);
    let causes: Vec<RejectCause> = fleet.rejected_audit().iter().map(|r| r.cause).collect();
    assert!(causes.contains(&RejectCause::Replayed), "{causes:?}");
    assert!(causes.contains(&RejectCause::SkewedClock), "{causes:?}");
    // Honest rounds still land between injections: the fleet keeps a
    // calibration and coverage holds.
    assert!(fleet.fleet_conformal().is_some());
    let cov = covered as f32 / judged as f32;
    assert!(cov >= 0.85, "coverage {cov} under replay/skew injection");
}

#[test]
fn miscoverage_watchdog_rolls_back_poison_the_screen_missed() {
    // Operating point where the MAD screen is still warming up
    // (guard_min_n above the window capacity), so moderate poison sails
    // through ingest — the watchdog is the only line of defense.
    let (dataset, split, trained) = fixture();
    let mut cfg = serve_cfg();
    cfg.ingest_guard = true;
    cfg.guard_min_n = 10_000;
    cfg.guard_mad_k = 3.0;
    cfg.watchdog_z = 1.0;
    cfg.watchdog_min = 32;
    let mut server = PitotServer::new(trained, dataset.clone(), cfg);
    server.seed_calibration(&split.val);
    assert_eq!(server.window_len(), 128);

    let idx = stream(&dataset, &split, 80, 35);
    let mut fired_at = None;
    for (t, &i) in idx.iter().enumerate() {
        let mut obs = dataset.observations[i].clone();
        obs.runtime_s *= (5.0f32).exp(); // ~150x: wrong, but finite and positive
        server.on_event(t as f64, Event::Observe(obs));
        if !server.watchdog_incidents().is_empty() {
            fired_at = Some(t);
            break;
        }
    }
    assert!(
        fired_at.is_some(),
        "watchdog never fired on sustained poison"
    );
    let incident = server.watchdog_incidents()[0];
    assert!(
        incident.purged >= 16,
        "rollback purged only {}",
        incident.purged
    );
    assert_eq!(incident.kept + incident.purged, 128);
    assert_eq!(server.window_len(), incident.kept);
    assert!(incident.coverage < 0.85, "fired at healthy coverage");
    let g = server.guard_stats();
    assert!(g.is_consistent());
    assert_eq!(g.watchdog_fires, 1);
    assert_eq!(g.watchdog_purged, incident.purged);
    assert!(server
        .quarantine_records()
        .any(|r| r.cause == QuarantineCause::WatchdogRollback));
    // The rollback advanced the window clock past the poisoned snapshots.
    assert!(server.window_clock() > 128 + fired_at.unwrap() as u64);
}

#[test]
fn audit_records_round_trip_through_serde() {
    let record = QuarantineRecord {
        at: 42,
        cause: QuarantineCause::NonFiniteRuntime,
        runtime_bits: f32::NAN.to_bits(),
        score: None,
    };
    let json = serde_json::to_string(&record).expect("serialize record");
    let back: QuarantineRecord = serde_json::from_str(&json).expect("deserialize record");
    assert_eq!(record, back);
    assert!(back.runtime_s().is_nan(), "NaN lost in the bits round-trip");

    let stats = GuardStats {
        quarantined: 7,
        nonfinite_runtimes: 2,
        nonpositive_runtimes: 1,
        mad_outliers: 3,
        watchdog_purged: 1,
        watchdog_fires: 1,
    };
    let json = serde_json::to_string(&stats).expect("serialize stats");
    let back: GuardStats = serde_json::from_str(&json).expect("deserialize stats");
    assert_eq!(stats, back);
    assert!(back.is_consistent());

    let incident = WatchdogIncident {
        at: 9,
        coverage: 0.55,
        purged: 31,
        kept: 97,
    };
    let json = serde_json::to_string(&incident).expect("serialize incident");
    let back: WatchdogIncident = serde_json::from_str(&json).expect("deserialize incident");
    assert_eq!(incident, back);

    for cause in [
        RejectCause::BadChecksum,
        RejectCause::NonFiniteScore,
        RejectCause::UnsortedRun,
        RejectCause::CardinalityLie,
        RejectCause::Replayed,
        RejectCause::SkewedClock,
    ] {
        let rejected = RejectedSummary {
            replica: 3,
            at_obs: 1234,
            cause,
        };
        let json = serde_json::to_string(&rejected).expect("serialize rejection");
        let back: RejectedSummary = serde_json::from_str(&json).expect("deserialize rejection");
        assert_eq!(rejected, back);
    }
}
