//! Deterministic-twin equivalence: the concurrent runtime
//! (`ConcurrentFleet`) must be **bitwise indistinguishable** from the
//! simulated-clock `FleetServer` on any trace — same observations, same
//! predictions, same admission decisions, same stats, same audits — for
//! every worker count. Seeded arbitrary traces interleave observations,
//! deadline queries, and resolves; fault cases add replica crashes, corrupt
//! runtimes, and outlier bursts (the observation-path subset the concurrent
//! runtime supports).
//!
//! CI runs this suite under `PITOT_THREADS=1` and `PITOT_THREADS=4`, so the
//! linalg pool size is covered cross-process; the in-process `workers`
//! override covers lane counts 1 (inline) and 4 (threaded) in one run.

use pitot::{train, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::HeadSelection;
use pitot_serve::{
    run_trace_simulated, AdmissionConfig, ConcurrentConfig, ConcurrentFleet, DeadlineQuery,
    FaultPlan, FleetConfig, FleetServer, ServeConfig, TraceEvent, TraceOutcome,
};
use pitot_testbed::{split::Split, Dataset, Testbed, TestbedConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn fixture() -> &'static (Dataset, Split, TrainedPitot) {
    static FIXTURE: OnceLock<(Dataset, Split, TrainedPitot)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let testbed = Testbed::generate(&TestbedConfig::small());
        let dataset = testbed.collect_dataset();
        let split = Split::stratified(&dataset, 0.6, 0);
        let mut cfg = PitotConfig::tiny();
        cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
        cfg.steps = 300;
        let trained = train(&dataset, &split, &cfg);
        (dataset, split, trained)
    })
}

fn clean_cfg(replicas: usize) -> FleetConfig {
    let mut serve = ServeConfig::at(0.1);
    serve.window = 64;
    serve.selection = HeadSelection::NaiveXi;
    FleetConfig {
        serve,
        replicas,
        merge_every: 16,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

/// Ingest-guarded config (required before injecting corrupt runtimes —
/// unguarded servers assert on non-finite observations). The watchdog must
/// stay off: its rollback refits replica-local calibrations the concurrent
/// snapshot read path would never see, so `ConcurrentConfig` rejects it.
fn guarded_cfg(replicas: usize) -> FleetConfig {
    let mut serve = ServeConfig::guarded(0.1);
    serve.window = 128;
    serve.selection = HeadSelection::NaiveXi;
    serve.watchdog_z = 0.0;
    FleetConfig {
        serve,
        replicas,
        merge_every: 16,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

/// Builds a seeded trace of `n` interleaved events: ~55% observations,
/// ~30% deadline queries (unique ids), ~15% resolves of a random pending
/// query at its realized runtime.
fn build_trace(rng: &mut TestRng, n: usize) -> Vec<TraceEvent> {
    let (dataset, split, _) = fixture();
    let pool = &split.test;
    let mut events = Vec::with_capacity(n);
    let mut next_id = 0u64;
    let mut pending: Vec<(u64, f64)> = Vec::new();
    for _ in 0..n {
        let draw = rng.unit();
        if draw < 0.55 {
            let i = pool[rng.below(0, pool.len())];
            events.push(TraceEvent::Observe(dataset.observations[i].clone()));
        } else if draw < 0.85 || pending.is_empty() {
            let i = pool[rng.below(0, pool.len())];
            let obs = &dataset.observations[i];
            let deadline_s = f64::from(obs.runtime_s) * (0.75 + 2.25 * rng.unit());
            pending.push((next_id, f64::from(obs.runtime_s)));
            events.push(TraceEvent::Deadline(DeadlineQuery {
                id: next_id,
                workload: obs.workload,
                platform: obs.platform,
                interferers: obs.interferers.clone(),
                deadline_s,
            }));
            next_id += 1;
        } else {
            let (id, realized_s) = pending.swap_remove(rng.below(0, pending.len()));
            events.push(TraceEvent::Resolve { id, realized_s });
        }
    }
    events
}

/// The core assertion: the same trace through the simulated twin and a
/// `workers`-lane concurrent fleet yields identical outcome vectors, fleet
/// stats, degraded-window audits, and rejected-summary audits.
fn assert_twin_equivalent(
    cfg: FleetConfig,
    plan: Option<FaultPlan>,
    events: &[TraceEvent],
    workers: usize,
) {
    let (dataset, split, trained) = fixture();
    let mut sim = match &plan {
        Some(p) => FleetServer::with_faults(trained.clone(), dataset, cfg.clone(), p.clone()),
        None => FleetServer::new(trained.clone(), dataset, cfg.clone()),
    };
    sim.seed_calibration(&split.val);
    let expected = run_trace_simulated(&mut sim, 0.0, events);

    let ccfg = ConcurrentConfig {
        fleet: cfg,
        workers: Some(workers),
    };
    let mut conc = match plan {
        Some(p) => ConcurrentFleet::with_faults(trained.clone(), dataset, ccfg, p),
        None => ConcurrentFleet::new(trained.clone(), dataset, ccfg),
    };
    conc.seed_calibration(&split.val);
    let got = conc.run_trace(events);

    assert_eq!(got.len(), expected.len());
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g, e, "outcome {i} diverged under {workers} worker(s)");
    }
    assert_eq!(
        conc.stats(),
        sim.stats(),
        "fleet stats diverged under {workers} worker(s)"
    );
    assert_eq!(
        conc.degraded_audit(),
        sim.degraded_audit(),
        "degraded audit diverged under {workers} worker(s)"
    );
    assert_eq!(
        conc.rejected_audit(),
        sim.rejected_audit(),
        "rejected audit diverged under {workers} worker(s)"
    );
    // The lanes must have actually processed every routed observation.
    let processed: u64 = conc.progress().iter().map(|p| p.processed).sum();
    let observed = got
        .iter()
        .filter(|o| {
            matches!(
                o,
                TraceOutcome::Observed {
                    feedback: Some(_),
                    ..
                }
            )
        })
        .count() as u64
        + conc.stats().guard.quarantined as u64;
    assert_eq!(processed, observed, "lane progress lost observations");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
    /// Clean fleets: arbitrary interleaved traces, three replicas, inline
    /// and threaded lane modes.
    #[test]
    fn arbitrary_traces_match_the_twin(seed in 0u64..u64::MAX, n in 120usize..220) {
        let mut rng = TestRng::from_state(seed);
        let events = build_trace(&mut rng, n);
        for workers in [1usize, 4] {
            assert_twin_equivalent(clean_cfg(3), None, &events, workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
    /// Faulted fleets: a replica crash with warm rejoin plus corrupt
    /// runtimes and outlier bursts (PR 7–8 schedules) — guard quarantines,
    /// lost observations, failover queries, and the degraded-window audit
    /// must all match the twin bit for bit.
    #[test]
    fn faulted_traces_match_the_twin(seed in 0u64..u64::MAX, n in 160usize..240) {
        let mut rng = TestRng::from_state(seed);
        let events = build_trace(&mut rng, n);
        let crash_at = 20 + rng.below(0, 20);
        let rejoin_at = crash_at + 30 + rng.below(0, 30);
        let plan = FaultPlan::none(seed ^ 0xFA_17)
            .crash(1, crash_at, rejoin_at)
            .corrupt_observations(0.05)
            .outlier_bursts(0.03, 2.0, 3);
        for workers in [1usize, 4] {
            assert_twin_equivalent(guarded_cfg(4), Some(plan.clone()), &events, workers);
        }
    }
}

#[test]
fn streaming_across_run_trace_calls_matches_one_twin_run() {
    // run_trace carries its event clock across calls: two chunks through
    // the concurrent fleet must equal one continuous twin run.
    let (dataset, split, trained) = fixture();
    let mut rng = TestRng::deterministic("twin::streaming_chunks");
    let events = build_trace(&mut rng, 180);
    let (head, tail) = events.split_at(80);

    let mut sim = FleetServer::new(trained.clone(), dataset, clean_cfg(3));
    sim.seed_calibration(&split.val);
    let mut expected = run_trace_simulated(&mut sim, 0.0, head);
    expected.extend(run_trace_simulated(&mut sim, head.len() as f64, tail));

    let ccfg = ConcurrentConfig {
        fleet: clean_cfg(3),
        workers: Some(2),
    };
    let mut conc = ConcurrentFleet::new(trained.clone(), dataset, ccfg);
    conc.seed_calibration(&split.val);
    let mut got = conc.run_trace(head);
    got.extend(conc.run_trace(tail));

    assert_eq!(got, expected);
    assert_eq!(conc.stats(), sim.stats());
}

/// `clean_cfg` with replica 1 serving a compressed tower.
fn compressed_cfg(replicas: usize, spec: pitot::CompressionSpec) -> FleetConfig {
    let mut cfg = clean_cfg(replicas);
    let mut compression = vec![pitot::CompressionSpec::none(); replicas];
    compression[1] = spec;
    cfg.compression = compression;
    cfg
}

#[test]
fn fleet_with_a_compressed_replica_matches_the_twin() {
    // One replica serving pruned+int8 towers must replay bitwise in the
    // concurrent runtime: the compressed tower cache is frozen, so the
    // same trace yields the same predictions, admission decisions, and
    // stats for every lane shape.
    let mut rng = TestRng::deterministic("twin::compressed_replica");
    let events = build_trace(&mut rng, 200);
    for spec in [
        pitot::CompressionSpec::int8(),
        pitot::CompressionSpec::pruned_int8(0.5),
    ] {
        for workers in [1usize, 3] {
            assert_twin_equivalent(compressed_cfg(3, spec), None, &events, workers);
        }
    }
}

#[test]
fn compressed_replica_crash_and_rejoin_matches_the_twin() {
    // The compressed replica crashes across several merge rounds and
    // rejoins warm: it must come back *compressed* in both runtimes, or
    // post-rejoin predictions (scored against a dense cache) would split
    // the twins.
    let mut rng = TestRng::deterministic("twin::compressed_crash");
    let events = build_trace(&mut rng, 240);
    let plan = FaultPlan::none(91).crash(1, 25, 100);
    for workers in [1usize, 2, 3] {
        assert_twin_equivalent(
            compressed_cfg(3, pitot::CompressionSpec::pruned_int8(0.4)),
            Some(plan.clone()),
            &events,
            workers,
        );
    }
}

#[test]
fn crash_with_every_worker_count_matches_the_twin() {
    // A fixed, audit-heavy schedule (crash spans several merge rounds)
    // across every distinct lane shape for 3 replicas: inline, 2 lanes
    // (one doubled-up), and one lane per replica.
    let mut rng = TestRng::deterministic("twin::crash_worker_counts");
    let events = build_trace(&mut rng, 260);
    let plan = FaultPlan::none(77).crash(2, 30, 110);
    for workers in [1usize, 2, 3] {
        assert_twin_equivalent(clean_cfg(3), Some(plan.clone()), &events, workers);
    }
}

#[test]
fn shard_routing_matches_the_twin() {
    let (dataset, split, trained) = fixture();
    let fleet = FleetServer::new(trained.clone(), dataset, clean_cfg(5));
    let conc = ConcurrentFleet::new(
        trained.clone(),
        dataset,
        ConcurrentConfig {
            fleet: clean_cfg(5),
            workers: Some(1),
        },
    );
    for &i in split.test.iter().take(64) {
        let o = &dataset.observations[i];
        assert_eq!(
            conc.shard_for(o.workload, o.platform),
            fleet.shard_for(o.workload, o.platform)
        );
    }
}
