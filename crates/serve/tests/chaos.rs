//! Fault-injection behaviour of the fleet: crash/rejoin warm recovery,
//! gossip fallback during coordinator outages, staleness-triggered local
//! fallback with degraded admission audit, lossy-merge retry/delay
//! handling, the skip-install optimisation, and bitwise determinism of
//! chaos runs.

use pitot::{train, Objective, PitotConfig, TrainedPitot};
use pitot_conformal::HeadSelection;
use pitot_serve::{
    AdmissionConfig, DeadlineQuery, DegradedCause, FaultPlan, FleetConfig, FleetServer, ServeConfig,
};
use pitot_testbed::{split::Split, Dataset, Testbed, TestbedConfig};
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn fixture() -> (Dataset, Split, TrainedPitot) {
    let testbed = Testbed::generate(&TestbedConfig::small());
    let dataset = testbed.collect_dataset();
    let split = Split::stratified(&dataset, 0.6, 0);
    let mut cfg = PitotConfig::tiny();
    cfg.objective = Objective::Quantiles(vec![0.5, 0.8, 0.9, 0.95]);
    cfg.steps = 300;
    let trained = train(&dataset, &split, &cfg);
    (dataset, split, trained)
}

fn fleet_cfg(replicas: usize, merge_every: usize) -> FleetConfig {
    let mut serve = ServeConfig::at(0.1);
    serve.window = 128;
    serve.selection = HeadSelection::NaiveXi;
    serve.fine_tune_steps = 0;
    FleetConfig {
        serve,
        replicas,
        merge_every,
        admission: AdmissionConfig::default(),
        compression: Vec::new(),
    }
}

fn stream(dataset: &Dataset, split: &Split, n: usize, seed: u64) -> Vec<usize> {
    let mut idx = split.test.clone();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    while idx.len() < n {
        idx.extend_from_within(0..idx.len().min(n - idx.len()));
    }
    idx.truncate(n);
    assert!(idx.iter().all(|&i| i < dataset.observations.len()));
    idx
}

/// FNV-1a over every admission decision and served bound — the digest CI
/// diffs across `PITOT_THREADS`.
#[derive(Clone, Copy)]
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn push(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Drives `fleet` over `idx`: every event issues a deadline query (decided
/// prequentially), resolves it, then streams the observation back in.
/// Returns `(decision digest, per-event coverage flags)`.
fn drive(
    fleet: &mut FleetServer,
    dataset: &Dataset,
    idx: &[usize],
    seed: u64,
) -> (u64, Vec<Option<bool>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut digest = Digest::new();
    let mut covered = Vec::with_capacity(idx.len());
    for (t, &i) in idx.iter().enumerate() {
        let obs = dataset.observations[i].clone();
        let mult = rng.gen_range(0.75f64..3.0);
        let deadline_s = f64::from(obs.runtime_s) * mult;
        let out = fleet.deadline_query(DeadlineQuery {
            id: t as u64,
            workload: obs.workload,
            platform: obs.platform,
            interferers: obs.interferers.clone(),
            deadline_s,
        });
        digest.push(&[u8::from(out.decision.admitted()), u8::from(out.failover)]);
        digest.push(&out.prediction.bound_s.to_bits().to_le_bytes());
        fleet.resolve(t as u64, f64::from(obs.runtime_s));
        let (_, fb) = fleet.observe(t as f64, obs);
        digest.push(&[fb.as_ref().map_or(2, |f| u8::from(f.covered))]);
        covered.push(fb.map(|f| f.covered));
    }
    (digest.0, covered)
}

fn coverage(flags: &[Option<bool>]) -> f32 {
    let judged: Vec<bool> = flags.iter().filter_map(|&c| c).collect();
    judged.iter().filter(|&&c| c).count() as f32 / judged.len().max(1) as f32
}

#[test]
fn crash_rejoin_recovers_warm_and_audits_the_window() {
    let (dataset, split, trained) = fixture();
    let plan = FaultPlan::none(11).crash(1, 120, 260);
    let mut fleet = FleetServer::with_faults(trained, &dataset, fleet_cfg(3, 16), plan);
    fleet.seed_calibration(&split.val);
    let idx = stream(&dataset, &split, 420, 5);
    let (_, flags) = drive(&mut fleet, &dataset, &idx, 41);

    let stats = fleet.stats();
    assert!(stats.lost_observations > 0, "the down shard lost nothing?");
    assert_eq!(stats.recoveries, 1, "exactly one warm rejoin");
    assert!(
        stats.failover_queries > 0,
        "home-shard queries never failed over"
    );
    // Warm rejoin: the rebuilt replica serves from a replayed window, not
    // an empty one.
    assert!(
        fleet.replica(1).window_len() > 0,
        "rejoined replica came back cold"
    );
    // The audit log attributes the crash window and closes it at rejoin.
    let crash = fleet
        .degraded_audit()
        .iter()
        .find(|w| w.cause == DegradedCause::ReplicaCrash { replica: 1 })
        .expect("crash window audited");
    assert_eq!(crash.until_obs, Some(260), "closed at the rejoin tick");
    assert!(crash.lost_observations > 0);
    assert_eq!(crash.lost_observations + crash.bounded, 260 - 120);
    // Losing one shard of three must not collapse overall coverage.
    assert!(
        coverage(&flags) >= 0.80,
        "coverage {} under a single-replica crash",
        coverage(&flags)
    );
}

#[test]
fn coordinator_outage_degrades_to_gossip_and_recovers() {
    let (dataset, split, trained) = fixture();
    let plan = FaultPlan::none(12).coordinator_outage(100, 240);
    let mut fleet = FleetServer::with_faults(trained, &dataset, fleet_cfg(3, 16), plan);
    fleet.seed_calibration(&split.val);
    let idx = stream(&dataset, &split, 400, 6);
    drive(&mut fleet, &dataset, &idx, 42);

    let stats = fleet.stats();
    assert!(stats.gossip_rounds > 0, "no gossip during the outage");
    assert!(stats.merges > 1, "coordinator rounds never resumed");
    let outage = fleet
        .degraded_audit()
        .iter()
        .find(|w| w.cause == DegradedCause::CoordinatorOutage)
        .expect("outage window audited");
    let until = outage
        .until_obs
        .expect("outage audit closed after clearance");
    assert!(until >= 240, "closed before the outage cleared");
    assert!(outage.bounded > 0, "nothing judged inside the outage");
    // Gossip keeps calibrations near the union fit: coverage inside the
    // outage stays bounded away from collapse.
    assert!(
        outage.coverage() >= 0.80,
        "outage-window coverage {} under gossip",
        outage.coverage()
    );
}

#[test]
fn stale_fallback_widens_and_tags_degraded_admissions() {
    let (dataset, split, trained) = fixture();
    // No gossip: during the outage replicas can only go stale, cross the
    // staleness threshold, and fall back to widened local calibrations.
    let mut plan = FaultPlan::none(13).coordinator_outage(80, 320);
    plan.gossip_during_outage = false;
    let mut cfg = fleet_cfg(3, 16);
    cfg.serve.staleness_threshold = cfg.serve.drift_min; // 64, the floor
    cfg.serve.stale_epsilon_factor = 0.5;
    let mut fleet = FleetServer::with_faults(trained, &dataset, cfg, plan);
    fleet.seed_calibration(&split.val);
    let idx = stream(&dataset, &split, 420, 7);
    drive(&mut fleet, &dataset, &idx, 43);

    let stats = fleet.stats();
    assert_eq!(stats.gossip_rounds, 0);
    assert!(stats.fallback_refits > 0, "stale fallback never refit");
    assert!(stats.degraded_bounded > 0, "no observation judged degraded");
    // Satellite: admission decisions under stale/local-fallback
    // calibration carry their own counters, and they are strict subsets.
    let a = &stats.admission;
    assert!(
        a.degraded_admitted + a.degraded_shed > 0,
        "no admission decision was tagged degraded during a {}-obs outage",
        320 - 80
    );
    assert!(a.degraded_admitted <= a.admitted);
    assert!(a.degraded_shed <= a.shed());
    assert!(a.degraded_slo_met <= a.slo_met && a.degraded_slo_met <= a.degraded_admitted);
    assert!(a.degraded_slo_missed <= a.slo_missed && a.degraded_slo_missed <= a.degraded_admitted);
    // The widened fallback is *more* conservative: degraded-judged
    // coverage must not collapse below the nominal target.
    let degraded_cov = stats.degraded_covered as f32 / stats.degraded_bounded as f32;
    assert!(
        degraded_cov >= 0.85,
        "widened fallback covered only {degraded_cov}"
    );
    // The audit attributes degraded decisions to the outage window.
    let outage = fleet
        .degraded_audit()
        .iter()
        .find(|w| w.cause == DegradedCause::CoordinatorOutage)
        .expect("outage audited");
    assert!(outage.degraded_decisions > 0);
}

#[test]
fn lossy_merges_retry_with_backoff_and_still_converge() {
    let (dataset, split, trained) = fixture();
    let plan = FaultPlan::none(14)
        .drop_summaries(0.3)
        .delay_summaries(0.2, 2);
    let mut fleet = FleetServer::with_faults(trained.clone(), &dataset, fleet_cfg(3, 16), plan);
    fleet.seed_calibration(&split.val);
    let idx = stream(&dataset, &split, 400, 8);
    let (_, flags) = drive(&mut fleet, &dataset, &idx, 44);

    let stats = fleet.stats();
    assert!(stats.dropped_summaries > 0, "drop draws never fired");
    assert!(stats.delayed_summaries > 0, "delay draws never fired");
    assert!(
        stats.retried_summaries > 0,
        "no dropped summary was ever retried successfully"
    );
    assert!(fleet.fleet_conformal().is_some());
    assert!(
        coverage(&flags) >= 0.80,
        "coverage {} under lossy merges",
        coverage(&flags)
    );
}

#[test]
fn coordinator_skips_installs_when_no_window_advanced() {
    // Satellite fix: a merge round in which no replica window moved must
    // not refit and clone the fleet calibration into every replica.
    let (dataset, split, trained) = fixture();
    let mut fleet = FleetServer::new(trained, &dataset, fleet_cfg(3, usize::MAX));
    fleet.seed_calibration(&split.val); // runs one real merge
    let stats = fleet.stats();
    assert_eq!(stats.merges, 1);
    assert_eq!(stats.skipped_installs, 0);
    fleet.merge_now(); // nothing advanced since the seed merge
    fleet.merge_now();
    let stats = fleet.stats();
    assert_eq!(stats.merges, 1, "idle merges must not refit");
    assert_eq!(stats.skipped_installs, 2, "idle merges must be counted");
    // An observation advances a window; the next merge is real again.
    let obs = dataset.observations[split.test[0]].clone();
    fleet.observe(0.0, obs);
    fleet.merge_now();
    assert_eq!(fleet.stats().merges, 2);
}

#[test]
fn chaos_runs_are_bitwise_deterministic_for_a_fixed_seed() {
    let (dataset, split, trained) = fixture();
    let plan = || {
        FaultPlan::none(0xC4A0_5EED)
            .crash(2, 90, 200)
            .coordinator_outage(150, 280)
            .drop_summaries(0.25)
            .delay_summaries(0.15, 2)
    };
    let idx = stream(&dataset, &split, 380, 9);
    let run = || {
        let mut fleet =
            FleetServer::with_faults(trained.clone(), &dataset, fleet_cfg(3, 16), plan());
        fleet.seed_calibration(&split.val);
        let (digest, _) = drive(&mut fleet, &dataset, &idx, 45);
        (digest, fleet.stats())
    };
    let (d1, s1) = run();
    let (d2, s2) = run();
    assert_eq!(d1, d2, "decision digests diverged for the same fault seed");
    assert_eq!(s1.dropped_summaries, s2.dropped_summaries);
    assert_eq!(s1.delayed_summaries, s2.delayed_summaries);
    assert_eq!(s1.gossip_rounds, s2.gossip_rounds);
    assert_eq!(s1.covered, s2.covered);
    assert_eq!(s1.admission.admitted, s2.admission.admitted);
}

#[test]
fn trivial_plan_matches_faultless_fleet_bitwise() {
    // FaultPlan::none must be a true identity: same decisions, same
    // calibrations, same stats as a fleet constructed without faults.
    let (dataset, split, trained) = fixture();
    let idx = stream(&dataset, &split, 250, 10);
    let mut plain = FleetServer::new(trained.clone(), &dataset, fleet_cfg(3, 16));
    plain.seed_calibration(&split.val);
    let (dp, _) = drive(&mut plain, &dataset, &idx, 46);
    let mut faulted =
        FleetServer::with_faults(trained, &dataset, fleet_cfg(3, 16), FaultPlan::none(999));
    faulted.seed_calibration(&split.val);
    let (df, _) = drive(&mut faulted, &dataset, &idx, 46);
    assert_eq!(dp, df, "a trivial fault plan perturbed the decisions");
    let (sp, sf) = (plain.stats(), faulted.stats());
    assert_eq!(sp.covered, sf.covered);
    assert_eq!(sp.merges, sf.merges);
    assert_eq!(sp.lost_observations, 0);
    assert_eq!(sf.lost_observations, 0);
    assert!(faulted.degraded_audit().is_empty());
}
