//! Data collection: running benchmarks on the simulated cluster.
//!
//! Mirrors the paper's App C.3 procedure: one isolation pass over every
//! supported (workload, platform) pair, then `sets_per_platform` random sets
//! of 2, 3, and 4 simultaneously-running workloads per platform, each member
//! of a set contributing one observation with the rest as interferers.
//! Timeouts and crashes are excluded.

use crate::features::{FeatureConfig, Features};
use crate::testbed::Testbed;
use crate::workload::Workload;
use pitot_linalg::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Maximum number of *interfering* workloads per observation (4-way set =
/// 1 primary + 3 interferers).
pub const MAX_INTERFERERS: usize = 3;

/// One measured benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Primary workload index.
    pub workload: u32,
    /// Platform index.
    pub platform: u32,
    /// Interfering workload indices (0–3 of them).
    pub interferers: Vec<u32>,
    /// Measured wall-clock runtime in seconds.
    pub runtime_s: f32,
}

impl Observation {
    /// Natural log of the measured runtime.
    pub fn log_runtime(&self) -> f32 {
        self.runtime_s.ln()
    }

    /// Number of simultaneously-running workloads (1 = isolation).
    pub fn concurrency(&self) -> usize {
        1 + self.interferers.len()
    }
}

/// A collected dataset: observations plus the side-information matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// All usable observations (isolation first, then interference).
    pub observations: Vec<Observation>,
    /// Workload features `x_w` (`Nw × Fw`): log-transformed opcode counts.
    pub workload_features: Matrix,
    /// Platform features `x_p` (`Np × Fp`): one-hot runtime/microarch plus
    /// frequency and memory-hierarchy information.
    pub platform_features: Matrix,
    /// Number of workloads `Nw`.
    pub n_workloads: usize,
    /// Number of platforms `Np`.
    pub n_platforms: usize,
    /// Workload suite labels (for Fig 7 groupings).
    pub workload_suites: Vec<String>,
}

impl Dataset {
    /// Indices of observations with exactly `k` interferers.
    pub fn mode_indices(&self, k: usize) -> Vec<usize> {
        self.observations
            .iter()
            .enumerate()
            .filter(|(_, o)| o.interferers.len() == k)
            .map(|(i, _)| i)
            .collect()
    }

    /// Count of observations with no interference.
    pub fn isolation_count(&self) -> usize {
        self.observations
            .iter()
            .filter(|o| o.interferers.is_empty())
            .count()
    }

    /// Count of observations with at least one interferer.
    pub fn interference_count(&self) -> usize {
        self.observations.len() - self.isolation_count()
    }
}

impl Testbed {
    /// Runs the full collection procedure with default features.
    pub fn collect_dataset(&self) -> Dataset {
        self.collect_dataset_with(&FeatureConfig::default())
    }

    /// Runs the full collection procedure with explicit feature options.
    pub fn collect_dataset_with(&self, features: &FeatureConfig) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config().seed ^ 0x0B5E_55ED);
        let truth = self.truth();
        let workloads = self.workloads();
        let n_platforms = self.platforms().len();
        let timeout = self.config().timeout_s;
        let crash_rate = self.config().crash_rate;

        let mut observations = Vec::new();

        // Crash table: some (workload, platform) combinations simply do not
        // work (codegen bugs, missing WASI features) and are excluded from
        // both passes, exactly like the paper's omissions.
        let crashes: Vec<bool> = (0..workloads.len() * n_platforms)
            .map(|_| rng.gen_bool(crash_rate))
            .collect();
        let crashed = |w: usize, p: usize| crashes[w * n_platforms + p];

        // Pass 1: isolation (paper: 53,637 observations).
        for (widx, w) in workloads.iter().enumerate() {
            for pidx in 0..n_platforms {
                if crashed(widx, pidx) {
                    continue;
                }
                let log_rt = truth.sample_log_runtime(w, widx, &[], &[], pidx, &mut rng);
                let rt = log_rt.exp();
                if rt > timeout {
                    continue; // interpreter too slow for the window
                }
                observations.push(Observation {
                    workload: widx as u32,
                    platform: pidx as u32,
                    interferers: Vec::new(),
                    runtime_s: rt,
                });
            }
        }

        // Pass 2: interference sets (paper: 250 sets each of 2/3/4 per
        // platform; a set is dropped whole if any member crashes, and
        // timed-out members are dropped but their partners kept).
        for pidx in 0..n_platforms {
            for set_size in 2..=(1 + MAX_INTERFERERS) {
                for _ in 0..self.config().sets_per_platform {
                    let set = self.sample_set(set_size, &mut rng);
                    if set.iter().any(|&w| crashed(w, pidx)) {
                        continue;
                    }
                    for (slot, &widx) in set.iter().enumerate() {
                        let others_idx: Vec<usize> = set
                            .iter()
                            .enumerate()
                            .filter(|(s, _)| *s != slot)
                            .map(|(_, &k)| k)
                            .collect();
                        let others: Vec<&Workload> =
                            others_idx.iter().map(|&k| &workloads[k]).collect();
                        let log_rt = truth.sample_log_runtime(
                            &workloads[widx],
                            widx,
                            &others,
                            &others_idx,
                            pidx,
                            &mut rng,
                        );
                        let rt = log_rt.exp();
                        if rt > timeout {
                            continue;
                        }
                        observations.push(Observation {
                            workload: widx as u32,
                            platform: pidx as u32,
                            interferers: others_idx.iter().map(|&k| k as u32).collect(),
                            runtime_s: rt,
                        });
                    }
                }
            }
        }

        let feats = Features::build(self, features);
        Dataset {
            observations,
            workload_features: feats.workload,
            platform_features: feats.platform,
            n_workloads: workloads.len(),
            n_platforms,
            workload_suites: workloads
                .iter()
                .map(|w| w.suite.label().to_string())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedConfig;

    fn small_dataset() -> Dataset {
        Testbed::generate(&TestbedConfig::small()).collect_dataset()
    }

    #[test]
    fn has_all_interference_modes() {
        let ds = small_dataset();
        for k in 0..=MAX_INTERFERERS {
            assert!(
                !ds.mode_indices(k).is_empty(),
                "no observations with {k} interferers"
            );
        }
        let total: usize = (0..=MAX_INTERFERERS)
            .map(|k| ds.mode_indices(k).len())
            .sum();
        assert_eq!(total, ds.observations.len());
    }

    #[test]
    fn runtimes_within_window_and_positive() {
        let ds = small_dataset();
        for o in &ds.observations {
            assert!(o.runtime_s > 0.0);
            assert!(o.runtime_s <= 30.0);
            assert!(o.log_runtime().is_finite());
        }
    }

    #[test]
    fn every_workload_and_platform_observed() {
        let ds = small_dataset();
        let mut w_seen = vec![false; ds.n_workloads];
        let mut p_seen = vec![false; ds.n_platforms];
        for o in &ds.observations {
            w_seen[o.workload as usize] = true;
            p_seen[o.platform as usize] = true;
        }
        assert!(
            w_seen.iter().all(|&b| b),
            "paper assumption: every workload observed"
        );
        assert!(
            p_seen.iter().all(|&b| b),
            "paper assumption: every platform observed"
        );
    }

    #[test]
    fn interferers_are_distinct_and_exclude_primary() {
        let ds = small_dataset();
        for o in &ds.observations {
            let mut ks = o.interferers.clone();
            ks.sort_unstable();
            ks.dedup();
            assert_eq!(ks.len(), o.interferers.len());
            assert!(!o.interferers.contains(&o.workload));
            assert!(o.interferers.len() <= MAX_INTERFERERS);
        }
    }

    #[test]
    fn collection_is_deterministic() {
        let a = small_dataset();
        let b = small_dataset();
        assert_eq!(a.observations.len(), b.observations.len());
        assert_eq!(a.observations[0], b.observations[0]);
    }

    #[test]
    fn paper_scale_counts_are_in_range() {
        // Generating the paper-scale dataset is slower; keep one coarse check.
        let tb = Testbed::generate(&TestbedConfig {
            sets_per_platform: 25,
            ..TestbedConfig::paper()
        });
        let ds = tb.collect_dataset();
        // Isolation pass: 249 workloads × ~220 platforms ≈ 55k minus
        // crashes/timeouts.
        let iso = ds.isolation_count();
        assert!((30_000..=60_000).contains(&iso), "isolation count {iso}");
        assert!(ds.interference_count() > iso / 2);
    }
}
