//! Replicated train/validation/test splits (paper Sec 5.1).
//!
//! Each replicate draws an independent train/test partition at a given train
//! fraction; within the train pool, 80% is used for optimization and 20% for
//! validation *and* conformal calibration. Splits are stratified by
//! interference mode so every mode has train/val/test data at all fractions.

use crate::observe::{Dataset, MAX_INTERFERERS};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Index-based split of a [`Dataset`]'s observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Split {
    /// Observation indices used for gradient training.
    pub train: Vec<usize>,
    /// Observation indices used for validation and conformal calibration.
    pub val: Vec<usize>,
    /// Held-out test observation indices.
    pub test: Vec<usize>,
    /// The train fraction this split was built at.
    pub train_fraction: f32,
    /// Replicate seed.
    pub seed: u64,
}

impl Split {
    /// Builds a stratified split: `train_fraction` of each interference mode
    /// goes to the train pool (80% train / 20% val), the rest to test.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn stratified(dataset: &Dataset, train_fraction: f32, seed: u64) -> Self {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction {train_fraction} outside (0,1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(17));
        let mut train = Vec::new();
        let mut val = Vec::new();
        let mut test = Vec::new();
        for k in 0..=MAX_INTERFERERS {
            let mut idx = dataset.mode_indices(k);
            idx.shuffle(&mut rng);
            let n_pool = ((idx.len() as f32) * train_fraction).round() as usize;
            let pool = &idx[..n_pool];
            let n_train = (pool.len() as f32 * 0.8).round() as usize;
            train.extend_from_slice(&pool[..n_train]);
            val.extend_from_slice(&pool[n_train..]);
            test.extend_from_slice(&idx[n_pool..]);
        }
        Split {
            train,
            val,
            test,
            train_fraction,
            seed,
        }
    }

    /// Observation indices in `self.train` with exactly `k` interferers.
    pub fn train_mode(&self, dataset: &Dataset, k: usize) -> Vec<usize> {
        self.train
            .iter()
            .copied()
            .filter(|&i| dataset.observations[i].interferers.len() == k)
            .collect()
    }

    /// Total observation count covered by the split.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The train fractions used across the paper's evaluation (10%–90%).
pub fn paper_fractions() -> Vec<f32> {
    (1..=9).map(|i| i as f32 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Testbed, TestbedConfig};
    use std::collections::HashSet;

    fn dataset() -> Dataset {
        Testbed::generate(&TestbedConfig::small()).collect_dataset()
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let ds = dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let all: HashSet<usize> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        assert_eq!(all.len(), split.len(), "overlapping partitions");
        assert_eq!(split.len(), ds.observations.len());
    }

    #[test]
    fn fractions_are_respected() {
        let ds = dataset();
        let split = Split::stratified(&ds, 0.3, 1);
        let pool = split.train.len() + split.val.len();
        let frac = pool as f32 / ds.observations.len() as f32;
        assert!((frac - 0.3).abs() < 0.02, "pool fraction {frac}");
        let val_frac = split.val.len() as f32 / pool as f32;
        assert!((val_frac - 0.2).abs() < 0.02, "val fraction {val_frac}");
    }

    #[test]
    fn stratification_covers_every_mode() {
        let ds = dataset();
        let split = Split::stratified(&ds, 0.1, 2);
        for k in 0..=MAX_INTERFERERS {
            assert!(
                !split.train_mode(&ds, k).is_empty(),
                "mode {k} missing from train"
            );
            let test_k = split
                .test
                .iter()
                .filter(|&&i| ds.observations[i].interferers.len() == k)
                .count();
            assert!(test_k > 0, "mode {k} missing from test");
        }
    }

    #[test]
    fn replicates_differ_and_seeds_reproduce() {
        let ds = dataset();
        let a = Split::stratified(&ds, 0.5, 0);
        let b = Split::stratified(&ds, 0.5, 0);
        let c = Split::stratified(&ds, 0.5, 1);
        assert_eq!(a.train, b.train);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn paper_fractions_span_10_to_90() {
        let f = paper_fractions();
        assert_eq!(f.len(), 9);
        assert_eq!(f[0], 0.1);
        assert_eq!(f[8], 0.9);
    }
}
