//! Synthetic heterogeneous WebAssembly edge-cluster simulator.
//!
//! The Pitot paper (MLSys 2025) evaluates on a physical cluster of 24 devices
//! running 249 WebAssembly benchmarks under 10 runtime configurations, with
//! up to three background workloads interfering (410,970 observations in
//! total). That testbed cannot ship with a reproduction, so this crate builds
//! the closest synthetic equivalent:
//!
//! - [`Device`]s mirror the paper's Table 2 (vendor, microarchitecture,
//!   frequency, cache hierarchy) and carry latent performance traits;
//! - [`RuntimeConfig`]s mirror Table 3 (interpreters, JIT and AOT compilers);
//! - [`Workload`]s are grouped into the paper's six benchmark suites, each
//!   with a synthetic opcode-count profile (the paper's workload features);
//! - a [`GroundTruth`] model composes workload difficulty, platform speed,
//!   low-rank workload×platform affinity, a contention-based interference
//!   model with threshold effects, and heteroscedastic lognormal noise;
//! - [`Dataset`] collects isolation and 2/3/4-way interference observations
//!   with timeout/crash exclusions, exactly like the paper's App C.3
//!   collection procedure;
//! - [`split::Split`] produces the replicated train/validation/test splits
//!   used throughout the evaluation (Sec 5.1).
//!
//! The simulator is seeded and fully deterministic: the same
//! [`TestbedConfig`] always yields the same cluster and dataset.
//!
//! # Examples
//!
//! ```
//! use pitot_testbed::{Testbed, TestbedConfig};
//!
//! let testbed = Testbed::generate(&TestbedConfig::small());
//! let dataset = testbed.collect_dataset();
//! assert!(dataset.observations.len() > 1000);
//! assert_eq!(dataset.workload_features.rows(), testbed.workloads().len());
//! ```

// Every public item in this crate is part of the documented workspace
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod config;
mod device;
mod features;
mod io;
mod observe;
mod runtime;
pub mod shift;
pub mod split;
mod stats;
mod testbed;
mod truth;
mod workload;

pub use config::TestbedConfig;
pub use device::{Device, DeviceClass, Microarch};
pub use features::{FeatureConfig, Features};
pub use observe::{Dataset, Observation, MAX_INTERFERERS};
pub use runtime::{RuntimeConfig, RuntimeKind};
pub use shift::{arity_shift_split, device_arrival, DeviceArrival};
pub use stats::DatasetStats;
pub use testbed::{Platform, Testbed};
pub use truth::GroundTruth;
pub use workload::{Suite, Workload, OPCODE_GROUPS};
