//! Testbed generation configuration.

use serde::{Deserialize, Serialize};

/// Controls cluster synthesis and data collection volume.
///
/// [`TestbedConfig::paper`] reproduces the paper's dataset scale
/// (~410k observations); [`TestbedConfig::small`] is a fast configuration for
/// tests and doc examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Master seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Workloads per suite scaling factor (1.0 = paper counts, 249 total).
    pub workload_scale: f32,
    /// Random interference sets of each size (2, 3, 4) per platform
    /// (paper App C.3: 250 of each).
    pub sets_per_platform: usize,
    /// Benchmark window in seconds; runs exceeding it are excluded as
    /// timeouts (paper: 30 s window).
    pub timeout_s: f32,
    /// Probability that a (workload, platform) combination fails for
    /// non-timeout reasons (crashes, codegen bugs; paper App C.3).
    pub crash_rate: f64,
    /// Global noise multiplier (1.0 = calibrated defaults).
    pub noise_scale: f32,
}

impl TestbedConfig {
    /// Paper-scale dataset: 249 workloads, 24 devices × 10 runtimes,
    /// 250 interference sets of each size per platform.
    pub fn paper() -> Self {
        Self {
            seed: 0xC0FFEE,
            workload_scale: 1.0,
            sets_per_platform: 250,
            timeout_s: 30.0,
            crash_rate: 0.04,
            noise_scale: 1.0,
        }
    }

    /// Small configuration for unit tests and doc examples: ~60 workloads
    /// and 12 interference sets of each size per platform.
    pub fn small() -> Self {
        Self {
            seed: 7,
            workload_scale: 0.25,
            sets_per_platform: 12,
            timeout_s: 30.0,
            crash_rate: 0.04,
            noise_scale: 1.0,
        }
    }

    /// Medium configuration used by the default (reduced) experiment harness.
    pub fn medium() -> Self {
        Self {
            seed: 0xC0FFEE,
            workload_scale: 1.0,
            sets_per_platform: 60,
            timeout_s: 30.0,
            crash_rate: 0.04,
            noise_scale: 1.0,
        }
    }

    /// Returns a copy with a different seed (used for replicates).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let p = TestbedConfig::paper();
        assert_eq!(p.sets_per_platform, 250);
        assert_eq!(p.timeout_s, 30.0);
        let s = TestbedConfig::small();
        assert!(s.workload_scale < 1.0);
        assert_eq!(
            TestbedConfig::default().sets_per_platform,
            p.sets_per_platform
        );
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let a = TestbedConfig::small();
        let b = a.clone().with_seed(99);
        assert_eq!(b.seed, 99);
        assert_eq!(a.sets_per_platform, b.sets_per_platform);
    }
}
