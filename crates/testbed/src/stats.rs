//! Dataset summary statistics (the Sec 4 / App C.3 bookkeeping).
//!
//! The paper reports its dataset as headline counts: 53,637 isolation and
//! 357,333 interference observations, Nw = 249, Np = 231, runtimes spanning
//! several orders of magnitude. [`DatasetStats`] computes the same summary
//! for any collected dataset, so EXPERIMENTS.md can cite measured numbers
//! and tests can pin the simulator to the paper's shape.

use crate::observe::{Dataset, MAX_INTERFERERS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Headline statistics of a collected dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Observation count per interference arity (index = #interferers).
    pub per_mode: Vec<usize>,
    /// Unique workloads / platforms actually observed.
    pub observed_workloads: usize,
    /// Unique platforms actually observed.
    pub observed_platforms: usize,
    /// Fraction of (workload, platform) cells with ≥1 isolation observation.
    pub isolation_fill: f32,
    /// Minimum observed runtime (seconds).
    pub min_runtime_s: f32,
    /// Maximum observed runtime (seconds).
    pub max_runtime_s: f32,
    /// Geometric mean runtime (seconds).
    pub geomean_runtime_s: f32,
    /// Orders of magnitude spanned (log10 max − log10 min).
    pub runtime_decades: f32,
    /// Workload count per suite label.
    pub per_suite: BTreeMap<String, usize>,
}

impl DatasetStats {
    /// Computes statistics over every observation.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn compute(dataset: &Dataset) -> Self {
        assert!(!dataset.observations.is_empty(), "empty dataset");
        let mut per_mode = vec![0usize; MAX_INTERFERERS + 1];
        let mut w_seen = vec![false; dataset.n_workloads];
        let mut p_seen = vec![false; dataset.n_platforms];
        let mut cell_seen = vec![false; dataset.n_workloads * dataset.n_platforms];
        let mut min_rt = f32::INFINITY;
        let mut max_rt = 0.0f32;
        let mut log_sum = 0.0f64;

        for o in &dataset.observations {
            per_mode[o.interferers.len()] += 1;
            w_seen[o.workload as usize] = true;
            p_seen[o.platform as usize] = true;
            if o.interferers.is_empty() {
                cell_seen[o.workload as usize * dataset.n_platforms + o.platform as usize] = true;
            }
            min_rt = min_rt.min(o.runtime_s);
            max_rt = max_rt.max(o.runtime_s);
            log_sum += o.log_runtime() as f64;
        }

        let mut per_suite = BTreeMap::new();
        for s in &dataset.workload_suites {
            *per_suite.entry(s.clone()).or_insert(0) += 1;
        }

        Self {
            per_mode,
            observed_workloads: w_seen.iter().filter(|&&b| b).count(),
            observed_platforms: p_seen.iter().filter(|&&b| b).count(),
            isolation_fill: cell_seen.iter().filter(|&&b| b).count() as f32
                / cell_seen.len() as f32,
            min_runtime_s: min_rt,
            max_runtime_s: max_rt,
            geomean_runtime_s: (log_sum / dataset.observations.len() as f64).exp() as f32,
            runtime_decades: (max_rt / min_rt).log10(),
            per_suite,
        }
    }

    /// Total observation count.
    pub fn total(&self) -> usize {
        self.per_mode.iter().sum()
    }

    /// Observations with at least one interferer.
    pub fn interference_total(&self) -> usize {
        self.per_mode.iter().skip(1).sum()
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} observations ({} isolation, {} interference: {:?})",
            self.total(),
            self.per_mode[0],
            self.interference_total(),
            &self.per_mode[1..],
        )?;
        writeln!(
            f,
            "{} workloads x {} platforms observed, isolation fill {:.1}%",
            self.observed_workloads,
            self.observed_platforms,
            100.0 * self.isolation_fill
        )?;
        writeln!(
            f,
            "runtimes {:.2e}s - {:.2e}s ({:.1} decades), geomean {:.3}s",
            self.min_runtime_s, self.max_runtime_s, self.runtime_decades, self.geomean_runtime_s
        )?;
        write!(f, "suites: ")?;
        let mut first = true;
        for (suite, n) in &self.per_suite {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{suite}={n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Testbed, TestbedConfig};

    fn stats() -> DatasetStats {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        DatasetStats::compute(&ds)
    }

    #[test]
    fn totals_are_consistent() {
        let s = stats();
        assert_eq!(s.total(), s.per_mode[0] + s.interference_total());
        assert!(
            s.per_mode.iter().all(|&n| n > 0),
            "all modes populated: {:?}",
            s.per_mode
        );
    }

    #[test]
    fn paper_shape_properties_hold() {
        let s = stats();
        // Sec 3.1 assumptions: every workload and platform observed.
        assert_eq!(s.observed_workloads, 63); // small config scales 249 down
        assert!(s.observed_platforms >= 200);
        // Several orders of magnitude of runtime (Sec 3.2).
        assert!(
            s.runtime_decades > 3.0,
            "only {:.1} decades",
            s.runtime_decades
        );
        // Crashes/timeouts leave holes but most cells observed (App C.3).
        assert!(s.isolation_fill > 0.7 && s.isolation_fill < 1.0);
    }

    #[test]
    fn suite_counts_sum_to_workloads() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let s = DatasetStats::compute(&ds);
        let total: usize = s.per_suite.values().sum();
        assert_eq!(total, ds.n_workloads);
        assert_eq!(s.per_suite.len(), 6, "six benchmark suites");
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = stats();
        let text = s.to_string();
        assert!(text.contains("observations"));
        assert!(text.contains("decades"));
        assert!(text.contains("suites:"));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let ds = Dataset {
            observations: vec![],
            workload_features: pitot_linalg::Matrix::zeros(1, 1),
            platform_features: pitot_linalg::Matrix::zeros(1, 1),
            n_workloads: 1,
            n_platforms: 1,
            workload_suites: vec!["x".into()],
        };
        DatasetStats::compute(&ds);
    }
}
