//! Cluster assembly: devices × runtimes → platforms, plus the support matrix.

use crate::device::{self, Device, DeviceClass, Microarch};
use crate::runtime::{self, RuntimeConfig, RuntimeKind};
use crate::truth::GroundTruth;
use crate::workload::{self, Suite, Workload};
use crate::TestbedConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A (device, runtime) pair — the unit the paper calls a *platform*
/// (App C.1: "Each platform in our dataset consists of a (device, runtime)
/// tuple").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// Index into [`Testbed::devices`].
    pub device: usize,
    /// Index into [`Testbed::runtimes`].
    pub runtime: usize,
}

/// The simulated heterogeneous cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Testbed {
    config: TestbedConfig,
    devices: Vec<Device>,
    runtimes: Vec<RuntimeConfig>,
    platforms: Vec<Platform>,
    workloads: Vec<Workload>,
    truth: GroundTruth,
}

impl Testbed {
    /// Generates the full cluster deterministically from `config`.
    pub fn generate(config: &TestbedConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let devices = device::catalog();
        let runtimes = runtime::catalog();

        // Workloads per suite, scaled.
        let mut workloads = Vec::new();
        for suite in Suite::ALL {
            let count =
                ((suite.paper_count() as f32 * config.workload_scale).round() as usize).max(2);
            workloads.extend(workload::generate_suite(suite, count, &mut rng));
        }

        // Support matrix (App C.1):
        // - the Cortex-M7 microcontroller only runs AOT WAMR;
        // - the RISC-V board only runs WAMR (both configs) and Wasm3;
        // - AOT WAMR is excluded on Cortex-A72 (codegen bug).
        let mut platforms = Vec::new();
        for (d, dev) in devices.iter().enumerate() {
            for (r, rt) in runtimes.iter().enumerate() {
                let supported = match dev.class {
                    DeviceClass::ArmMClass => rt.family == "WAMR" && rt.kind == RuntimeKind::Aot,
                    DeviceClass::RiscV => rt.family == "WAMR" || rt.family == "Wasm3",
                    _ => {
                        !(dev.microarch == Microarch::CortexA72
                            && rt.family == "WAMR"
                            && rt.kind == RuntimeKind::Aot)
                    }
                };
                if supported {
                    platforms.push(Platform {
                        device: d,
                        runtime: r,
                    });
                }
            }
        }

        let truth = GroundTruth::generate(
            &devices, &runtimes, &platforms, &workloads, config, &mut rng,
        );

        Self {
            config: config.clone(),
            devices,
            runtimes,
            platforms,
            workloads,
            truth,
        }
    }

    /// Generation configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// Device catalog (Table 2).
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Runtime catalog (Table 3).
    pub fn runtimes(&self) -> &[RuntimeConfig] {
        &self.runtimes
    }

    /// Supported (device, runtime) platforms.
    pub fn platforms(&self) -> &[Platform] {
        &self.platforms
    }

    /// Workloads across all suites.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Ground-truth model (tests and oracles only — prediction code must not
    /// touch this).
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// The device backing platform `p`.
    pub fn platform_device(&self, p: usize) -> &Device {
        &self.devices[self.platforms[p].device]
    }

    /// The runtime backing platform `p`.
    pub fn platform_runtime(&self, p: usize) -> &RuntimeConfig {
        &self.runtimes[self.platforms[p].runtime]
    }

    /// Display name for platform `p`, e.g. `RPi 4 Rev 1.2 / WAMR (LLVM AOT)`.
    pub fn platform_name(&self, p: usize) -> String {
        format!(
            "{} / {}",
            self.platform_device(p).name,
            self.platform_runtime(p).name()
        )
    }

    /// Samples a random interference set of `size` distinct workloads.
    pub(crate) fn sample_set<R: Rng + ?Sized>(&self, size: usize, rng: &mut R) -> Vec<usize> {
        debug_assert!(size <= self.workloads.len());
        let mut set = Vec::with_capacity(size);
        while set.len() < size {
            let w = rng.gen_range(0..self.workloads.len());
            if !set.contains(&w) {
                set.push(w);
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_platform_count() {
        let tb = Testbed::generate(&TestbedConfig::paper());
        // 24 devices × 10 runtimes = 240 minus support holes; the paper
        // reports Np = 231, we land within a few of that.
        let n = tb.platforms().len();
        assert!((200..=240).contains(&n), "platform count {n}");
        assert_eq!(tb.workloads().len(), 249);
    }

    #[test]
    fn support_matrix_rules() {
        let tb = Testbed::generate(&TestbedConfig::small());
        for (i, p) in tb.platforms().iter().enumerate() {
            let dev = &tb.devices()[p.device];
            let rt = &tb.runtimes()[p.runtime];
            match dev.class {
                DeviceClass::ArmMClass => {
                    assert_eq!(rt.family, "WAMR");
                    assert_eq!(rt.kind, RuntimeKind::Aot, "platform {i}");
                }
                DeviceClass::RiscV => {
                    assert!(rt.family == "WAMR" || rt.family == "Wasm3");
                }
                _ => {
                    assert!(
                        !(dev.microarch == Microarch::CortexA72
                            && rt.family == "WAMR"
                            && rt.kind == RuntimeKind::Aot),
                        "A72 must not run WAMR AOT"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Testbed::generate(&TestbedConfig::small());
        let b = Testbed::generate(&TestbedConfig::small());
        assert_eq!(a.workloads().len(), b.workloads().len());
        assert_eq!(
            a.workloads()[0].opcode_counts,
            b.workloads()[0].opcode_counts
        );
        let c = Testbed::generate(&TestbedConfig::small().with_seed(1234));
        assert_ne!(
            a.workloads()[0].opcode_counts,
            c.workloads()[0].opcode_counts
        );
    }

    #[test]
    fn sample_set_is_distinct() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..50 {
            let s = tb.sample_set(4, &mut rng);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4);
        }
    }
}
