//! Side-information feature construction (paper App C.2).
//!
//! Workload features are the log-transformed executed-opcode counts
//! `f(n) = ln(n + 1)`. Platform features are a one-hot encoding of the
//! WebAssembly runtime configuration and CPU microarchitecture plus nominal
//! frequency and memory-hierarchy attributes (log cache sizes with presence
//! indicators, as the paper describes for missing cache levels).

use crate::device::Microarch;
use crate::testbed::Testbed;
use pitot_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Feature construction options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Standardize each feature column to zero mean / unit variance over the
    /// entity set (constant columns are left centered only). The paper feeds
    /// raw log counts; standardizing is numerically friendlier for the small
    /// CPU-trained MLPs and does not change what information is available.
    pub standardize: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self { standardize: true }
    }
}

/// Built feature matrices.
#[derive(Debug, Clone)]
pub struct Features {
    /// `Nw × Fw` workload features.
    pub workload: Matrix,
    /// `Np × Fp` platform features.
    pub platform: Matrix,
}

impl Features {
    /// Builds workload and platform features for `testbed`.
    pub fn build(testbed: &Testbed, config: &FeatureConfig) -> Self {
        let mut workload = workload_features(testbed);
        let mut platform = platform_features(testbed);
        if config.standardize {
            standardize_columns(&mut workload);
            standardize_columns(&mut platform);
        }
        Features { workload, platform }
    }
}

fn workload_features(testbed: &Testbed) -> Matrix {
    let workloads = testbed.workloads();
    let n_ops = crate::workload::opcode_count();
    let mut m = Matrix::zeros(workloads.len(), n_ops);
    for (i, w) in workloads.iter().enumerate() {
        for (j, &c) in w.opcode_counts.iter().enumerate() {
            m[(i, j)] = ((c + 1.0).ln()) as f32; // f(n) = log(n + 1), App C.2
        }
    }
    m
}

fn platform_features(testbed: &Testbed) -> Matrix {
    let n_arch = Microarch::ALL.len();
    let n_rt = testbed.runtimes().len();
    // one-hot arch + one-hot runtime + [log freq, log l1d, log l1i, log l2,
    // line64 indicator, log assoc, log l3, l3 present, log mem]
    let extra = 9;
    let cols = n_arch + n_rt + extra;
    let mut m = Matrix::zeros(testbed.platforms().len(), cols);
    for (p, plat) in testbed.platforms().iter().enumerate() {
        let dev = &testbed.devices()[plat.device];
        let row = m.row_mut(p);
        row[dev.microarch.index()] = 1.0;
        row[n_arch + plat.runtime] = 1.0;
        let base = n_arch + n_rt;
        row[base] = dev.freq_ghz.ln();
        row[base + 1] = (dev.l1d_kb.max(1) as f32).ln();
        row[base + 2] = (dev.l1i_kb.max(1) as f32).ln();
        row[base + 3] = (dev.l2_kb.max(1) as f32).ln();
        row[base + 4] = if dev.l2_line == 64 { 1.0 } else { 0.0 };
        row[base + 5] = (dev.l2_assoc.max(1) as f32).ln();
        row[base + 6] = dev.l3_kb.map_or(0.0, |kb| (kb as f32).ln());
        row[base + 7] = if dev.l3_kb.is_some() { 1.0 } else { 0.0 };
        row[base + 8] = (dev.mem_mb as f32).ln();
    }
    m
}

/// Standardizes columns in place; zero-variance columns are centered only.
fn standardize_columns(m: &mut Matrix) {
    let (rows, cols) = m.shape();
    if rows == 0 {
        return;
    }
    for c in 0..cols {
        let mut mean = 0.0f64;
        for r in 0..rows {
            mean += m[(r, c)] as f64;
        }
        mean /= rows as f64;
        let mut var = 0.0f64;
        for r in 0..rows {
            var += (m[(r, c)] as f64 - mean).powi(2);
        }
        var /= rows as f64;
        let std = var.sqrt();
        let denom = if std > 1e-8 { std } else { 1.0 };
        for r in 0..rows {
            m[(r, c)] = ((m[(r, c)] as f64 - mean) / denom) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedConfig;

    #[test]
    fn shapes_match_catalog() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let f = Features::build(&tb, &FeatureConfig::default());
        assert_eq!(f.workload.rows(), tb.workloads().len());
        assert_eq!(f.workload.cols(), crate::workload::opcode_count());
        assert_eq!(f.platform.rows(), tb.platforms().len());
        assert_eq!(
            f.platform.cols(),
            Microarch::ALL.len() + tb.runtimes().len() + 9
        );
    }

    #[test]
    fn standardized_columns_have_zero_mean() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let f = Features::build(&tb, &FeatureConfig { standardize: true });
        for c in 0..f.workload.cols() {
            let col = f.workload.col(c);
            let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-3, "column {c} mean {mean}");
        }
    }

    #[test]
    fn raw_features_preserve_onehot() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let f = Features::build(&tb, &FeatureConfig { standardize: false });
        for p in 0..f.platform.rows() {
            let arch_sum: f32 = f.platform.row(p)[..Microarch::ALL.len()].iter().sum();
            assert_eq!(arch_sum, 1.0, "exactly one microarch per platform");
        }
    }

    #[test]
    fn features_are_finite() {
        let tb = Testbed::generate(&TestbedConfig::small());
        let f = Features::build(&tb, &FeatureConfig::default());
        assert!(f.workload.as_slice().iter().all(|v| v.is_finite()));
        assert!(f.platform.as_slice().iter().all(|v| v.is_finite()));
    }
}
