//! Distribution-shift scenarios: arity shift and new-device arrival.
//!
//! Two claims in the paper are fundamentally about shift, and both need
//! purpose-built splits to test:
//!
//! 1. **Calibration-pool robustness** (Sec 3.5): "conditioning on the number
//!    of simultaneously-running workloads as I allows Pitot to maintain
//!    conditional exchangeability even under distribution shift of I."
//!    [`arity_shift_split`] builds splits whose *test* arity mix differs
//!    from the calibration mix, so pooled and global calibration can be
//!    compared under exactly that shift.
//! 2. **Online learning** (Conclusion): adapting a deployed model when a
//!    new device joins the cluster. [`device_arrival`] stages that event:
//!    pre-train without the device, adapt on a first trickle of its
//!    observations, evaluate on the rest.

use crate::observe::{Dataset, MAX_INTERFERERS};
use crate::split::Split;
use crate::testbed::Testbed;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a split whose test set is *re-weighted by interference arity*.
///
/// The train/validation pool is drawn exactly like [`Split::stratified`];
/// the held-out remainder is then subsampled so the test set's arity
/// proportions match `test_weights` (index = number of interferers, values
/// need not be normalized). A weight of zero removes that arity from the
/// test set entirely.
///
/// # Panics
///
/// Panics if `train_fraction ∉ (0,1)`, `test_weights` has the wrong length,
/// sums to zero, or a positive-weight arity has no held-out data.
pub fn arity_shift_split(
    dataset: &Dataset,
    train_fraction: f32,
    test_weights: &[f32; MAX_INTERFERERS + 1],
    seed: u64,
) -> Split {
    let base = Split::stratified(dataset, train_fraction, seed);
    let total_w: f32 = test_weights.iter().sum();
    assert!(total_w > 0.0, "test weights must not all be zero");

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5417_F7ED);
    let mut by_mode: Vec<Vec<usize>> = vec![Vec::new(); MAX_INTERFERERS + 1];
    for &i in &base.test {
        by_mode[dataset.observations[i].interferers.len()].push(i);
    }

    // The largest test set with the requested mix: find the binding arity.
    let mut scale = f32::INFINITY;
    for (k, &w) in test_weights.iter().enumerate() {
        if w > 0.0 {
            assert!(
                !by_mode[k].is_empty(),
                "arity {k} has positive weight but no held-out observations"
            );
            scale = scale.min(by_mode[k].len() as f32 / w);
        }
    }

    let mut test = Vec::new();
    for (k, pool) in by_mode.iter_mut().enumerate() {
        let take = (test_weights[k] * scale).floor() as usize;
        if take == 0 {
            continue;
        }
        pool.shuffle(&mut rng);
        test.extend_from_slice(&pool[..take.min(pool.len())]);
    }

    Split { test, ..base }
}

/// The staged splits for a new-device-arrival scenario.
#[derive(Debug, Clone)]
pub struct DeviceArrival {
    /// Split over the *old* cluster only (new device fully excluded).
    pub pretrain: Split,
    /// Pretrain plus the first `adapt_fraction` of the new device's
    /// observations (for fine-tuning or retraining).
    pub adapt: Split,
    /// Held-out observations on the new device (evaluation target).
    pub new_device_test: Vec<usize>,
    /// Platform indices belonging to the new device.
    pub new_platforms: Vec<usize>,
}

/// Stages the arrival of device `device` (index into
/// [`Testbed::devices`]).
///
/// # Panics
///
/// Panics if the device index is out of range, backs no platforms, has too
/// few observations to split, or if fractions are outside `(0, 1)`.
pub fn device_arrival(
    dataset: &Dataset,
    testbed: &Testbed,
    device: usize,
    train_fraction: f32,
    adapt_fraction: f32,
    seed: u64,
) -> DeviceArrival {
    assert!(
        device < testbed.devices().len(),
        "device index out of range"
    );
    assert!(
        adapt_fraction > 0.0 && adapt_fraction < 1.0,
        "adapt fraction {adapt_fraction} outside (0,1)"
    );
    let new_platforms: Vec<usize> = testbed
        .platforms()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.device == device)
        .map(|(i, _)| i)
        .collect();
    assert!(
        !new_platforms.is_empty(),
        "device {device} backs no platforms"
    );
    let is_new =
        |obs_idx: usize| new_platforms.contains(&(dataset.observations[obs_idx].platform as usize));

    let base = Split::stratified(dataset, train_fraction, seed);
    let strip = |v: &[usize]| -> Vec<usize> { v.iter().copied().filter(|&i| !is_new(i)).collect() };
    let pretrain = Split {
        train: strip(&base.train),
        val: strip(&base.val),
        test: strip(&base.test),
        ..base.clone()
    };

    // All new-device observations, shuffled, split adapt/test.
    let mut new_obs: Vec<usize> = (0..dataset.observations.len())
        .filter(|&i| is_new(i))
        .collect();
    assert!(
        new_obs.len() >= 10,
        "device {device} has too few observations"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE71_CEA0);
    new_obs.shuffle(&mut rng);
    let n_adapt = ((new_obs.len() as f32) * adapt_fraction).round().max(1.0) as usize;
    let (adapt_obs, test_obs) = new_obs.split_at(n_adapt.min(new_obs.len() - 1));

    // Fine-tuning needs validation data on the new device too: 80/20 it.
    let n_adapt_train = (adapt_obs.len() as f32 * 0.8).round().max(1.0) as usize;
    let mut adapt = pretrain.clone();
    adapt
        .train
        .extend_from_slice(&adapt_obs[..n_adapt_train.min(adapt_obs.len())]);
    adapt
        .val
        .extend_from_slice(&adapt_obs[n_adapt_train.min(adapt_obs.len())..]);

    DeviceArrival {
        pretrain,
        adapt,
        new_device_test: test_obs.to_vec(),
        new_platforms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestbedConfig;
    use std::collections::HashSet;

    fn setup() -> (Testbed, Dataset) {
        let tb = Testbed::generate(&TestbedConfig::small());
        let ds = tb.collect_dataset();
        (tb, ds)
    }

    #[test]
    fn arity_shift_hits_requested_mix() {
        let (_, ds) = setup();
        let split = arity_shift_split(&ds, 0.5, &[0.1, 0.3, 0.3, 0.3], 0);
        let count = |k: usize| {
            split
                .test
                .iter()
                .filter(|&&i| ds.observations[i].interferers.len() == k)
                .count() as f32
        };
        let n: f32 = (0..=3).map(count).sum();
        // Isolation should be ~10% of the shifted test set.
        let iso_frac = count(0) / n;
        assert!(
            (iso_frac - 0.1).abs() < 0.03,
            "isolation fraction {iso_frac}"
        );
        // Interference modes ~30% each.
        for k in 1..=3 {
            let f = count(k) / n;
            assert!((f - 0.3).abs() < 0.05, "mode {k} fraction {f}");
        }
    }

    #[test]
    fn arity_shift_keeps_training_pool_intact() {
        let (_, ds) = setup();
        let base = Split::stratified(&ds, 0.5, 3);
        let shifted = arity_shift_split(&ds, 0.5, &[1.0, 0.0, 0.0, 0.0], 3);
        assert_eq!(base.train, shifted.train);
        assert_eq!(base.val, shifted.val);
        // Zero-weight arities vanish from test.
        assert!(shifted
            .test
            .iter()
            .all(|&i| ds.observations[i].interferers.is_empty()));
    }

    #[test]
    fn arity_shift_test_is_subset_of_heldout() {
        let (_, ds) = setup();
        let base = Split::stratified(&ds, 0.4, 7);
        let shifted = arity_shift_split(&ds, 0.4, &[0.2, 0.2, 0.2, 0.4], 7);
        let heldout: HashSet<usize> = base.test.iter().copied().collect();
        assert!(shifted.test.iter().all(|i| heldout.contains(i)));
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn arity_shift_rejects_zero_weights() {
        let (_, ds) = setup();
        arity_shift_split(&ds, 0.5, &[0.0; 4], 0);
    }

    #[test]
    fn device_arrival_excludes_device_from_pretrain() {
        let (tb, ds) = setup();
        let arrival = device_arrival(&ds, &tb, 0, 0.5, 0.3, 0);
        let new_set: HashSet<usize> = arrival.new_platforms.iter().copied().collect();
        for idx_set in [
            &arrival.pretrain.train,
            &arrival.pretrain.val,
            &arrival.pretrain.test,
        ] {
            for &i in idx_set.iter() {
                assert!(
                    !new_set.contains(&(ds.observations[i].platform as usize)),
                    "pretrain split leaked a new-device observation"
                );
            }
        }
    }

    #[test]
    fn device_arrival_partitions_new_device_data() {
        let (tb, ds) = setup();
        let arrival = device_arrival(&ds, &tb, 2, 0.5, 0.25, 1);
        let new_set: HashSet<usize> = arrival.new_platforms.iter().copied().collect();
        let adapt_new: Vec<usize> = arrival
            .adapt
            .train
            .iter()
            .chain(&arrival.adapt.val)
            .copied()
            .filter(|&i| new_set.contains(&(ds.observations[i].platform as usize)))
            .collect();
        // Adapt and test partitions are disjoint and together cover all
        // new-device observations.
        let adapt_ids: HashSet<usize> = adapt_new.iter().copied().collect();
        for &t in &arrival.new_device_test {
            assert!(!adapt_ids.contains(&t), "adapt/test overlap at {t}");
        }
        let total_new = (0..ds.observations.len())
            .filter(|&i| new_set.contains(&(ds.observations[i].platform as usize)))
            .count();
        assert_eq!(adapt_new.len() + arrival.new_device_test.len(), total_new);
        // Roughly the requested adapt fraction.
        let frac = adapt_new.len() as f32 / total_new as f32;
        assert!((frac - 0.25).abs() < 0.05, "adapt fraction {frac}");
    }

    #[test]
    fn device_arrival_is_deterministic() {
        let (tb, ds) = setup();
        let a = device_arrival(&ds, &tb, 1, 0.5, 0.3, 9);
        let b = device_arrival(&ds, &tb, 1, 0.5, 0.3, 9);
        assert_eq!(a.new_device_test, b.new_device_test);
        assert_eq!(a.adapt.train, b.adapt.train);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn device_arrival_rejects_bad_device() {
        let (tb, ds) = setup();
        device_arrival(&ds, &tb, 9999, 0.5, 0.3, 0);
    }
}
