//! The ground-truth performance model.
//!
//! This module is the "physics" of the simulator: it assigns every
//! (workload, platform, interference set) a log-runtime composed of
//!
//! ```text
//! log C = log difficulty − log speed(platform)
//!       + affinity(workload, platform)          (low-rank, feature-linked)
//!       + pair quirk                            (idiosyncratic, small)
//!       + interference slowdown(workload, set, platform)
//!       + measurement noise                     (heteroscedastic)
//! ```
//!
//! mirroring the structure Pitot is designed to recover: a scaling baseline
//! (difficulty + speed), a low-rank residual, and a threshold-y contention
//! term. Nothing in here is visible to prediction code; models only see the
//! resulting observations and features.

use crate::device::Device;
use crate::runtime::{RuntimeConfig, RuntimeKind};
use crate::testbed::Platform;
use crate::workload::{sample_standard_normal, Workload};
use crate::TestbedConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of contention dimensions (memory bandwidth, shared cache, IO).
pub const CONTENTION_DIMS: usize = 3;

/// Fully materialized ground-truth parameters for one generated cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    noise_scale: f32,
    /// Hidden platform factor interacting with `Workload::hidden`.
    platform_hidden: Vec<f32>,
    /// Per-(workload, platform) idiosyncratic quirk, row-major
    /// `w * n_platforms + p`.
    pair_quirk: Vec<f32>,
    n_platforms: usize,
    /// Cached per-platform log speed (difficulty-independent part).
    platform_log_speed: Vec<f32>,
    /// Cached per-platform noise sigma.
    platform_sigma: Vec<f32>,
    /// Cached per-platform contention capacity/scale.
    capacity: Vec<[f32; CONTENTION_DIMS]>,
    contention_scale: Vec<f32>,
    /// Cached per-platform overhead seconds.
    overhead_s: Vec<f32>,
    /// Per-platform affinity loadings applied to workload trait vector.
    affinity: Vec<[f32; 4]>,
}

impl GroundTruth {
    /// Materializes ground truth for the given cluster.
    pub(crate) fn generate<R: Rng + ?Sized>(
        devices: &[Device],
        runtimes: &[RuntimeConfig],
        platforms: &[Platform],
        workloads: &[Workload],
        config: &TestbedConfig,
        rng: &mut R,
    ) -> Self {
        let n_platforms = platforms.len();
        let mut platform_log_speed = Vec::with_capacity(n_platforms);
        let mut platform_sigma = Vec::with_capacity(n_platforms);
        let mut capacity = Vec::with_capacity(n_platforms);
        let mut contention_scale = Vec::with_capacity(n_platforms);
        let mut overhead_s = Vec::with_capacity(n_platforms);
        let mut affinity = Vec::with_capacity(n_platforms);
        let mut platform_hidden = Vec::with_capacity(n_platforms);

        for p in platforms {
            let dev = &devices[p.device];
            let rt = &runtimes[p.runtime];
            // ln(instructions per second) for this (device, runtime).
            let log_ips = dev.log_ips_per_ghz + dev.freq_ghz.ln() - rt.log_slowdown;
            platform_log_speed.push(log_ips);
            platform_sigma.push(dev.noise_sigma);
            // Interpreters execute slowly and thus exert/feel less memory
            // pressure; JIT/AOT hit the memory system at full speed.
            let pressure_relief = match rt.kind {
                RuntimeKind::Interpreter => 1.6,
                RuntimeKind::Jit => 1.0,
                RuntimeKind::Aot => 1.0,
            };
            capacity.push([
                dev.contention_capacity[0] * pressure_relief,
                dev.contention_capacity[1],
                dev.contention_capacity[2],
            ]);
            contention_scale.push(dev.contention_scale);
            overhead_s.push(
                dev.os_overhead_s
                    + if rt.kind == RuntimeKind::Jit {
                        0.05
                    } else {
                        0.0
                    },
            );
            // Affinity loadings against workload traits
            // [fp_share, dispatch_share, mem_share, 1(small workload)]:
            affinity.push([
                dev.fp_weakness + rt.fp_cost,
                rt.dispatch_cost,
                dev.mem_weakness,
                0.0,
            ]);
            platform_hidden.push(0.22 * sample_standard_normal(rng));
        }

        let pair_quirk = (0..workloads.len() * n_platforms)
            .map(|_| 0.05 * sample_standard_normal(rng))
            .collect();

        Self {
            noise_scale: config.noise_scale,
            platform_hidden,
            pair_quirk,
            n_platforms,
            platform_log_speed,
            platform_sigma,
            capacity,
            contention_scale,
            overhead_s,
            affinity,
        }
    }

    /// Noise-free log-runtime of workload `w` on platform `p` in isolation.
    pub fn clean_log_runtime(&self, w: &Workload, widx: usize, pidx: usize) -> f32 {
        let a = &self.affinity[pidx];
        let traits = [w.fp_share(), w.dispatch_share(), w.mem_share(), 0.0];
        let affinity: f32 = a.iter().zip(traits).map(|(x, t)| x * t).sum();
        let hidden = w.hidden * self.platform_hidden[pidx];
        let quirk = self.pair_quirk[widx * self.n_platforms + pidx];
        let compute = w.log_difficulty - self.platform_log_speed[pidx] + affinity + hidden + quirk;
        // Fixed per-run overhead adds in linear space.
        (compute.exp() + self.overhead_s[pidx]).ln()
    }

    /// Noise-free log-slowdown caused by the interference set `set`
    /// (workload indices) on the primary workload `w` at platform `pidx`.
    ///
    /// The contention model sums interferer pressure per dimension and maps
    /// pressure beyond the platform's capacity through a soft threshold;
    /// the primary workload's sensitivity scales the result. This produces
    /// the near-zero mode plus heavy tail of paper Fig 1.
    pub fn interference_log_slowdown(&self, w: &Workload, set: &[&Workload], pidx: usize) -> f32 {
        if set.is_empty() {
            return 0.0;
        }
        let cap = &self.capacity[pidx];
        let scale = self.contention_scale[pidx];
        let mut slow = 0.0;
        for d in 0..CONTENTION_DIMS {
            let total_pressure: f32 = set.iter().map(|k| k.pressure[d]).sum();
            // Soft threshold: no slowdown until pressure nears capacity,
            // then roughly linear in the overshoot ratio.
            let overshoot = total_pressure / cap[d].max(1e-3) - 0.55;
            if overshoot > 0.0 {
                slow += w.sensitivity[d] * (1.0 + 1.8 * overshoot).ln();
            }
        }
        // Smoothly saturate: even fully time-sliced, a workload cannot slow
        // beyond roughly (n+1)× the contention envelope — the paper observes
        // at most ~20× for 4-way sets.
        let cap_log = 3.3; // ≈ ln(27)
        cap_log * ((slow * scale) / cap_log).tanh()
    }

    /// Full noisy log-runtime sample for an observation.
    ///
    /// Noise is heteroscedastic: a per-platform base sigma plus a term that
    /// grows with the number of interfering workloads (scheduling/alignment
    /// randomness, paper Sec 3.5 "Calibration Pools").
    pub fn sample_log_runtime<R: Rng + ?Sized>(
        &self,
        w: &Workload,
        widx: usize,
        set: &[&Workload],
        set_idx: &[usize],
        pidx: usize,
        rng: &mut R,
    ) -> f32 {
        debug_assert_eq!(set.len(), set_idx.len());
        let clean = self.clean_log_runtime(w, widx, pidx);
        let slow = self.interference_log_slowdown(w, set, pidx);
        // Alignment jitter makes the *realized* slowdown vary between runs.
        let slow_jitter = if slow > 0.0 {
            // Clamp to ±2σ so realized slowdowns stay within the paper's
            // observed ~20x envelope.
            (slow * 0.15 * sample_standard_normal(rng)).clamp(-0.3 * slow, 0.3 * slow)
        } else {
            0.0
        };
        let sigma = (self.platform_sigma[pidx] + 0.035 * set.len() as f32) * self.noise_scale;
        clean + slow + slow_jitter + sigma * sample_standard_normal(rng)
    }

    /// Per-platform mean *clean* interference log-slowdown over random pairs,
    /// used as the Fig 12d x-axis oracle.
    pub fn mean_pairwise_slowdown<R: Rng + ?Sized>(
        &self,
        workloads: &[Workload],
        pidx: usize,
        samples: usize,
        rng: &mut R,
    ) -> f32 {
        let mut total = 0.0;
        for _ in 0..samples {
            let a = rng.gen_range(0..workloads.len());
            let mut b = rng.gen_range(0..workloads.len());
            while b == a {
                b = rng.gen_range(0..workloads.len());
            }
            total += self.interference_log_slowdown(&workloads[a], &[&workloads[b]], pidx);
        }
        total / samples as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Testbed, TestbedConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_testbed() -> Testbed {
        Testbed::generate(&TestbedConfig::small())
    }

    #[test]
    fn interference_never_speeds_up_clean_model() {
        let tb = small_testbed();
        let truth = tb.truth();
        let ws = tb.workloads();
        for pidx in 0..tb.platforms().len().min(20) {
            for widx in 0..ws.len().min(10) {
                let base = truth.interference_log_slowdown(&ws[widx], &[], pidx);
                assert_eq!(base, 0.0);
                let one =
                    truth.interference_log_slowdown(&ws[widx], &[&ws[(widx + 1) % ws.len()]], pidx);
                assert!(one >= 0.0);
                let two = truth.interference_log_slowdown(
                    &ws[widx],
                    &[&ws[(widx + 1) % ws.len()], &ws[(widx + 2) % ws.len()]],
                    pidx,
                );
                assert!(two >= one - 1e-6, "adding an interferer reduced slowdown");
            }
        }
    }

    #[test]
    fn slowdown_has_a_heavy_tail() {
        // Fig 1: random 4-way combinations reach >5x slowdowns somewhere.
        let tb = Testbed::generate(&TestbedConfig::small());
        let truth = tb.truth();
        let ws = tb.workloads();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut max_slow = 0.0f32;
        for _ in 0..4000 {
            let pidx = rng.gen_range(0..tb.platforms().len());
            let set = tb.sample_set(4, &mut rng);
            let others: Vec<&Workload> = set[1..].iter().map(|&k| &ws[k]).collect();
            let s = truth.interference_log_slowdown(&ws[set[0]], &others, pidx);
            max_slow = max_slow.max(s);
        }
        assert!(
            max_slow > 5.0f32.ln(),
            "max slowdown only {:.2}x",
            max_slow.exp()
        );
    }

    #[test]
    fn platform_speeds_span_orders_of_magnitude() {
        let tb = small_testbed();
        let truth = tb.truth();
        let w = &tb.workloads()[0];
        let logs: Vec<f32> = (0..tb.platforms().len())
            .map(|p| truth.clean_log_runtime(w, 0, p))
            .collect();
        let min = logs.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = logs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 10.0f32.ln(), "span {:.1}x", (max - min).exp());
    }

    #[test]
    fn overhead_dominates_tiny_workloads() {
        // A workload with near-zero compute cannot run faster than the
        // platform overhead on an OS-backed platform.
        let tb = small_testbed();
        let truth = tb.truth();
        let mut tiny = tb.workloads()[0].clone();
        tiny.log_difficulty = 5.0; // ~150 instructions
        let dev_platform = (0..tb.platforms().len())
            .find(|&p| tb.platform_device(p).os_overhead_s > 0.0)
            .unwrap();
        let lr = truth.clean_log_runtime(&tiny, 0, dev_platform);
        assert!(lr.exp() >= tb.platform_device(dev_platform).os_overhead_s * 0.9);
    }

    #[test]
    fn noise_is_larger_with_interference() {
        let tb = small_testbed();
        let truth = tb.truth();
        let ws = tb.workloads();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sample_sd = |set: Vec<usize>, rng: &mut ChaCha8Rng| {
            let others: Vec<&Workload> = set.iter().map(|&k| &ws[k]).collect();
            let xs: Vec<f32> = (0..200)
                .map(|_| truth.sample_log_runtime(&ws[0], 0, &others, &set, 0, rng))
                .collect();
            pitot_linalg::variance(&xs).sqrt()
        };
        let sd0 = sample_sd(vec![], &mut rng);
        let sd3 = sample_sd(vec![1, 2, 3], &mut rng);
        assert!(sd3 > sd0, "sd3 {sd3} should exceed sd0 {sd0}");
    }
}
