//! Benchmark workloads and their synthetic opcode-count profiles.
//!
//! The paper's dataset draws 249 workloads from six suites (Sec 4) and uses
//! the executed-opcode histogram from an instrumented interpreter as workload
//! side information (App C.2). We synthesize both: each suite has a
//! characteristic mixture over opcode *groups*, each workload perturbs that
//! mixture, and opcode counts are the mixture times a lognormal total
//! instruction count.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Benchmark suite (paper Sec 4 "Workloads").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Polybench: numerical floating-point-heavy kernels.
    Polybench,
    /// MiBench: diverse embedded benchmarks.
    Mibench,
    /// UCSD Cortex Suite: vision/ML benchmarks.
    Cortex,
    /// San Diego Vision Benchmark Suite.
    Sdvbs,
    /// Libsodium cryptography benchmarks.
    Libsodium,
    /// CPython benchmarks on WASI.
    Python,
}

impl Suite {
    /// All suites in a stable order.
    pub const ALL: [Suite; 6] = [
        Suite::Polybench,
        Suite::Mibench,
        Suite::Cortex,
        Suite::Sdvbs,
        Suite::Libsodium,
        Suite::Python,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Polybench => "Polybench",
            Suite::Mibench => "Mibench",
            Suite::Cortex => "Cortex",
            Suite::Sdvbs => "SDVBS",
            Suite::Libsodium => "Libsodium",
            Suite::Python => "Python",
        }
    }

    /// Number of workloads the suite contributes (totals 249, Sec 4).
    pub fn paper_count(self) -> usize {
        match self {
            Suite::Polybench => 30,
            Suite::Mibench => 35,
            Suite::Cortex => 40,
            Suite::Sdvbs => 28,
            Suite::Libsodium => 104,
            Suite::Python => 12,
        }
    }
}

/// Opcode groups used to structure the synthetic opcode histograms.
///
/// The per-group shares also drive the ground-truth model: FP-heavy workloads
/// are hit by `Device::fp_weakness`, branch/call-heavy ones by interpreter
/// dispatch, memory-heavy ones by `Device::mem_weakness` and memory-bandwidth
/// contention.
pub const OPCODE_GROUPS: [(&str, &[&str]); 10] = [
    (
        "int_arith",
        &[
            "i32.add", "i32.sub", "i32.and", "i32.or", "i32.xor", "i32.shl", "i64.add", "i64.sub",
        ],
    ),
    (
        "int_muldiv",
        &["i32.mul", "i32.div_u", "i64.mul", "i64.div_u"],
    ),
    ("fp32", &["f32.add", "f32.mul", "f32.div", "f32.sqrt"]),
    (
        "fp64",
        &[
            "f64.add", "f64.sub", "f64.mul", "f64.div", "f64.sqrt", "f64.abs",
        ],
    ),
    (
        "load",
        &[
            "i32.load",
            "i64.load",
            "f32.load",
            "f64.load",
            "i32.load8_u",
            "i32.load16_u",
        ],
    ),
    (
        "store",
        &["i32.store", "i64.store", "f64.store", "i32.store8"],
    ),
    ("branch", &["br", "br_if", "br_table", "if"]),
    ("call", &["call", "call_indirect", "return"]),
    (
        "local",
        &[
            "local.get",
            "local.set",
            "local.tee",
            "global.get",
            "global.set",
            "select",
        ],
    ),
    (
        "compare",
        &[
            "i32.eq", "i32.lt_s", "i32.gt_s", "i64.lt_u", "f64.lt", "f64.gt",
        ],
    ),
];

/// Total number of opcode features.
pub fn opcode_count() -> usize {
    OPCODE_GROUPS.iter().map(|(_, ops)| ops.len()).sum()
}

/// Flat list of opcode names in feature order.
pub fn opcode_names() -> Vec<&'static str> {
    OPCODE_GROUPS
        .iter()
        .flat_map(|(_, ops)| ops.iter().copied())
        .collect()
}

/// A benchmark workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Identifier like `polybench/kernel-07`.
    pub name: String,
    /// Suite the workload belongs to.
    pub suite: Suite,
    /// Executed-opcode counts (feature source), one per `opcode_names` entry.
    pub opcode_counts: Vec<f64>,
    /// Share of executed instructions per opcode group.
    pub group_shares: [f32; 10],

    // ---- latent traits (ground truth only) ----
    /// ln(total executed instructions).
    pub log_difficulty: f32,
    /// Hidden performance component not explained by opcode counts
    /// (memory access pattern, data-dependent stalls).
    pub hidden: f32,
    /// Contention pressure exerted per dimension (mem bandwidth, cache, IO).
    pub pressure: [f32; 3],
    /// Sensitivity to contention per dimension.
    pub sensitivity: [f32; 3],
}

/// Suite-level generation parameters.
struct SuiteProfile {
    /// Mean share per opcode group (normalized at use).
    group_means: [f32; 10],
    /// Concentration: higher = workloads hew closer to the suite mean.
    concentration: f32,
    /// Mean/stddev of ln(total instructions).
    log_instr_mean: f32,
    log_instr_std: f32,
    /// IO contention affinity (some suites do real filesystem work).
    io_level: f32,
}

fn profile(suite: Suite) -> SuiteProfile {
    // Group order: int_arith, int_muldiv, fp32, fp64, load, store, branch,
    // call, local, compare.
    match suite {
        Suite::Polybench => SuiteProfile {
            group_means: [0.08, 0.02, 0.05, 0.30, 0.20, 0.08, 0.06, 0.01, 0.15, 0.05],
            concentration: 60.0,
            log_instr_mean: 19.0, // ~2e8 instructions
            log_instr_std: 1.8,
            io_level: 0.02,
        },
        Suite::Mibench => SuiteProfile {
            group_means: [0.22, 0.06, 0.03, 0.02, 0.18, 0.08, 0.12, 0.05, 0.16, 0.08],
            concentration: 14.0,
            log_instr_mean: 18.2,
            log_instr_std: 2.0,
            io_level: 0.5,
        },
        Suite::Cortex => SuiteProfile {
            group_means: [0.14, 0.05, 0.16, 0.08, 0.20, 0.07, 0.08, 0.04, 0.12, 0.06],
            concentration: 10.0,
            log_instr_mean: 19.6,
            log_instr_std: 1.7,
            io_level: 0.25,
        },
        Suite::Sdvbs => SuiteProfile {
            group_means: [0.12, 0.04, 0.20, 0.06, 0.22, 0.08, 0.07, 0.03, 0.12, 0.06],
            concentration: 12.0,
            log_instr_mean: 19.8,
            log_instr_std: 1.6,
            io_level: 0.3,
        },
        Suite::Libsodium => SuiteProfile {
            group_means: [0.34, 0.10, 0.01, 0.01, 0.14, 0.10, 0.08, 0.03, 0.13, 0.06],
            concentration: 40.0,
            log_instr_mean: 17.8,
            log_instr_std: 1.5,
            io_level: 0.05,
        },
        Suite::Python => SuiteProfile {
            group_means: [0.14, 0.03, 0.02, 0.04, 0.16, 0.07, 0.16, 0.14, 0.16, 0.08],
            concentration: 30.0,
            log_instr_mean: 20.3,
            log_instr_std: 1.2,
            io_level: 0.6,
        },
    }
}

/// Samples a (symmetric-ish) Dirichlet perturbation of the suite mean using
/// Gamma draws (Marsaglia–Tsang via normal approximation is avoided; we use
/// the simple `-ln(U)` exponential trick per unit of concentration).
fn sample_shares<R: Rng + ?Sized>(p: &SuiteProfile, rng: &mut R) -> [f32; 10] {
    let mut shares = [0.0f32; 10];
    let mut total = 0.0;
    for (i, share) in shares.iter_mut().enumerate() {
        // Gamma(k = mean*concentration, 1) approximated as a sum of
        // exponentials for the integer part plus a fractional correction.
        let alpha = (p.group_means[i] * p.concentration).max(0.05);
        let mut g = 0.0f32;
        let whole = alpha.floor() as usize;
        for _ in 0..whole {
            g += -(rng.gen_range(f32::EPSILON..1.0)).ln();
        }
        let frac = alpha - whole as f32;
        if frac > 1e-3 {
            // Single Beta-weighted exponential is a rough but adequate
            // fractional-Gamma surrogate for feature synthesis.
            let u: f32 = rng.gen_range(f32::EPSILON..1.0);
            g += -(rng.gen_range(f32::EPSILON..1.0f32)).ln() * u.powf(1.0 / frac.max(1e-3));
        }
        *share = g.max(1e-4);
        total += *share;
    }
    for s in &mut shares {
        *s /= total;
    }
    shares
}

/// Generates `count` workloads for `suite`.
pub fn generate_suite<R: Rng + ?Sized>(suite: Suite, count: usize, rng: &mut R) -> Vec<Workload> {
    let p = profile(suite);
    let names = opcode_names();
    (0..count)
        .map(|idx| {
            let shares = sample_shares(&p, rng);
            let log_difficulty = p.log_instr_mean + p.log_instr_std * sample_standard_normal(rng);
            let total_instr = (log_difficulty as f64).exp();

            // Distribute each group's instruction share across its opcodes
            // with a random but workload-stable within-group split.
            let mut opcode_counts = Vec::with_capacity(names.len());
            for (g, (_, ops)) in OPCODE_GROUPS.iter().enumerate() {
                let mut w: Vec<f32> = (0..ops.len()).map(|_| rng.gen_range(0.05..1.0)).collect();
                let wt: f32 = w.iter().sum();
                for v in &mut w {
                    *v /= wt;
                }
                for v in &w {
                    opcode_counts.push(total_instr * (shares[g] * v) as f64);
                }
            }

            // Contention traits follow the opcode mixture plus noise.
            let mem_share = shares[4] + shares[5];
            let cache_foot = ((log_difficulty - 16.0) / 6.0).clamp(0.05, 1.0);
            let io = p.io_level * rng.gen_range(0.3..1.6);
            let jitter = |rng: &mut R| rng.gen_range(0.6..1.4);
            let pressure = [
                (mem_share * 3.0 * jitter(rng)).min(1.6),
                (cache_foot * jitter(rng)).min(1.4),
                (io * jitter(rng)).min(1.5),
            ];
            let sensitivity = [
                (mem_share * 2.5 * jitter(rng)).min(1.4),
                (cache_foot * 0.9 * jitter(rng)).min(1.2),
                (io * 0.8 * jitter(rng)).min(1.2),
            ];

            Workload {
                name: format!("{}/bench-{idx:03}", suite.label().to_lowercase()),
                suite,
                opcode_counts,
                group_shares: shares,
                log_difficulty,
                hidden: 0.22 * sample_standard_normal(rng),
                pressure,
                sensitivity,
            }
        })
        .collect()
}

/// Standard normal via Box–Muller (kept local to avoid a distributions dep).
pub(crate) fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

impl Workload {
    /// Share of executed instructions that are floating point.
    pub fn fp_share(&self) -> f32 {
        self.group_shares[2] + self.group_shares[3]
    }

    /// Share of branch/call instructions (interpreter dispatch cost driver).
    pub fn dispatch_share(&self) -> f32 {
        self.group_shares[6] + self.group_shares[7]
    }

    /// Share of memory instructions.
    pub fn mem_share(&self) -> f32 {
        self.group_shares[4] + self.group_shares[5]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn suite_counts_total_249() {
        let total: usize = Suite::ALL.iter().map(|s| s.paper_count()).sum();
        assert_eq!(total, 249, "paper: 249 workloads");
    }

    #[test]
    fn shares_normalize() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for suite in Suite::ALL {
            let ws = generate_suite(suite, 5, &mut rng);
            for w in ws {
                let s: f32 = w.group_shares.iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "{suite:?} shares sum to {s}");
                assert!(w.opcode_counts.iter().all(|&c| c >= 0.0));
                assert_eq!(w.opcode_counts.len(), opcode_count());
            }
        }
    }

    #[test]
    fn polybench_is_fp_heavy_libsodium_is_not() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let poly = generate_suite(Suite::Polybench, 30, &mut rng);
        let sodium = generate_suite(Suite::Libsodium, 30, &mut rng);
        let fp = |ws: &[Workload]| ws.iter().map(Workload::fp_share).sum::<f32>() / ws.len() as f32;
        assert!(fp(&poly) > 0.25, "polybench fp share {}", fp(&poly));
        assert!(fp(&sodium) < 0.06, "libsodium fp share {}", fp(&sodium));
    }

    #[test]
    fn python_is_dispatch_heavy() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let py = generate_suite(Suite::Python, 12, &mut rng);
        let avg: f32 = py.iter().map(Workload::dispatch_share).sum::<f32>() / 12.0;
        assert!(avg > 0.2, "python dispatch share {avg}");
    }

    #[test]
    fn difficulty_spans_orders_of_magnitude() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let all: Vec<Workload> = Suite::ALL
            .iter()
            .flat_map(|&s| generate_suite(s, s.paper_count(), &mut rng))
            .collect();
        let min = all
            .iter()
            .map(|w| w.log_difficulty)
            .fold(f32::INFINITY, f32::min);
        let max = all
            .iter()
            .map(|w| w.log_difficulty)
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(
            max - min > 2.0f32.ln() * 8.0,
            "span only {:.1} octaves",
            (max - min) / 2.0f32.ln()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_suite(Suite::Mibench, 10, &mut ChaCha8Rng::seed_from_u64(9));
        let b = generate_suite(Suite::Mibench, 10, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.log_difficulty, y.log_difficulty);
            assert_eq!(x.opcode_counts, y.opcode_counts);
        }
    }
}
