//! Dataset serialization: share collected observations without the simulator.
//!
//! The paper publishes its measurements as an archival dataset (Zenodo
//! record 14977004) precisely so others can train predictors without the
//! physical cluster. This module provides the same decoupling for the
//! synthetic testbed: a [`Dataset`] round-trips through JSON, so experiment
//! pipelines can snapshot a collection once and replay it across runs,
//! machines, or after simulator changes.

use crate::observe::Dataset;
use std::fs;
use std::io;
use std::path::Path;

impl Dataset {
    /// Serializes the full dataset (observations + feature matrices) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serializes")
    }

    /// Restores a dataset serialized by [`Dataset::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the parse error on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the dataset to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Loads a dataset written by [`Dataset::save_json`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error on read failure, or an
    /// [`io::ErrorKind::InvalidData`] error on parse failure.
    pub fn load_json(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Testbed, TestbedConfig};

    fn tiny_dataset() -> Dataset {
        // Scale down for fast serialization tests.
        let cfg = TestbedConfig {
            workload_scale: 0.05,
            sets_per_platform: 3,
            ..TestbedConfig::small()
        };
        Testbed::generate(&cfg).collect_dataset()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let ds = tiny_dataset();
        let restored = Dataset::from_json(&ds.to_json()).unwrap();
        assert_eq!(restored.observations, ds.observations);
        assert_eq!(restored.n_workloads, ds.n_workloads);
        assert_eq!(restored.n_platforms, ds.n_platforms);
        assert_eq!(
            restored.workload_features.as_slice(),
            ds.workload_features.as_slice()
        );
        assert_eq!(
            restored.platform_features.as_slice(),
            ds.platform_features.as_slice()
        );
        assert_eq!(restored.workload_suites, ds.workload_suites);
    }

    #[test]
    fn file_round_trip() {
        let ds = tiny_dataset();
        let path = std::env::temp_dir().join("pitot_testbed_io_test.json");
        ds.save_json(&path).unwrap();
        let restored = Dataset::load_json(&path).unwrap();
        assert_eq!(restored.observations.len(), ds.observations.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Dataset::from_json("{not json").is_err());
    }

    #[test]
    fn load_reports_missing_file() {
        let err = Dataset::load_json("/nonexistent/pitot/ds.json").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }
}
