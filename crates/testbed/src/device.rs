//! The device catalog (paper Table 2).
//!
//! Each device carries two kinds of information:
//!
//! - *observable* attributes that become platform features (microarchitecture,
//!   nominal frequency, cache hierarchy, memory size), matching App C.2;
//! - *latent* performance traits used only by the ground-truth simulator
//!   (base throughput, floating-point/memory weaknesses, OS overhead,
//!   contention capacities, measurement noise). Models never see these.

use serde::{Deserialize, Serialize};

/// Coarse CPU class, used for Fig 12c/12d groupings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Intel x86-64 desktops/NUCs.
    X86Intel,
    /// AMD x86-64 mini PCs.
    X86Amd,
    /// ARM A-class single-board computers.
    ArmAClass,
    /// RISC-V single-board computers.
    RiscV,
    /// ARM M-class microcontrollers (bare metal, no OS).
    ArmMClass,
}

impl DeviceClass {
    /// Display label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::X86Intel => "Intel x86",
            DeviceClass::X86Amd => "AMD x86",
            DeviceClass::ArmAClass => "ARM A-class",
            DeviceClass::RiscV => "RISC-V",
            DeviceClass::ArmMClass => "ARM M-class",
        }
    }
}

/// CPU microarchitecture (one-hot encoded platform feature; 14 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Microarch {
    /// Intel Skylake (desktop/server x86).
    Skylake,
    /// Intel Haswell (desktop x86).
    Haswell,
    /// Intel Silvermont (low-power Atom x86).
    Silvermont,
    /// Intel Tiger Lake (mobile x86).
    TigerLake,
    /// Intel Goldmont Plus (low-power Atom x86).
    GoldmontPlus,
    /// AMD Zen 3 x86.
    Zen3,
    /// AMD Zen 2 x86.
    Zen2,
    /// AMD Zen 1 x86.
    Zen1,
    /// AMD Jaguar (low-power x86).
    Jaguar,
    /// ARM Cortex-A72 (performance A-class).
    CortexA72,
    /// ARM Cortex-A53 (efficiency A-class).
    CortexA53,
    /// ARM Cortex-A55 (efficiency A-class).
    CortexA55,
    /// SiFive U74 (RISC-V application core).
    SifiveU74,
    /// ARM Cortex-M7 (bare-metal microcontroller).
    CortexM7,
}

impl Microarch {
    /// All microarchitectures, in one-hot encoding order.
    pub const ALL: [Microarch; 14] = [
        Microarch::Skylake,
        Microarch::Haswell,
        Microarch::Silvermont,
        Microarch::TigerLake,
        Microarch::GoldmontPlus,
        Microarch::Zen3,
        Microarch::Zen2,
        Microarch::Zen1,
        Microarch::Jaguar,
        Microarch::CortexA72,
        Microarch::CortexA53,
        Microarch::CortexA55,
        Microarch::SifiveU74,
        Microarch::CortexM7,
    ];

    /// Index into the one-hot encoding.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|m| *m == self)
            .expect("member of ALL")
    }

    /// Human-readable name (as `cpuinfo` would report it).
    pub fn name(self) -> &'static str {
        match self {
            Microarch::Skylake => "skylake",
            Microarch::Haswell => "haswell",
            Microarch::Silvermont => "silvermont",
            Microarch::TigerLake => "tigerlake",
            Microarch::GoldmontPlus => "goldmont-plus",
            Microarch::Zen3 => "znver3",
            Microarch::Zen2 => "znver2",
            Microarch::Zen1 => "znver1",
            Microarch::Jaguar => "jaguar",
            Microarch::CortexA72 => "cortex-a72",
            Microarch::CortexA53 => "cortex-a53",
            Microarch::CortexA55 => "cortex-a55",
            Microarch::SifiveU74 => "sifive-u74",
            Microarch::CortexM7 => "cortex-m7",
        }
    }
}

/// A physical device in the cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Marketing/model name (Table 2 "Model" column).
    pub name: String,
    /// CPU vendor.
    pub vendor: String,
    /// CPU model string.
    pub cpu: String,
    /// Microarchitecture (observable feature).
    pub microarch: Microarch,
    /// Coarse class for reporting.
    pub class: DeviceClass,
    /// Nominal CPU frequency in GHz (observable feature).
    pub freq_ghz: f32,
    /// L1 data cache size in KiB.
    pub l1d_kb: u32,
    /// L1 instruction cache size in KiB.
    pub l1i_kb: u32,
    /// L2 cache size in KiB.
    pub l2_kb: u32,
    /// L2 line size in bytes (32 or 64 in this cluster).
    pub l2_line: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L3 cache size in KiB, if present (A-class parts often lack L3).
    pub l3_kb: Option<u32>,
    /// Main memory in MiB.
    pub mem_mb: u32,

    // ---- latent traits (ground truth only; never exposed as features) ----
    /// ln(instructions/second at 1 GHz) for a perfectly compiled workload.
    pub log_ips_per_ghz: f32,
    /// Extra log-slowdown multiplier applied to the FP-heavy share of a
    /// workload (in-order and low-power cores pay more).
    pub fp_weakness: f32,
    /// Extra log-slowdown applied to the memory-heavy share of a workload.
    pub mem_weakness: f32,
    /// Fixed per-run overhead in seconds (process spawn, module load);
    /// zero on the bare-metal microcontroller (paper footnote 5).
    pub os_overhead_s: f32,
    /// Standard deviation of per-observation log-runtime noise
    /// (frequency-governor jitter, thermal throttling).
    pub noise_sigma: f32,
    /// Contention capacity per dimension: memory bandwidth, shared cache,
    /// storage/IO. Larger means more headroom before interference bites.
    pub contention_capacity: [f32; 3],
    /// How steeply contention beyond capacity turns into slowdown.
    pub contention_scale: f32,
}

/// Builds the 24-device cluster of Table 2 (plus the two duplicate units the
/// paper's counts imply: a second NUC 8 and an NXP i.MX 8M to reach the
/// stated 9 vendors / 24 devices).
pub fn catalog() -> Vec<Device> {
    use DeviceClass::*;
    use Microarch::*;

    // (name, vendor, cpu, arch, class, GHz, l1d, l1i, l2, line, assoc, l3, memMB,
    //  log_ips@1GHz, fp_w, mem_w, overhead, noise, cap, scale)
    let mut devices = Vec::new();
    let mut push = |name: &str,
                    vendor: &str,
                    cpu: &str,
                    microarch: Microarch,
                    class: DeviceClass,
                    freq_ghz: f32,
                    caches: (u32, u32, u32, u32, u32, Option<u32>, u32),
                    log_ips_per_ghz: f32,
                    fp_weakness: f32,
                    mem_weakness: f32,
                    os_overhead_s: f32,
                    noise_sigma: f32,
                    contention_capacity: [f32; 3],
                    contention_scale: f32| {
        devices.push(Device {
            name: name.to_string(),
            vendor: vendor.to_string(),
            cpu: cpu.to_string(),
            microarch,
            class,
            freq_ghz,
            l1d_kb: caches.0,
            l1i_kb: caches.1,
            l2_kb: caches.2,
            l2_line: caches.3,
            l2_assoc: caches.4,
            l3_kb: caches.5,
            mem_mb: caches.6,
            log_ips_per_ghz,
            fp_weakness,
            mem_weakness,
            os_overhead_s,
            noise_sigma,
            contention_capacity,
            contention_scale,
        });
    };

    // Intel x86. log_ips_per_ghz ≈ ln(1.3e9) ≈ 21.0 for a big OoO core.
    push(
        "NUC 8",
        "Intel",
        "i7-8650U",
        Skylake,
        X86Intel,
        1.9,
        (32, 32, 256, 64, 4, Some(8192), 16384),
        21.0,
        0.00,
        0.00,
        0.012,
        0.035,
        [3.2, 3.0, 2.5],
        0.55,
    );
    push(
        "NUC 4",
        "Intel",
        "i3-4010U",
        Haswell,
        X86Intel,
        1.7,
        (32, 32, 256, 64, 8, Some(3072), 8192),
        20.8,
        0.02,
        0.05,
        0.013,
        0.04,
        [2.6, 2.4, 2.2],
        0.6,
    );
    push(
        "Generic ITX",
        "Intel",
        "i7-4770TE",
        Haswell,
        X86Intel,
        2.3,
        (32, 32, 256, 64, 8, Some(8192), 16384),
        20.85,
        0.02,
        0.03,
        0.012,
        0.035,
        [3.0, 2.8, 2.4],
        0.55,
    );
    push(
        "Compute Stick",
        "Intel",
        "x5-Z8330",
        Silvermont,
        X86Intel,
        1.44,
        (24, 32, 1024, 64, 16, None, 2048),
        20.0,
        0.18,
        0.22,
        0.02,
        0.07,
        [1.2, 1.0, 0.9],
        0.95,
    );
    push(
        "NUC 11 (i5)",
        "Intel",
        "i5-1145G7",
        TigerLake,
        X86Intel,
        2.6,
        (48, 32, 1280, 64, 8, Some(8192), 16384),
        21.2,
        -0.02,
        -0.02,
        0.011,
        0.03,
        [3.6, 3.4, 2.6],
        0.5,
    );
    push(
        "NUC 11 (i7)",
        "Intel",
        "i7-1165G7",
        TigerLake,
        X86Intel,
        2.8,
        (48, 32, 1280, 64, 8, Some(12288), 32768),
        21.25,
        -0.03,
        -0.03,
        0.011,
        0.03,
        [3.8, 3.6, 2.7],
        0.5,
    );
    push(
        "Mini PC (N4020)",
        "Intel",
        "N4020",
        GoldmontPlus,
        X86Intel,
        1.1,
        (24, 32, 4096, 64, 16, None, 4096),
        20.2,
        0.15,
        0.18,
        0.018,
        0.06,
        [1.4, 1.3, 1.0],
        0.9,
    );

    // AMD x86.
    push(
        "EliteDesk 805 G8",
        "AMD",
        "R5-5650G",
        Zen3,
        X86Amd,
        3.9,
        (32, 32, 512, 64, 8, Some(16384), 32768),
        21.15,
        -0.02,
        -0.02,
        0.011,
        0.03,
        [3.8, 3.6, 2.8],
        0.5,
    );
    push(
        "Mini PC (4500U)",
        "AMD",
        "R5-4500U",
        Zen2,
        X86Amd,
        2.3,
        (32, 32, 512, 64, 8, Some(8192), 16384),
        21.0,
        0.0,
        0.0,
        0.012,
        0.035,
        [3.2, 3.0, 2.4],
        0.55,
    );
    push(
        "Mini PC (3200U)",
        "AMD",
        "R3-3200U",
        Zen1,
        X86Amd,
        2.6,
        (32, 64, 512, 64, 8, Some(4096), 8192),
        20.8,
        0.04,
        0.06,
        0.013,
        0.045,
        [2.4, 2.2, 2.0],
        0.65,
    );
    push(
        "Mini PC (A6)",
        "AMD",
        "A6-1450",
        Jaguar,
        X86Amd,
        1.0,
        (32, 32, 2048, 64, 16, None, 4096),
        20.1,
        0.2,
        0.2,
        0.02,
        0.07,
        [1.1, 1.0, 0.9],
        1.0,
    );

    // ARM A-class SBCs. Weaker cores (~ln(4e8) ≈ 19.8 per GHz for A72,
    // ~19.2 for A53/A55), small or absent L3, low memory bandwidth.
    push(
        "RPi 4 Rev 1.2",
        "Broadcom",
        "BCM2711",
        CortexA72,
        ArmAClass,
        1.5,
        (32, 48, 1024, 64, 16, None, 4096),
        19.9,
        0.25,
        0.3,
        0.02,
        0.06,
        [1.0, 0.9, 0.7],
        1.15,
    );
    push(
        "RPi 3B+ Rev 1.3",
        "Broadcom",
        "BCM2837B0",
        CortexA53,
        ArmAClass,
        1.4,
        (32, 32, 512, 64, 16, None, 1024),
        19.2,
        0.35,
        0.4,
        0.025,
        0.08,
        [0.7, 0.6, 0.5],
        1.35,
    );
    push(
        "Banana Pi M5",
        "Amlogic",
        "S905X3",
        CortexA55,
        ArmAClass,
        2.0,
        (32, 32, 512, 64, 16, None, 4096),
        19.4,
        0.3,
        0.33,
        0.022,
        0.06,
        [0.85, 0.75, 0.6],
        1.25,
    );
    push(
        "Le Potato",
        "Amlogic",
        "S905X",
        CortexA53,
        ArmAClass,
        1.512,
        (32, 32, 512, 64, 16, None, 2048),
        19.2,
        0.35,
        0.4,
        0.025,
        0.075,
        [0.7, 0.6, 0.5],
        1.35,
    );
    push(
        "Odroid C4",
        "Amlogic",
        "S905X3",
        CortexA55,
        ArmAClass,
        2.0,
        (32, 32, 512, 64, 16, None, 4096),
        19.45,
        0.3,
        0.32,
        0.022,
        0.06,
        [0.9, 0.8, 0.62],
        1.25,
    );
    push(
        "RockPro64",
        "RockChip",
        "RK3399",
        CortexA72,
        ArmAClass,
        1.8,
        (32, 48, 1024, 64, 16, None, 4096),
        19.95,
        0.24,
        0.28,
        0.02,
        0.055,
        [1.05, 0.95, 0.72],
        1.12,
    );
    push(
        "Rock Pi 4b",
        "RockChip",
        "RK3399",
        CortexA72,
        ArmAClass,
        1.8,
        (32, 48, 1024, 64, 16, None, 4096),
        19.9,
        0.25,
        0.28,
        0.02,
        0.06,
        [1.05, 0.95, 0.72],
        1.12,
    );
    push(
        "Renegade",
        "RockChip",
        "RK3328",
        CortexA53,
        ArmAClass,
        1.4,
        (32, 32, 256, 64, 16, None, 4096),
        19.15,
        0.36,
        0.42,
        0.026,
        0.08,
        [0.65, 0.55, 0.5],
        1.4,
    );
    push(
        "Orange Pi 3",
        "Allwinner",
        "H6",
        CortexA53,
        ArmAClass,
        1.8,
        (32, 32, 512, 64, 16, None, 2048),
        19.25,
        0.34,
        0.38,
        0.024,
        0.07,
        [0.75, 0.65, 0.55],
        1.3,
    );
    push(
        "i.MX 8M Mini EVK",
        "NXP",
        "i.MX8M Mini",
        CortexA53,
        ArmAClass,
        1.8,
        (32, 32, 512, 64, 16, None, 2048),
        19.25,
        0.34,
        0.38,
        0.024,
        0.07,
        [0.75, 0.65, 0.55],
        1.3,
    );

    // RISC-V SBC.
    push(
        "Starfive VF2",
        "SiFive",
        "U74",
        SifiveU74,
        RiscV,
        1.5,
        (32, 32, 2048, 64, 8, None, 8192),
        19.5,
        0.4,
        0.35,
        0.022,
        0.06,
        [0.9, 0.8, 0.6],
        1.2,
    );

    // ARM M-class microcontroller: bare metal, no OS overhead, tiny memory,
    // effectively no shared-resource contention headroom.
    push(
        "Nucleo-F767ZI",
        "STMicro",
        "STM32F767ZI",
        CortexM7,
        ArmMClass,
        0.216,
        (16, 16, 0, 32, 4, None, 1),
        19.6,
        0.5,
        0.2,
        0.0,
        0.02,
        [0.35, 0.3, 0.25],
        1.5,
    );

    // Second RPi 4 unit implied by the paper's device count (24 devices but
    // 22 distinct Table 2 rows plus the NXP board the vendor list implies).
    push(
        "RPi 4 Rev 1.4",
        "Broadcom",
        "BCM2711",
        CortexA72,
        ArmAClass,
        1.5,
        (32, 48, 1024, 64, 16, None, 8192),
        19.92,
        0.25,
        0.29,
        0.02,
        0.06,
        [1.0, 0.9, 0.7],
        1.15,
    );

    devices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_matches_paper_counts() {
        let devices = catalog();
        assert_eq!(devices.len(), 24, "paper: 24 devices");
        let vendors: std::collections::HashSet<_> =
            devices.iter().map(|d| d.vendor.as_str()).collect();
        assert_eq!(vendors.len(), 9, "paper: 9 vendors, got {vendors:?}");
        let archs: std::collections::HashSet<_> = devices.iter().map(|d| d.microarch).collect();
        assert_eq!(archs.len(), 14, "paper: 14 microarchitectures");
    }

    #[test]
    fn microarch_onehot_is_consistent() {
        for (i, m) in Microarch::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }

    #[test]
    fn microcontroller_has_no_os_overhead() {
        let devices = catalog();
        let mcu = devices
            .iter()
            .find(|d| d.class == DeviceClass::ArmMClass)
            .unwrap();
        assert_eq!(mcu.os_overhead_s, 0.0);
        assert!(mcu.l3_kb.is_none());
    }

    #[test]
    fn x86_is_faster_than_sbc_per_ghz() {
        let devices = catalog();
        let min_x86 = devices
            .iter()
            .filter(|d| matches!(d.class, DeviceClass::X86Intel | DeviceClass::X86Amd))
            .map(|d| d.log_ips_per_ghz)
            .fold(f32::INFINITY, f32::min);
        let max_arm = devices
            .iter()
            .filter(|d| d.class == DeviceClass::ArmAClass)
            .map(|d| d.log_ips_per_ghz)
            .fold(f32::NEG_INFINITY, f32::max);
        assert!(min_x86 > max_arm);
    }

    #[test]
    fn weak_devices_feel_contention_harder() {
        let devices = catalog();
        for d in &devices {
            if d.class == DeviceClass::ArmAClass {
                assert!(d.contention_scale > 1.0, "{}", d.name);
                assert!(d.contention_capacity[0] <= 1.1, "{}", d.name);
            }
        }
    }
}
