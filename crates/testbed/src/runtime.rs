//! WebAssembly runtime configurations (paper Table 3).

use serde::{Deserialize, Serialize};

/// Execution strategy of a WebAssembly runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// Bytecode interpreter (slowest, most portable).
    Interpreter,
    /// Just-in-time compiler.
    Jit,
    /// Ahead-of-time compiler (fastest).
    Aot,
}

impl RuntimeKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Interpreter => "interpreted",
            RuntimeKind::Jit => "JIT",
            RuntimeKind::Aot => "AOT",
        }
    }
}

/// A (runtime, configuration) pair — one of the 10 columns of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Runtime family (Wasm3, WAMR, WasmEdge, Wasmtime, Wasmer).
    pub family: String,
    /// Configuration label, e.g. "LLVM AOT".
    pub config: String,
    /// Execution strategy.
    pub kind: RuntimeKind,
    // ---- latent traits (ground truth only) ----
    /// ln(slowdown) relative to an ideal native compiler.
    pub log_slowdown: f32,
    /// Extra log-penalty multiplier on the branch/call-heavy share of a
    /// workload (interpreter dispatch overhead).
    pub dispatch_cost: f32,
    /// Extra log-penalty multiplier on the FP-heavy share (softfloat or
    /// poor FP codegen, mostly for singlepass/interpreters).
    pub fp_cost: f32,
}

impl RuntimeConfig {
    /// Full display name, e.g. "WAMR (LLVM AOT)".
    pub fn name(&self) -> String {
        format!("{} ({})", self.family, self.config)
    }
}

/// Builds the 10 runtime configurations of Table 3.
pub fn catalog() -> Vec<RuntimeConfig> {
    use RuntimeKind::*;
    let mk =
        |family: &str, config: &str, kind, log_slowdown, dispatch_cost, fp_cost| RuntimeConfig {
            family: family.to_string(),
            config: config.to_string(),
            kind,
            log_slowdown,
            dispatch_cost,
            fp_cost,
        };
    vec![
        // Interpreters: 10–40x slower than AOT, heavy dispatch cost.
        mk("Wasm3", "interpreter", Interpreter, 2.5, 0.9, 0.5),
        mk("WAMR", "fast interpreter", Interpreter, 2.7, 1.0, 0.55),
        mk("WasmEdge", "interpreter", Interpreter, 3.5, 1.2, 0.7),
        // AOT compilers: near-native, LLVM slightly ahead of Cranelift.
        mk("WAMR", "LLVM AOT", Aot, 0.10, 0.02, 0.02),
        mk("Wasmtime", "Cranelift AOT", Aot, 0.26, 0.05, 0.08),
        mk("Wasmer", "Cranelift AOT", Aot, 0.28, 0.05, 0.08),
        mk("Wasmer", "LLVM AOT", Aot, 0.08, 0.02, 0.02),
        // JITs: Cranelift JIT ≈ its AOT plus warmup; singlepass trades
        // compile speed for much worse code.
        mk("Wasmtime", "Cranelift JIT", Jit, 0.32, 0.06, 0.09),
        mk("Wasmer", "Cranelift JIT", Jit, 0.34, 0.06, 0.09),
        mk("Wasmer", "Singlepass JIT", Jit, 0.85, 0.25, 0.3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_configs_five_families() {
        let runtimes = catalog();
        assert_eq!(runtimes.len(), 10, "paper: 10 runtime configurations");
        let families: std::collections::HashSet<_> =
            runtimes.iter().map(|r| r.family.as_str()).collect();
        assert_eq!(families.len(), 5, "paper: 5 runtimes");
    }

    #[test]
    fn interpreters_are_slower_than_compilers() {
        let runtimes = catalog();
        let slowest_compiled = runtimes
            .iter()
            .filter(|r| r.kind != RuntimeKind::Interpreter)
            .map(|r| r.log_slowdown)
            .fold(f32::NEG_INFINITY, f32::max);
        let fastest_interp = runtimes
            .iter()
            .filter(|r| r.kind == RuntimeKind::Interpreter)
            .map(|r| r.log_slowdown)
            .fold(f32::INFINITY, f32::min);
        assert!(fastest_interp > slowest_compiled);
    }

    #[test]
    fn interpreters_pay_dispatch() {
        for r in catalog() {
            if r.kind == RuntimeKind::Interpreter {
                assert!(r.dispatch_cost >= 0.9, "{}", r.name());
            } else {
                assert!(r.dispatch_cost <= 0.3, "{}", r.name());
            }
        }
    }
}
