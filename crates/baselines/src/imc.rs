//! Inductive matrix completion with side information (Chiang et al., 2015).
//!
//! The paper cites analytic matrix-completion-with-features methods as the
//! alternative it deliberately rejects in favour of the two-tower network
//! ("Instead of analytical solutions such as (Chiang et al., 2015), we use
//! the 'two-tower' neural network architecture … to handle nonlinearity").
//! This baseline makes that comparison concrete: a *bilinear* model
//!
//! ```text
//! log Ĉᵢⱼ = μ + xᵢᵀ·A·Bᵀ·zⱼ
//! ```
//!
//! over workload features `x` and platform features `z` (each with an
//! appended constant so main effects are representable), fit by alternating
//! exact ridge regressions. It is linear in the features, so it shows
//! exactly how much of Pitot's edge comes from nonlinearity plus the learned
//! per-entity features φ.

use crate::common::LogPredictor;
use pitot_linalg::{solve_spd, Matrix};
use pitot_testbed::{split::Split, Dataset};
use rand::{seq::SliceRandom, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Inductive-MC hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImcConfig {
    /// Bilinear rank r.
    pub rank: usize,
    /// Ridge penalty λ.
    pub lambda: f32,
    /// Alternating sweeps (each solves A then B exactly).
    pub sweeps: usize,
    /// Cap on training entries (0 = all); the normal-equation build is
    /// O(n·(F·r)²), so large datasets are subsampled.
    pub max_obs: usize,
    /// RNG seed for init and subsampling.
    pub seed: u64,
}

impl ImcConfig {
    /// Harness-scale settings.
    pub fn fast() -> Self {
        Self {
            rank: 4,
            lambda: 1.0,
            sweeps: 3,
            max_obs: 15_000,
            seed: 0,
        }
    }

    /// Unit-test settings.
    pub fn tiny() -> Self {
        Self {
            rank: 2,
            lambda: 1.0,
            sweeps: 2,
            max_obs: 5_000,
            seed: 0,
        }
    }
}

impl Default for ImcConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// A fitted inductive matrix-completion model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InductiveMc {
    /// Workload-side factor (`(Fw+1) × r`).
    a: Matrix,
    /// Platform-side factor (`(Fp+1) × r`).
    b: Matrix,
    mu: f32,
    config: ImcConfig,
}

impl InductiveMc {
    /// Fits on the interference-free portion of `split.train`.
    ///
    /// # Panics
    ///
    /// Panics if the split has no interference-free training data.
    pub fn fit(dataset: &Dataset, split: &Split, config: &ImcConfig) -> Self {
        let mut pool = split.train_mode(dataset, 0);
        assert!(
            !pool.is_empty(),
            "IMC baseline needs isolation training data"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x1AC0_FFEE);
        if config.max_obs > 0 && pool.len() > config.max_obs {
            pool.shuffle(&mut rng);
            pool.truncate(config.max_obs);
        }

        let xw = append_ones(&dataset.workload_features);
        let zp = append_ones(&dataset.platform_features);
        let mu = {
            let s: f64 = pool
                .iter()
                .map(|&i| dataset.observations[i].log_runtime() as f64)
                .sum();
            (s / pool.len() as f64) as f32
        };
        let targets: Vec<f32> = pool
            .iter()
            .map(|&i| dataset.observations[i].log_runtime() - mu)
            .collect();
        let wl: Vec<usize> = pool
            .iter()
            .map(|&i| dataset.observations[i].workload as usize)
            .collect();
        let pl: Vec<usize> = pool
            .iter()
            .map(|&i| dataset.observations[i].platform as usize)
            .collect();

        let r = config.rank;
        let mut a = Matrix::randn(xw.cols(), r, &mut rng);
        a.scale(0.05);
        let mut b = Matrix::randn(zp.cols(), r, &mut rng);
        b.scale(0.05);

        // Projected-feature buffers, reused across sweeps.
        let mut v = Matrix::zeros(0, 0);
        let mut u = Matrix::zeros(0, 0);
        for _ in 0..config.sweeps {
            // Solve A with B fixed: φ = x ⊗ (Bᵀz).
            zp.matmul_into(&b, &mut v); // Np × r
            a = ridge_solve_factor(&xw, &v, &wl, &pl, &targets, r, config.lambda).unwrap_or(a);
            // Solve B with A fixed (swap roles).
            xw.matmul_into(&a, &mut u); // Nw × r
            b = ridge_solve_factor(&zp, &u, &pl, &wl, &targets, r, config.lambda).unwrap_or(b);
        }

        Self {
            a,
            b,
            mu,
            config: config.clone(),
        }
    }

    /// Predicted log runtime for workload `w` on platform `p`.
    pub fn predict_cell(&self, dataset: &Dataset, w: usize, p: usize) -> f32 {
        let x = append_ones_row(dataset.workload_features.row(w));
        let z = append_ones_row(dataset.platform_features.row(p));
        // xᵀ·A and Bᵀ·z, then their dot product.
        let r = self.a.cols();
        let mut xa = vec![0.0f32; r];
        for (f, &xf) in x.iter().enumerate() {
            if xf != 0.0 {
                pitot_linalg::axpy_slice(xf, self.a.row(f), &mut xa);
            }
        }
        let mut bz = vec![0.0f32; r];
        for (f, &zf) in z.iter().enumerate() {
            if zf != 0.0 {
                pitot_linalg::axpy_slice(zf, self.b.row(f), &mut bz);
            }
        }
        self.mu + pitot_linalg::dot(&xa, &bz)
    }

    /// The fitted global mean.
    pub fn mu(&self) -> f32 {
        self.mu
    }

    /// The configuration used to fit.
    pub fn config(&self) -> &ImcConfig {
        &self.config
    }
}

impl LogPredictor for InductiveMc {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        vec![idx
            .iter()
            .map(|&i| {
                let o = &dataset.observations[i];
                self.predict_cell(dataset, o.workload as usize, o.platform as usize)
            })
            .collect()]
    }

    fn method_name(&self) -> &'static str {
        "inductive-mc"
    }
}

/// Solves `min_A Σ (y − xᵀA v)² + λ‖A‖²` exactly via normal equations over
/// `vec(A)`; `rows`/`cols` index into `x_feats` rows and `v` rows per entry.
///
/// Returns `None` if the (ridge-regularized) normal matrix is not positive
/// definite, which with `λ > 0` only happens on numerical blow-up.
fn ridge_solve_factor(
    x_feats: &Matrix,
    v: &Matrix,
    rows: &[usize],
    cols: &[usize],
    targets: &[f32],
    r: usize,
    lambda: f32,
) -> Option<Matrix> {
    let fdim = x_feats.cols();
    let d = fdim * r;
    let mut gram = vec![0.0f64; d * d];
    let mut rhs = vec![0.0f64; d];
    let mut phi = vec![0.0f32; d];

    for ((&row, &col), &y) in rows.iter().zip(cols).zip(targets) {
        let x = x_feats.row(row);
        let vr = v.row(col);
        // φ = x ⊗ v (feature-major blocks of length r).
        for (f, &xf) in x.iter().enumerate() {
            let block = &mut phi[f * r..(f + 1) * r];
            if xf == 0.0 {
                block.fill(0.0);
            } else {
                for (t, b) in block.iter_mut().enumerate() {
                    *b = xf * vr[t];
                }
            }
        }
        // Accumulate upper triangle of φφᵀ and φ·y.
        for i in 0..d {
            let pi = phi[i];
            if pi == 0.0 {
                continue;
            }
            rhs[i] += (pi * y) as f64;
            let gi = &mut gram[i * d..(i + 1) * d];
            for j in i..d {
                gi[j] += (pi * phi[j]) as f64;
            }
        }
    }

    // Symmetrize, regularize, solve.
    let mut g = Matrix::zeros(d, d);
    for i in 0..d {
        for j in 0..d {
            let v64 = if j >= i {
                gram[i * d + j]
            } else {
                gram[j * d + i]
            };
            g.row_mut(i)[j] = v64 as f32;
        }
        g.row_mut(i)[i] += lambda;
    }
    let rhs32: Vec<f32> = rhs.iter().map(|&v| v as f32).collect();
    let sol = solve_spd(&g, &rhs32)?;
    Some(Matrix::from_vec(fdim, r, sol))
}

fn append_ones(m: &Matrix) -> Matrix {
    let ones = Matrix::full(m.rows(), 1, 1.0);
    m.hcat(&ones)
}

fn append_ones_row(row: &[f32]) -> Vec<f32> {
    let mut v = row.to_vec();
    v.push(1.0);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MatrixFactorization;
    use crate::MfConfig;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        (ds, split)
    }

    fn isolation_test(ds: &Dataset, split: &Split, cap: usize) -> Vec<usize> {
        split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(cap)
            .collect()
    }

    #[test]
    fn fits_and_beats_the_global_mean() {
        let (ds, split) = setup();
        let imc = InductiveMc::fit(&ds, &split, &ImcConfig::tiny());
        let test = isolation_test(&ds, &split, 2000);
        let preds = &imc.predict_log(&ds, &test)[0];
        let err = |ps: &[f32]| -> f32 {
            ps.iter()
                .zip(&test)
                .map(|(p, &i)| (p - ds.observations[i].log_runtime()).abs())
                .sum::<f32>()
                / test.len() as f32
        };
        let model_err = err(preds);
        let mean_err = err(&vec![imc.mu(); test.len()]);
        assert!(
            model_err < mean_err * 0.5,
            "IMC |err| {model_err} vs mean-only {mean_err}"
        );
    }

    #[test]
    fn data_efficiency_beats_pure_mf_at_low_data() {
        // The paper's motivation for side information: at a 10% split,
        // feature-driven models generalize where free embeddings cannot.
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.1, 0);
        let imc = InductiveMc::fit(&ds, &split, &ImcConfig::tiny());
        let mf = MatrixFactorization::train(&ds, &split, &MfConfig::tiny());
        let test = isolation_test(&ds, &split, 3000);
        let imc_mape = imc.mape(&ds, &test);
        let mf_mape = mf.mape(&ds, &test);
        assert!(
            imc_mape < mf_mape,
            "IMC {imc_mape} should be more data-efficient than MF {mf_mape}"
        );
    }

    #[test]
    fn predictions_are_finite() {
        let (ds, split) = setup();
        let imc = InductiveMc::fit(&ds, &split, &ImcConfig::tiny());
        for w in (0..ds.n_workloads).step_by(7) {
            for p in (0..ds.n_platforms).step_by(23) {
                assert!(imc.predict_cell(&ds, w, p).is_finite());
            }
        }
    }

    #[test]
    fn more_sweeps_do_not_hurt_much() {
        let (ds, split) = setup();
        let one = InductiveMc::fit(
            &ds,
            &split,
            &ImcConfig {
                sweeps: 1,
                ..ImcConfig::tiny()
            },
        );
        let three = InductiveMc::fit(
            &ds,
            &split,
            &ImcConfig {
                sweeps: 3,
                ..ImcConfig::tiny()
            },
        );
        let test = isolation_test(&ds, &split, 2000);
        let m1 = one.mape(&ds, &test);
        let m3 = three.mape(&ds, &test);
        assert!(
            m3 < m1 * 1.25,
            "sweeps diverged: 1 sweep {m1}, 3 sweeps {m3}"
        );
    }

    #[test]
    fn interference_blindness() {
        let (ds, split) = setup();
        let imc = InductiveMc::fit(&ds, &split, &ImcConfig::tiny());
        let idx2 = ds.mode_indices(2);
        let o = &ds.observations[idx2[0]];
        let with = imc.predict_log(&ds, &[idx2[0]])[0][0];
        let solo = imc.predict_cell(&ds, o.workload as usize, o.platform as usize);
        assert_eq!(with, solo);
    }
}
