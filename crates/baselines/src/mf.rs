//! Pure matrix factorization baseline (paper App B.4 "Matrix Factorization").
//!
//! One free embedding per workload and per platform, prediction
//! `log Ĉ = wᵢᵀpⱼ`, squared loss on log runtime. No side information, no
//! residual objective, no interference modeling — interference observations
//! are discarded (the paper argues tensor completion does not scale, Sec 5.3
//! footnote). This is the Paragon/Quasar-style collaborative-filtering
//! approach applied to explicit runtimes.

use crate::common::{sample_batch, BaselineConfig, LogPredictor};
use pitot_linalg::Matrix;
use pitot_nn::{squared_loss, AdaMax};
use pitot_testbed::{split::Split, Dataset};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Matrix-factorization hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfConfig {
    /// Embedding rank (paper uses the same r=32 as Pitot).
    pub rank: usize,
    /// Shared training knobs.
    pub train: BaselineConfig,
}

impl MfConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            rank: 32,
            train: BaselineConfig::paper(),
        }
    }

    /// Harness-scale configuration.
    pub fn fast() -> Self {
        Self {
            rank: 16,
            train: BaselineConfig::fast(),
        }
    }

    /// Unit-test configuration.
    pub fn tiny() -> Self {
        Self {
            rank: 8,
            train: BaselineConfig::tiny(),
        }
    }
}

/// A trained matrix-factorization model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixFactorization {
    w: Matrix,
    p: Matrix,
    /// Global mean log runtime; embeddings model the residual around it,
    /// which is what makes cold random init workable in the log domain.
    intercept: f32,
}

impl MatrixFactorization {
    /// Trains on the interference-free portion of `split.train`.
    ///
    /// # Panics
    ///
    /// Panics if the split has no interference-free training data.
    pub fn train(dataset: &Dataset, split: &Split, config: &MfConfig) -> Self {
        let pool = split.train_mode(dataset, 0);
        assert!(
            !pool.is_empty(),
            "MF baseline needs isolation training data"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.train.seed.wrapping_add(0x11F));

        let intercept = {
            let s: f64 = pool
                .iter()
                .map(|&i| dataset.observations[i].log_runtime() as f64)
                .sum();
            (s / pool.len() as f64) as f32
        };

        let mut w = Matrix::randn(dataset.n_workloads, config.rank, &mut rng);
        w.scale(0.1);
        let mut p = Matrix::randn(dataset.n_platforms, config.rank, &mut rng);
        p.scale(0.1);
        let mut opt = AdaMax::new(config.train.learning_rate);

        // Validation subset for checkpointing.
        let val: Vec<usize> = split
            .val
            .iter()
            .copied()
            .filter(|&i| dataset.observations[i].interferers.is_empty())
            .take(if config.train.val_cap == 0 {
                usize::MAX
            } else {
                config.train.val_cap
            })
            .collect();

        let mut best: Option<(f32, Matrix, Matrix)> = None;
        // MF sees a single mode, so it gets the full combined batch size.
        let batch_size = config.train.batch_per_mode * 4;

        // Step buffers, allocated once and recycled every step.
        let mut dw = Matrix::zeros(w.rows(), w.cols());
        let mut dp = Matrix::zeros(p.rows(), p.cols());
        let mut preds: Vec<f32> = Vec::with_capacity(batch_size);
        let mut targets: Vec<f32> = Vec::with_capacity(batch_size);
        let mut d_pred: Vec<f32> = Vec::new();

        for step in 1..=config.train.steps {
            let batch = sample_batch(&pool, batch_size, &mut rng);
            preds.clear();
            preds.extend(batch.iter().map(|&i| {
                let o = &dataset.observations[i];
                intercept
                    + pitot_linalg::dot(w.row(o.workload as usize), p.row(o.platform as usize))
            }));
            targets.clear();
            targets.extend(batch.iter().map(|&i| dataset.observations[i].log_runtime()));
            pitot_nn::squared_loss_into(&preds, &targets, &mut d_pred);

            dw.fill(0.0);
            dp.fill(0.0);
            for (b, &i) in batch.iter().enumerate() {
                let o = &dataset.observations[i];
                let (wi, pj) = (o.workload as usize, o.platform as usize);
                let g = d_pred[b];
                // `w`/`p` are only read while `dw`/`dp` are written, so the
                // embedding rows can be borrowed directly.
                pitot_linalg::axpy_slice(g, p.row(pj), dw.row_mut(wi));
                pitot_linalg::axpy_slice(g, w.row(wi), dp.row_mut(pj));
            }
            opt.step(
                &mut [w.as_mut_slice(), p.as_mut_slice()],
                &[dw.as_slice(), dp.as_slice()],
            );

            if (step % config.train.eval_every == 0 || step == config.train.steps)
                && !val.is_empty()
            {
                let model = Self {
                    w: w.clone(),
                    p: p.clone(),
                    intercept,
                };
                let preds = model.predict_log(dataset, &val);
                let targets: Vec<f32> = val
                    .iter()
                    .map(|&i| dataset.observations[i].log_runtime())
                    .collect();
                let (loss, _) = squared_loss(&preds[0], &targets);
                if best.as_ref().is_none_or(|(b, _, _)| loss < *b) {
                    best = Some((loss, w.clone(), p.clone()));
                }
            }
        }

        match best {
            Some((_, bw, bp)) => Self {
                w: bw,
                p: bp,
                intercept,
            },
            None => Self { w, p, intercept },
        }
    }

    /// Workload embedding matrix.
    pub fn workload_embeddings(&self) -> &Matrix {
        &self.w
    }

    /// Platform embedding matrix.
    pub fn platform_embeddings(&self) -> &Matrix {
        &self.p
    }
}

impl LogPredictor for MatrixFactorization {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        let preds = idx
            .iter()
            .map(|&i| {
                let o = &dataset.observations[i];
                self.intercept
                    + pitot_linalg::dot(
                        self.w.row(o.workload as usize),
                        self.p.row(o.platform as usize),
                    )
            })
            .collect();
        vec![preds]
    }

    fn method_name(&self) -> &'static str {
        "Matrix Factorization"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    #[test]
    fn mf_learns_isolation_structure() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.7, 0);
        // Pure MF has no side information, so its embeddings must travel
        // several nats from init; give it more (cheap, embedding-only) steps
        // than the network baselines need.
        let mut cfg = MfConfig::tiny();
        cfg.train.steps = 2500;
        let model = MatrixFactorization::train(&ds, &split, &cfg);
        let iso_test: Vec<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .collect();
        let m = model.mape(&ds, &iso_test);
        // Untrained intercept-only prediction has MAPE in the hundreds of
        // percent; training must bring large improvement.
        assert!(m < 2.0, "MF isolation MAPE {m}");
    }

    #[test]
    fn mf_is_blind_to_interference() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let model = MatrixFactorization::train(&ds, &split, &MfConfig::tiny());
        let idx = ds.mode_indices(3)[0];
        let mut stripped = ds.clone();
        stripped.observations[idx].interferers.clear();
        let a = model.predict_log(&ds, &[idx])[0][0];
        let b = model.predict_log(&stripped, &[idx])[0][0];
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.5, 0);
        let mut cfg = MfConfig::tiny();
        cfg.train.steps = 50;
        let a = MatrixFactorization::train(&ds, &split, &cfg);
        let b = MatrixFactorization::train(&ds, &split, &cfg);
        assert_eq!(a.predict_log(&ds, &[0]), b.predict_log(&ds, &[0]));
    }
}
