//! Neural-network baseline (paper App B.4 "Neural Network").
//!
//! Two MLPs, each twice Pitot's width: a *base* network mapping concatenated
//! workload+platform features to an interference-blind log runtime, and an
//! *interference* network mapping (workload, interferer, platform) features
//! to a per-interferer log multiplier that is added to the base prediction
//! (multiplicative in linear space).

use crate::common::{sample_batch, BaselineConfig, LogPredictor};
use pitot_linalg::{Matrix, Scratch};
use pitot_nn::{
    squared_loss, squared_loss_into, Activation, AdaMax, GradPlane, Mlp, MlpCache, ParamStore,
    ParamStoreBuilder,
};
use pitot_testbed::{split::Split, Dataset, MAX_INTERFERERS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Neural-network baseline hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Hidden widths of both networks (paper: two layers of 256 — twice
    /// Pitot's 128).
    pub hidden: Vec<usize>,
    /// Weight of the interference objective (same β as Pitot).
    pub interference_weight: f32,
    /// Shared training knobs.
    pub train: BaselineConfig,
}

impl NnConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            hidden: vec![256, 256],
            interference_weight: 0.5,
            train: BaselineConfig::paper(),
        }
    }

    /// Harness-scale configuration (twice Pitot's fast() width).
    pub fn fast() -> Self {
        Self {
            hidden: vec![64, 64],
            interference_weight: 0.5,
            train: BaselineConfig::fast(),
        }
    }

    /// Unit-test configuration.
    pub fn tiny() -> Self {
        Self {
            hidden: vec![32],
            interference_weight: 0.5,
            train: BaselineConfig::tiny(),
        }
    }
}

/// A trained neural-network baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuralNetwork {
    /// Flat parameter plane holding both networks.
    store: ParamStore,
    base: Mlp,
    interference: Mlp,
    intercept: f32,
}

impl NeuralNetwork {
    /// Trains on `split.train` with per-mode batches.
    ///
    /// # Panics
    ///
    /// Panics if the split has no interference-free training data.
    pub fn train(dataset: &Dataset, split: &Split, config: &NnConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.train.seed.wrapping_add(0x22F));
        let wf = dataset.workload_features.cols();
        let pf = dataset.platform_features.cols();

        let mut base_widths = vec![wf + pf];
        base_widths.extend_from_slice(&config.hidden);
        base_widths.push(1);
        let mut intf_widths = vec![2 * wf + pf];
        intf_widths.extend_from_slice(&config.hidden);
        intf_widths.push(1);

        // Both networks share one flat parameter plane; their windows are
        // disjoint, so one fused optimizer step updates everything.
        let mut builder = ParamStoreBuilder::new();
        let base = Mlp::new(&base_widths, Activation::Gelu, &mut rng, &mut builder);
        let interference = Mlp::new(&intf_widths, Activation::Gelu, &mut rng, &mut builder);
        let mut store = builder.finish();
        base.scale_output_layer(store.params_mut(), 0.3);
        interference.scale_output_layer(store.params_mut(), 0.1);

        let pools: Vec<Vec<usize>> = (0..=MAX_INTERFERERS)
            .map(|k| split.train_mode(dataset, k))
            .collect();
        assert!(
            !pools[0].is_empty(),
            "NN baseline needs isolation training data"
        );
        let intercept = {
            let s: f64 = pools[0]
                .iter()
                .map(|&i| dataset.observations[i].log_runtime() as f64)
                .sum();
            (s / pools[0].len() as f64) as f32
        };

        let mut weights = [0.0f32; MAX_INTERFERERS + 1];
        weights[0] = 1.0;
        for w in weights.iter_mut().skip(1) {
            *w = config.interference_weight / MAX_INTERFERERS as f32;
        }

        let val: Vec<usize> = split
            .val
            .iter()
            .copied()
            .take(if config.train.val_cap == 0 {
                usize::MAX
            } else {
                config.train.val_cap * 2
            })
            .collect();

        let mut opt = AdaMax::new(config.train.learning_rate);
        let mut best: Option<(f32, ParamStore)> = None;

        // Step buffers, allocated once and recycled every step.
        let mut base_in = Matrix::zeros(0, 0);
        let mut intf_in = Matrix::zeros(0, 0);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut base_cache = MlpCache::new();
        let mut intf_cache = MlpCache::new();
        let mut g_acc = GradPlane::zeros_like(&store);
        let mut g_tmp = GradPlane::zeros_like(&store);
        let mut scratch = Scratch::new();
        let mut dx = Matrix::zeros(0, 0);
        let mut d_base = Matrix::zeros(0, 0);
        let mut d_intf = Matrix::zeros(0, 0);
        let mut preds: Vec<f32> = Vec::new();
        let mut targets: Vec<f32> = Vec::new();
        let mut d_pred: Vec<f32> = Vec::new();

        for step in 1..=config.train.steps {
            g_acc.clear();

            for (k, pool) in pools.iter().enumerate() {
                if pool.is_empty() {
                    continue;
                }
                let batch = sample_batch(pool, config.train.batch_per_mode, &mut rng);
                Self::batch_inputs_into(dataset, &batch, &mut base_in, &mut intf_in, &mut spans);
                base.forward_with(store.params(), &base_in, &mut base_cache);
                let with_intf = k > 0;
                if with_intf {
                    interference.forward_with(store.params(), &intf_in, &mut intf_cache);
                    Self::combine_into(
                        intercept,
                        base_cache.output(),
                        intf_cache.output(),
                        &spans,
                        &mut preds,
                    );
                } else {
                    preds.clear();
                    preds.extend(base_cache.output().as_slice().iter().map(|b| intercept + b));
                }
                targets.clear();
                targets.extend(batch.iter().map(|&i| dataset.observations[i].log_runtime()));
                squared_loss_into(&preds, &targets, &mut d_pred);
                for g in &mut d_pred {
                    *g *= weights[k];
                }

                // Base network gradient: one output row per observation.
                d_base.resize(batch.len(), 1);
                d_base.as_mut_slice().copy_from_slice(&d_pred);
                base.backward_with(
                    store.params(),
                    &base_cache,
                    &d_base,
                    &mut dx,
                    g_tmp.as_mut_slice(),
                    &mut scratch,
                );
                g_acc.accumulate_range(base.range(), &g_tmp, 1.0);
                // Interference network gradient: the multiplier of every
                // interferer of observation b receives d_pred[b].
                if with_intf {
                    d_intf.resize(intf_cache.output().rows(), 1);
                    d_intf.fill(0.0);
                    for (b, span) in spans.iter().enumerate() {
                        for r in span.0..span.1 {
                            d_intf[(r, 0)] = d_pred[b];
                        }
                    }
                    interference.backward_with(
                        store.params(),
                        &intf_cache,
                        &d_intf,
                        &mut dx,
                        g_tmp.as_mut_slice(),
                        &mut scratch,
                    );
                    g_acc.accumulate_range(interference.range(), &g_tmp, 1.0);
                }
            }

            // One fused optimizer step over the whole plane (a network that
            // saw no data this step keeps its zeroed gradient window).
            opt.step(&mut [store.params_mut()], &[g_acc.as_slice()]);

            if (step % config.train.eval_every == 0 || step == config.train.steps)
                && !val.is_empty()
            {
                let model = Self {
                    store: store.clone(),
                    base: base.clone(),
                    interference: interference.clone(),
                    intercept,
                };
                let preds = model.predict_log(dataset, &val);
                let targets: Vec<f32> = val
                    .iter()
                    .map(|&i| dataset.observations[i].log_runtime())
                    .collect();
                let (loss, _) = squared_loss(&preds[0], &targets);
                if best.as_ref().is_none_or(|(b, _)| loss < *b) {
                    best = Some((loss, model.store));
                }
            }
        }

        let store = match best {
            Some((_, s)) => s,
            None => store,
        };
        Self {
            store,
            base,
            interference,
            intercept,
        }
    }

    /// Builds base inputs (`B × (wf+pf)`), interference inputs (one row per
    /// interferer), and per-observation row spans into the latter.
    fn batch_inputs(dataset: &Dataset, batch: &[usize]) -> (Matrix, Matrix, Vec<(usize, usize)>) {
        let mut base_in = Matrix::zeros(0, 0);
        let mut intf_in = Matrix::zeros(0, 0);
        let mut spans = Vec::new();
        Self::batch_inputs_into(dataset, batch, &mut base_in, &mut intf_in, &mut spans);
        (base_in, intf_in, spans)
    }

    /// [`NeuralNetwork::batch_inputs`] into reusable buffers.
    fn batch_inputs_into(
        dataset: &Dataset,
        batch: &[usize],
        base_in: &mut Matrix,
        intf_in: &mut Matrix,
        spans: &mut Vec<(usize, usize)>,
    ) {
        let wf = dataset.workload_features.cols();
        let pf = dataset.platform_features.cols();
        base_in.resize(batch.len(), wf + pf);
        let total_intf: usize = batch
            .iter()
            .map(|&i| dataset.observations[i].interferers.len())
            .sum();
        intf_in.resize(total_intf.max(1), 2 * wf + pf);
        intf_in.fill(0.0);
        spans.clear();
        let mut row = 0;
        for (b, &oi) in batch.iter().enumerate() {
            let o = &dataset.observations[oi];
            let xw = dataset.workload_features.row(o.workload as usize);
            let xp = dataset.platform_features.row(o.platform as usize);
            base_in.row_mut(b)[..wf].copy_from_slice(xw);
            base_in.row_mut(b)[wf..].copy_from_slice(xp);
            let start = row;
            for &k in &o.interferers {
                let xk = dataset.workload_features.row(k as usize);
                let r = intf_in.row_mut(row);
                r[..wf].copy_from_slice(xw);
                r[wf..2 * wf].copy_from_slice(xk);
                r[2 * wf..].copy_from_slice(xp);
                row += 1;
            }
            spans.push((start, row));
        }
    }

    fn combine(
        intercept: f32,
        base_out: &Matrix,
        intf_out: &Matrix,
        spans: &[(usize, usize)],
    ) -> Vec<f32> {
        let mut out = Vec::new();
        Self::combine_into(intercept, base_out, intf_out, spans, &mut out);
        out
    }

    fn combine_into(
        intercept: f32,
        base_out: &Matrix,
        intf_out: &Matrix,
        spans: &[(usize, usize)],
        out: &mut Vec<f32>,
    ) {
        out.clear();
        out.extend(spans.iter().enumerate().map(|(b, &(lo, hi))| {
            let mut pred = intercept + base_out[(b, 0)];
            for r in lo..hi {
                pred += intf_out[(r, 0)];
            }
            pred
        }));
    }
}

impl LogPredictor for NeuralNetwork {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        let (base_in, intf_in, spans) = Self::batch_inputs(dataset, idx);
        let base_out = self.base.infer(self.store.params(), &base_in);
        let has_intf = spans.iter().any(|&(lo, hi)| hi > lo);
        let preds = if has_intf {
            let intf_out = self.interference.infer(self.store.params(), &intf_in);
            Self::combine(self.intercept, &base_out, &intf_out, &spans)
        } else {
            base_out
                .as_slice()
                .iter()
                .map(|b| self.intercept + b)
                .collect()
        };
        vec![preds]
    }

    fn method_name(&self) -> &'static str {
        "Neural Network"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        (ds, split)
    }

    #[test]
    fn nn_beats_intercept_only() {
        let (ds, split) = setup();
        let model = NeuralNetwork::train(&ds, &split, &NnConfig::tiny());
        let m = model.mape(&ds, &split.test[..2000.min(split.test.len())]);
        assert!(m < 3.0, "NN MAPE {m}");
    }

    #[test]
    fn interference_net_reacts_to_interferers() {
        let (ds, split) = setup();
        let model = NeuralNetwork::train(&ds, &split, &NnConfig::tiny());
        let idx = ds.mode_indices(3)[0];
        let mut stripped = ds.clone();
        stripped.observations[idx].interferers.clear();
        let a = model.predict_log(&ds, &[idx])[0][0];
        let b = model.predict_log(&stripped, &[idx])[0][0];
        assert_ne!(a, b, "interference net contributed nothing");
    }

    #[test]
    fn batch_inputs_layout() {
        let (ds, _) = setup();
        let idx = vec![ds.mode_indices(2)[0], ds.mode_indices(0)[0]];
        let (base_in, intf_in, spans) = NeuralNetwork::batch_inputs(&ds, &idx);
        assert_eq!(base_in.rows(), 2);
        assert_eq!(spans[0], (0, 2)); // 2 interferers for the first obs
        assert_eq!(spans[1], (2, 2)); // none for the isolation obs
        assert_eq!(intf_in.rows(), 2);
    }
}
