//! CP tensor-completion baseline for interference.
//!
//! The paper's footnote 6 argues against casting interference prediction as
//! (workload, platform, interferer) *tensor* completion: "the size increases
//! exponentially with each additional interfering workload, quickly leading
//! to unworkable sparsity". This baseline implements the strongest fair
//! version of that idea so the claim can be measured rather than assumed:
//!
//! ```text
//! log Ĉ_ijK = b + wᵢᵀpⱼ + Σ_{k∈K} Σ_t aᵢₜ·cₖₜ·dⱼₜ
//! ```
//!
//! a rank-`r1` matrix factorization for the base runtime plus a rank-`r2`
//! CP (CANDECOMP/PARAFAC) decomposition of the pairwise-interference slice,
//! with >2-way sets handled additively (the natural CP extension). Unlike
//! Pitot there is no side information, no residual anchor, and no
//! interference activation — each factor is a free embedding that must be
//! pinned down by observations alone.

use crate::common::{sample_batch, BaselineConfig, LogPredictor};
use pitot_linalg::Matrix;
use pitot_nn::{squared_loss, AdaMax};
use pitot_testbed::{split::Split, Dataset, MAX_INTERFERERS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tensor-completion hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorConfig {
    /// Base matrix-factorization rank r₁.
    pub base_rank: usize,
    /// CP interference rank r₂.
    pub cp_rank: usize,
    /// Shared training knobs.
    pub train: BaselineConfig,
}

impl TensorConfig {
    /// Paper-comparison configuration.
    pub fn paper() -> Self {
        Self {
            base_rank: 32,
            cp_rank: 8,
            train: BaselineConfig::paper(),
        }
    }

    /// Harness-scale configuration.
    pub fn fast() -> Self {
        Self {
            base_rank: 16,
            cp_rank: 4,
            train: BaselineConfig::fast(),
        }
    }

    /// Unit-test configuration.
    pub fn tiny() -> Self {
        Self {
            base_rank: 8,
            cp_rank: 2,
            train: BaselineConfig::tiny(),
        }
    }
}

/// A trained CP tensor-completion model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TensorCompletion {
    w: Matrix,
    p: Matrix,
    /// Susceptibility factors `a` (`Nw × r₂`).
    a: Matrix,
    /// Aggressor factors `c` (`Nw × r₂`).
    c: Matrix,
    /// Platform channel factors `d` (`Np × r₂`).
    d: Matrix,
    intercept: f32,
    config: TensorConfig,
}

impl TensorCompletion {
    /// Trains on all interference modes of `split.train`.
    ///
    /// # Panics
    ///
    /// Panics if the split has no interference-free training data.
    pub fn train(dataset: &Dataset, split: &Split, config: &TensorConfig) -> Self {
        let mode_pools: Vec<Vec<usize>> = (0..=MAX_INTERFERERS)
            .map(|k| split.train_mode(dataset, k))
            .collect();
        assert!(
            !mode_pools[0].is_empty(),
            "tensor baseline needs isolation data"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(config.train.seed.wrapping_add(0x7E_50));

        let intercept = {
            let pool = &mode_pools[0];
            let s: f64 = pool
                .iter()
                .map(|&i| dataset.observations[i].log_runtime() as f64)
                .sum();
            (s / pool.len() as f64) as f32
        };

        let scale_init = |m: &mut Matrix, s: f32| m.scale(s);
        let mut model = Self {
            w: Matrix::randn(dataset.n_workloads, config.base_rank, &mut rng),
            p: Matrix::randn(dataset.n_platforms, config.base_rank, &mut rng),
            a: Matrix::randn(dataset.n_workloads, config.cp_rank, &mut rng),
            c: Matrix::randn(dataset.n_workloads, config.cp_rank, &mut rng),
            d: Matrix::randn(dataset.n_platforms, config.cp_rank, &mut rng),
            intercept,
            config: config.clone(),
        };
        scale_init(&mut model.w, 0.1);
        scale_init(&mut model.p, 0.1);
        scale_init(&mut model.a, 0.05);
        scale_init(&mut model.c, 0.05);
        scale_init(&mut model.d, 0.05);

        let mut opt = AdaMax::new(config.train.learning_rate);
        let bpm = config.train.batch_per_mode;

        for _ in 0..config.train.steps {
            let mut gw = Matrix::zeros(model.w.rows(), model.w.cols());
            let mut gp = Matrix::zeros(model.p.rows(), model.p.cols());
            let mut ga = Matrix::zeros(model.a.rows(), model.a.cols());
            let mut gc = Matrix::zeros(model.c.rows(), model.c.cols());
            let mut gd = Matrix::zeros(model.d.rows(), model.d.cols());
            let mut gb = 0.0f32;

            for pool in mode_pools.iter().filter(|p| !p.is_empty()) {
                let batch = sample_batch(pool, bpm, &mut rng);
                let preds: Vec<f32> = batch
                    .iter()
                    .map(|&i| model.predict_obs(dataset, i))
                    .collect();
                let targets: Vec<f32> = batch
                    .iter()
                    .map(|&i| dataset.observations[i].log_runtime())
                    .collect();
                let (_, grad) = squared_loss(&preds, &targets);
                for (&oi, g0) in batch.iter().zip(grad) {
                    let g = g0 / bpm as f32;
                    model.accumulate(dataset, oi, g, &mut gw, &mut gp, &mut ga, &mut gc, &mut gd);
                    gb += g;
                }
            }

            let mut b = model.intercept;
            opt.step(
                &mut [
                    model.w.as_mut_slice(),
                    model.p.as_mut_slice(),
                    model.a.as_mut_slice(),
                    model.c.as_mut_slice(),
                    model.d.as_mut_slice(),
                    std::slice::from_mut(&mut b),
                ],
                &[
                    gw.as_slice(),
                    gp.as_slice(),
                    ga.as_slice(),
                    gc.as_slice(),
                    gd.as_slice(),
                    &[gb],
                ],
            );
            model.intercept = b;
        }
        model
    }

    /// Prediction for one dataset observation.
    fn predict_obs(&self, dataset: &Dataset, oi: usize) -> f32 {
        let o = &dataset.observations[oi];
        let i = o.workload as usize;
        let j = o.platform as usize;
        let mut pred = self.intercept + pitot_linalg::dot(self.w.row(i), self.p.row(j));
        for &k in &o.interferers {
            let (ai, ck, dj) = (self.a.row(i), self.c.row(k as usize), self.d.row(j));
            for t in 0..self.config.cp_rank {
                pred += ai[t] * ck[t] * dj[t];
            }
        }
        pred
    }

    /// Accumulates `∂L/∂θ` for one observation with output gradient `g`.
    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        &self,
        dataset: &Dataset,
        oi: usize,
        g: f32,
        gw: &mut Matrix,
        gp: &mut Matrix,
        ga: &mut Matrix,
        gc: &mut Matrix,
        gd: &mut Matrix,
    ) {
        let o = &dataset.observations[oi];
        let i = o.workload as usize;
        let j = o.platform as usize;
        let (wi, pj) = (self.w.row(i).to_vec(), self.p.row(j).to_vec());
        pitot_linalg::axpy_slice(g, &pj, gw.row_mut(i));
        pitot_linalg::axpy_slice(g, &wi, gp.row_mut(j));
        for &k in &o.interferers {
            let k = k as usize;
            let ai = self.a.row(i).to_vec();
            let ck = self.c.row(k).to_vec();
            let dj = self.d.row(j).to_vec();
            for t in 0..self.config.cp_rank {
                ga.row_mut(i)[t] += g * ck[t] * dj[t];
                gc.row_mut(k)[t] += g * ai[t] * dj[t];
                gd.row_mut(j)[t] += g * ai[t] * ck[t];
            }
        }
    }

    /// The configuration used to train.
    pub fn config(&self) -> &TensorConfig {
        &self.config
    }
}

impl LogPredictor for TensorCompletion {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        vec![idx.iter().map(|&i| self.predict_obs(dataset, i)).collect()]
    }

    fn method_name(&self) -> &'static str {
        "tensor-cp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        (ds, split)
    }

    #[test]
    fn training_reduces_log_error_over_intercept() {
        // Free-embedding models converge slowly (the paper's MF baseline
        // exceeds 75% MAPE in Fig 6a); assert learning, not accuracy.
        let (ds, split) = setup();
        let mut cfg = TensorConfig::tiny();
        // AdaMax steps are bounded by the learning rate, so a 600-step test
        // budget needs a proportionally higher rate to traverse the ±5-nat
        // log-runtime spread that 20k paper-scale steps cover at 1e-3.
        cfg.train.steps = 600;
        cfg.train.learning_rate = 0.02;
        let model = TensorCompletion::train(&ds, &split, &cfg);
        let test: Vec<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(2000)
            .collect();
        let preds = &model.predict_log(&ds, &test)[0];
        let err = |ps: &[f32]| -> f32 {
            ps.iter()
                .zip(&test)
                .map(|(p, &i)| (p - ds.observations[i].log_runtime()).abs())
                .sum::<f32>()
                / test.len() as f32
        };
        let model_err = err(preds);
        let intercept_err = err(&vec![model.intercept; test.len()]);
        assert!(
            model_err < intercept_err * 0.7,
            "tensor log|err| {model_err} vs intercept-only {intercept_err}"
        );
    }

    #[test]
    fn interference_term_reacts_to_interferers() {
        let (ds, split) = setup();
        let model = TensorCompletion::train(&ds, &split, &TensorConfig::tiny());
        let idx = ds.mode_indices(3)[0];
        let with = model.predict_log(&ds, &[idx])[0][0];
        let mut stripped = ds.clone();
        stripped.observations[idx].interferers.clear();
        let without = model.predict_log(&stripped, &[idx])[0][0];
        assert_ne!(
            with, without,
            "CP term should contribute under interference"
        );
    }

    #[test]
    fn additive_in_interferers() {
        // CP contribution of {k1, k2} equals contribution(k1) + contribution(k2).
        let (ds, split) = setup();
        let model = TensorCompletion::train(&ds, &split, &TensorConfig::tiny());
        let idx = ds.mode_indices(2)[0];
        let base = {
            let mut d0 = ds.clone();
            d0.observations[idx].interferers.clear();
            model.predict_log(&d0, &[idx])[0][0]
        };
        let both = model.predict_log(&ds, &[idx])[0][0];
        let singles: f32 = ds.observations[idx]
            .interferers
            .iter()
            .map(|&k| {
                let mut d1 = ds.clone();
                d1.observations[idx].interferers = vec![k];
                model.predict_log(&d1, &[idx])[0][0] - base
            })
            .sum();
        assert!(
            (both - base - singles).abs() < 1e-4,
            "CP must be additive: joint {} vs sum {}",
            both - base,
            singles
        );
    }

    #[test]
    fn determinism_in_seed() {
        let (ds, split) = setup();
        let cfg = TensorConfig {
            train: BaselineConfig {
                steps: 60,
                ..BaselineConfig::tiny()
            },
            ..TensorConfig::tiny()
        };
        let a = TensorCompletion::train(&ds, &split, &cfg);
        let b = TensorCompletion::train(&ds, &split, &cfg);
        let idx: Vec<usize> = (0..20).collect();
        assert_eq!(a.predict_log(&ds, &idx), b.predict_log(&ds, &idx));
    }
}
