//! k-nearest-neighbour collaborative filtering baseline.
//!
//! The classic pre-factorization recommender: to predict workload `i` on
//! platform `j`, find the workloads most similar to `i` (Pearson correlation
//! of log runtimes over platforms both have been observed on), and combine
//! their observed log runtimes on `j`, re-centered by each workload's mean.
//! Interference-blind, training-free, and a useful probe of how much of the
//! problem is "just" collaborative structure before any learning happens.

use crate::common::LogPredictor;
use pitot_testbed::{split::Split, Dataset};
use serde::{Deserialize, Serialize};

/// k-NN collaborative-filtering hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Neighbours consulted per prediction.
    pub k: usize,
    /// Minimum number of co-observed platforms before a similarity counts.
    pub min_overlap: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 10,
            min_overlap: 5,
        }
    }
}

/// A fitted k-NN collaborative filter over the isolation observations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnCollaborative {
    config: KnnConfig,
    /// Mean observed log runtime per (workload, platform) cell; NaN = unseen.
    cells: Vec<f32>,
    n_platforms: usize,
    /// Per-workload mean log runtime over its observed cells.
    workload_mean: Vec<f32>,
    /// Per-platform mean deviation from workload means (for cold cells).
    platform_effect: Vec<f32>,
    /// `sims[i]` holds the up-to-k most similar workloads to `i`.
    sims: Vec<Vec<(u32, f32)>>,
    global_mean: f32,
}

impl KnnCollaborative {
    /// Fits on the interference-free portion of `split.train`.
    ///
    /// # Panics
    ///
    /// Panics if the split has no interference-free training data.
    pub fn fit(dataset: &Dataset, split: &Split, config: &KnnConfig) -> Self {
        let pool = split.train_mode(dataset, 0);
        assert!(
            !pool.is_empty(),
            "kNN baseline needs isolation training data"
        );
        let (nw, np) = (dataset.n_workloads, dataset.n_platforms);

        // Average duplicate measurements per cell.
        let mut sum = vec![0.0f64; nw * np];
        let mut cnt = vec![0u32; nw * np];
        for &oi in &pool {
            let o = &dataset.observations[oi];
            let c = o.workload as usize * np + o.platform as usize;
            sum[c] += o.log_runtime() as f64;
            cnt[c] += 1;
        }
        let cells: Vec<f32> = sum
            .iter()
            .zip(&cnt)
            .map(|(s, &c)| {
                if c > 0 {
                    (s / c as f64) as f32
                } else {
                    f32::NAN
                }
            })
            .collect();

        let global_mean = {
            let total: f64 = pool
                .iter()
                .map(|&i| dataset.observations[i].log_runtime() as f64)
                .sum();
            (total / pool.len() as f64) as f32
        };

        let workload_mean: Vec<f32> = (0..nw)
            .map(|w| {
                let row = &cells[w * np..(w + 1) * np];
                let seen: Vec<f32> = row.iter().copied().filter(|v| !v.is_nan()).collect();
                if seen.is_empty() {
                    global_mean
                } else {
                    seen.iter().sum::<f32>() / seen.len() as f32
                }
            })
            .collect();

        let platform_effect: Vec<f32> = (0..np)
            .map(|p| {
                let mut dev = 0.0f64;
                let mut n = 0usize;
                for w in 0..nw {
                    let v = cells[w * np + p];
                    if !v.is_nan() {
                        dev += (v - workload_mean[w]) as f64;
                        n += 1;
                    }
                }
                if n == 0 {
                    0.0
                } else {
                    (dev / n as f64) as f32
                }
            })
            .collect();

        let sims = Self::similarities(&cells, &workload_mean, nw, np, config);

        Self {
            config: config.clone(),
            cells,
            n_platforms: np,
            workload_mean,
            platform_effect,
            sims,
            global_mean,
        }
    }

    /// Pearson similarity over co-observed platforms, top-k per workload.
    fn similarities(
        cells: &[f32],
        workload_mean: &[f32],
        nw: usize,
        np: usize,
        config: &KnnConfig,
    ) -> Vec<Vec<(u32, f32)>> {
        let mut sims: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nw];
        for a in 0..nw {
            let mut cands: Vec<(u32, f32)> = Vec::new();
            for b in 0..nw {
                if a == b {
                    continue;
                }
                let mut sxy = 0.0f64;
                let mut sxx = 0.0f64;
                let mut syy = 0.0f64;
                let mut n = 0usize;
                for p in 0..np {
                    let va = cells[a * np + p];
                    let vb = cells[b * np + p];
                    if va.is_nan() || vb.is_nan() {
                        continue;
                    }
                    let da = (va - workload_mean[a]) as f64;
                    let db = (vb - workload_mean[b]) as f64;
                    sxy += da * db;
                    sxx += da * da;
                    syy += db * db;
                    n += 1;
                }
                if n >= config.min_overlap && sxx > 0.0 && syy > 0.0 {
                    let r = (sxy / (sxx.sqrt() * syy.sqrt())) as f32;
                    if r > 0.0 {
                        cands.push((b as u32, r));
                    }
                }
            }
            cands.sort_by(|x, y| y.1.total_cmp(&x.1));
            cands.truncate(config.k);
            sims[a] = cands;
        }
        sims
    }

    /// Predicts the log runtime of workload `w` on platform `p`.
    pub fn predict_cell(&self, w: usize, p: usize) -> f32 {
        // Direct observation wins.
        let own = self.cells[w * self.n_platforms + p];
        if !own.is_nan() {
            return own;
        }
        // Neighbour-weighted deviation on platform p.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &(b, sim) in &self.sims[w] {
            let v = self.cells[b as usize * self.n_platforms + p];
            if v.is_nan() {
                continue;
            }
            num += (sim * (v - self.workload_mean[b as usize])) as f64;
            den += sim.abs() as f64;
        }
        if den > 0.0 {
            self.workload_mean[w] + (num / den) as f32
        } else {
            // Cold fallback: workload mean + platform main effect.
            self.workload_mean[w] + self.platform_effect[p]
        }
    }

    /// The configuration used to fit.
    pub fn config(&self) -> &KnnConfig {
        &self.config
    }

    /// Global mean log runtime of the training data.
    pub fn global_mean(&self) -> f32 {
        self.global_mean
    }
}

impl LogPredictor for KnnCollaborative {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        vec![idx
            .iter()
            .map(|&i| {
                let o = &dataset.observations[i];
                self.predict_cell(o.workload as usize, o.platform as usize)
            })
            .collect()]
    }

    fn method_name(&self) -> &'static str {
        "knn-cf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        (ds, split)
    }

    #[test]
    fn beats_global_mean_on_isolation_data() {
        let (ds, split) = setup();
        let knn = KnnCollaborative::fit(&ds, &split, &KnnConfig::default());
        let test: Vec<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(2000)
            .collect();
        let preds = &knn.predict_log(&ds, &test)[0];
        let mean_err: f32 = preds
            .iter()
            .zip(&test)
            .map(|(p, &i)| (p - ds.observations[i].log_runtime()).abs())
            .sum::<f32>()
            / test.len() as f32;
        let global_err: f32 = test
            .iter()
            .map(|&i| (knn.global_mean() - ds.observations[i].log_runtime()).abs())
            .sum::<f32>()
            / test.len() as f32;
        assert!(
            mean_err < global_err * 0.5,
            "kNN |err| {mean_err} vs global {global_err}"
        );
    }

    #[test]
    fn observed_cells_are_memorized() {
        let (ds, split) = setup();
        let knn = KnnCollaborative::fit(&ds, &split, &KnnConfig::default());
        // A training observation's cell must predict (near) its own value.
        let oi = split.train_mode(&ds, 0)[0];
        let o = &ds.observations[oi];
        let pred = knn.predict_cell(o.workload as usize, o.platform as usize);
        // Cells average duplicates, so allow noise-level slack.
        assert!(
            (pred - o.log_runtime()).abs() < 0.5,
            "pred {pred} vs {}",
            o.log_runtime()
        );
    }

    #[test]
    fn neighbours_are_sorted_and_capped() {
        let (ds, split) = setup();
        let cfg = KnnConfig {
            k: 3,
            min_overlap: 5,
        };
        let knn = KnnCollaborative::fit(&ds, &split, &cfg);
        for s in &knn.sims {
            assert!(s.len() <= 3);
            for w in s.windows(2) {
                assert!(w[0].1 >= w[1].1, "similarities not sorted");
            }
        }
    }

    #[test]
    fn predictions_are_finite_everywhere() {
        let (ds, split) = setup();
        let knn = KnnCollaborative::fit(&ds, &split, &KnnConfig::default());
        for w in 0..ds.n_workloads {
            for p in (0..ds.n_platforms).step_by(17) {
                assert!(knn.predict_cell(w, p).is_finite(), "cell ({w},{p})");
            }
        }
    }

    #[test]
    fn interference_blindness() {
        let (ds, split) = setup();
        let knn = KnnCollaborative::fit(&ds, &split, &KnnConfig::default());
        let idx2 = ds.mode_indices(2);
        let o = &ds.observations[idx2[0]];
        let with = knn.predict_log(&ds, &[idx2[0]])[0][0];
        let solo = knn.predict_cell(o.workload as usize, o.platform as usize);
        assert_eq!(with, solo);
    }
}
