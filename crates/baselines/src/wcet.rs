//! Worst-case-execution-time-style bound baseline.
//!
//! The paper's related work (Sec 2) contrasts Pitot with classic WCET
//! analysis: pessimistic bounds derived from worst observed (or statically
//! bounded) behavior. This baseline emulates the *measurement-based* WCET
//! practice — per-workload worst observed runtime times a safety factor —
//! and exists to quantify how loose such bounds are next to conformal ones
//! (they carry no coverage guarantee for unseen platforms, and their margins
//! dwarf CQR's on heterogeneous clusters).

use crate::common::LogPredictor;
use pitot_testbed::{split::Split, Dataset};
use serde::{Deserialize, Serialize};

/// Measurement-based WCET bound: per-(workload, platform) worst observed
/// runtime, falling back to per-workload, then global, worst cases; a
/// multiplicative safety factor is applied on top.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WcetBaseline {
    /// max log runtime per (workload, platform), `w * n_platforms + p`.
    pair_max: Vec<f32>,
    /// max log runtime per workload.
    workload_max: Vec<f32>,
    global_max: f32,
    log_safety: f32,
    n_platforms: usize,
}

impl WcetBaseline {
    /// Builds the bound table from training observations.
    ///
    /// `safety_factor` is the classic engineering margin (e.g. 1.2 = 20%).
    ///
    /// # Panics
    ///
    /// Panics if `train_idx` is empty or the factor is not ≥ 1.
    pub fn fit(dataset: &Dataset, train_idx: &[usize], safety_factor: f32) -> Self {
        assert!(!train_idx.is_empty(), "WCET needs at least one observation");
        assert!(safety_factor >= 1.0, "safety factor must be ≥ 1");
        let n_w = dataset.n_workloads;
        let n_p = dataset.n_platforms;
        let mut pair_max = vec![f32::NEG_INFINITY; n_w * n_p];
        let mut workload_max = vec![f32::NEG_INFINITY; n_w];
        let mut global_max = f32::NEG_INFINITY;
        for &i in train_idx {
            let o = &dataset.observations[i];
            let l = o.log_runtime();
            let slot = o.workload as usize * n_p + o.platform as usize;
            pair_max[slot] = pair_max[slot].max(l);
            workload_max[o.workload as usize] = workload_max[o.workload as usize].max(l);
            global_max = global_max.max(l);
        }
        Self {
            pair_max,
            workload_max,
            global_max,
            log_safety: safety_factor.ln(),
            n_platforms: n_p,
        }
    }

    /// Convenience: fit on a split's training portion.
    pub fn from_split(dataset: &Dataset, split: &Split, safety_factor: f32) -> Self {
        Self::fit(dataset, &split.train, safety_factor)
    }

    /// The bound (log seconds) for a (workload, platform) pair.
    pub fn bound_log(&self, workload: usize, platform: usize) -> f32 {
        let pair = self.pair_max[workload * self.n_platforms + platform];
        let base = if pair.is_finite() {
            pair
        } else if self.workload_max[workload].is_finite() {
            self.workload_max[workload]
        } else {
            self.global_max
        };
        base + self.log_safety
    }
}

impl LogPredictor for WcetBaseline {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        let preds = idx
            .iter()
            .map(|&i| {
                let o = &dataset.observations[i];
                self.bound_log(o.workload as usize, o.platform as usize)
            })
            .collect();
        vec![preds]
    }

    fn method_name(&self) -> &'static str {
        "WCET (measured + safety factor)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_conformal::{coverage, overprovision_margin};
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.7, 0);
        (ds, split)
    }

    #[test]
    fn bounds_cover_most_but_overprovision_heavily() {
        let (ds, split) = setup();
        let wcet = WcetBaseline::from_split(&ds, &split, 1.2);
        let test: Vec<usize> = split
            .test
            .iter()
            .copied()
            .filter(|&i| ds.observations[i].interferers.is_empty())
            .take(4000)
            .collect();
        let bounds = wcet.predict_log(&ds, &test)[0].clone();
        let targets: Vec<f32> = test
            .iter()
            .map(|&i| ds.observations[i].log_runtime())
            .collect();
        let cov = coverage(&bounds, &targets);
        assert!(cov > 0.9, "WCET coverage {cov}");
        // The price: the margin is far above what adaptive bounds pay
        // (Pitot's Fig 5 margins are ~10–25% at ε=0.02–0.1).
        let margin = overprovision_margin(&bounds, &targets);
        assert!(margin > 0.2, "WCET margin suspiciously tight: {margin}");
    }

    #[test]
    fn fallback_chain_for_unseen_pairs() {
        let (ds, _) = setup();
        // Fit on one observation only: everything else exercises fallbacks.
        let wcet = WcetBaseline::fit(&ds, &[0], 1.0);
        let o = &ds.observations[0];
        let seen = wcet.bound_log(o.workload as usize, o.platform as usize);
        assert!((seen - o.log_runtime()).abs() < 1e-6);
        let other_w = (o.workload as usize + 1) % ds.n_workloads;
        // Unseen workload falls back to the global maximum.
        assert_eq!(wcet.bound_log(other_w, 0), o.log_runtime());
    }

    #[test]
    fn safety_factor_shifts_bounds() {
        let (ds, split) = setup();
        let tight = WcetBaseline::from_split(&ds, &split, 1.0);
        let loose = WcetBaseline::from_split(&ds, &split, 2.0);
        let b_tight = tight.bound_log(0, 0);
        let b_loose = loose.bound_log(0, 0);
        assert!((b_loose - b_tight - 2.0f32.ln()).abs() < 1e-6);
    }
}
