//! Attention baseline (paper App B.4 "Attention").
//!
//! Replaces the neural-network baseline's per-interferer multiplier with a
//! single-head attention mechanism: the base network also emits a *query*
//! vector; an encoder network maps each interferer to a *key* and *value*;
//! softmax attention pools the values; and a small output network turns the
//! pooled context into one interference multiplier.

use crate::common::{sample_batch, BaselineConfig, LogPredictor};
use pitot_linalg::{dot, Matrix, Scratch};
use pitot_nn::{
    squared_loss, squared_loss_into, Activation, AdaMax, GradPlane, Mlp, MlpCache,
    ParamStoreBuilder,
};
use pitot_testbed::{split::Split, Dataset, MAX_INTERFERERS};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Attention baseline hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionConfig {
    /// Hidden widths of the base and encoder networks.
    pub hidden: Vec<usize>,
    /// Key/query/value dimension (paper tuned to 8).
    pub head_dim: usize,
    /// Output network hidden width (paper tuned to 32).
    pub output_hidden: usize,
    /// Interference objective weight.
    pub interference_weight: f32,
    /// Shared training knobs.
    pub train: BaselineConfig,
}

impl AttentionConfig {
    /// Paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            hidden: vec![256, 256],
            head_dim: 8,
            output_hidden: 32,
            interference_weight: 0.5,
            train: BaselineConfig::paper(),
        }
    }

    /// Harness-scale configuration.
    pub fn fast() -> Self {
        Self {
            hidden: vec![64, 64],
            ..Self::paper().with_train(BaselineConfig::fast())
        }
    }

    /// Unit-test configuration.
    pub fn tiny() -> Self {
        Self {
            hidden: vec![32],
            output_hidden: 16,
            ..Self::paper().with_train(BaselineConfig::tiny())
        }
    }

    fn with_train(mut self, train: BaselineConfig) -> Self {
        self.train = train;
        self
    }
}

/// A trained attention baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttentionNet {
    /// Flat parameter plane holding all three networks.
    store: pitot_nn::ParamStore,
    /// `[x_w, x_p] → [pred, query]`.
    base: Mlp,
    /// `[x_k, x_p] → [key, value]`.
    encoder: Mlp,
    /// `context → multiplier`.
    output: Mlp,
    head_dim: usize,
    intercept: f32,
}

/// Everything cached for one batch's attention forward pass.
struct AttnForward {
    preds: Vec<f32>,
    /// Per observation: attention weights over its interferers.
    attn: Vec<Vec<f32>>,
    /// Pooled context rows (`B × head_dim`).
    context: Matrix,
    base_out: Matrix,
    enc_out: Matrix,
}

impl AttentionNet {
    /// Trains on `split.train` with per-mode batches.
    ///
    /// # Panics
    ///
    /// Panics if the split has no interference-free training data.
    pub fn train(dataset: &Dataset, split: &Split, config: &AttentionConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.train.seed.wrapping_add(0x33F));
        let wf = dataset.workload_features.cols();
        let pf = dataset.platform_features.cols();
        let d = config.head_dim;

        let mut base_widths = vec![wf + pf];
        base_widths.extend_from_slice(&config.hidden);
        base_widths.push(1 + d);
        let mut enc_widths = vec![wf + pf];
        enc_widths.extend_from_slice(&config.hidden);
        enc_widths.push(2 * d);
        let out_widths = vec![d, config.output_hidden, 1];

        // All three networks share one flat parameter plane.
        let mut builder = ParamStoreBuilder::new();
        let base = Mlp::new(&base_widths, Activation::Gelu, &mut rng, &mut builder);
        let encoder = Mlp::new(&enc_widths, Activation::Gelu, &mut rng, &mut builder);
        let output = Mlp::new(&out_widths, Activation::Gelu, &mut rng, &mut builder);
        let mut store = builder.finish();
        base.scale_output_layer(store.params_mut(), 0.3);
        output.scale_output_layer(store.params_mut(), 0.1);

        let pools: Vec<Vec<usize>> = (0..=MAX_INTERFERERS)
            .map(|k| split.train_mode(dataset, k))
            .collect();
        assert!(
            !pools[0].is_empty(),
            "attention baseline needs isolation training data"
        );
        let intercept = {
            let s: f64 = pools[0]
                .iter()
                .map(|&i| dataset.observations[i].log_runtime() as f64)
                .sum();
            (s / pools[0].len() as f64) as f32
        };

        let mut weights = [0.0f32; MAX_INTERFERERS + 1];
        weights[0] = 1.0;
        for w in weights.iter_mut().skip(1) {
            *w = config.interference_weight / MAX_INTERFERERS as f32;
        }

        let val: Vec<usize> = split
            .val
            .iter()
            .copied()
            .take(if config.train.val_cap == 0 {
                usize::MAX
            } else {
                config.train.val_cap * 2
            })
            .collect();

        let mut opt = AdaMax::new(config.train.learning_rate);
        let mut best: Option<(f32, Self)> = None;
        let mut model = Self {
            store,
            base,
            encoder,
            output,
            head_dim: d,
            intercept,
        };

        // Step buffers, allocated once and recycled every step.
        let mut base_in = Matrix::zeros(0, 0);
        let mut enc_in = Matrix::zeros(0, 0);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        let mut base_cache = MlpCache::new();
        let mut enc_cache = MlpCache::new();
        let mut ctx_cache = MlpCache::new();
        let mut g_acc = GradPlane::zeros_like(&model.store);
        let mut g_tmp = GradPlane::zeros_like(&model.store);
        let mut scratch = Scratch::new();
        let mut dx = Matrix::zeros(0, 0);
        let mut d_ctx_out = Matrix::zeros(0, 0);
        let mut d_context = Matrix::zeros(0, 0);
        let mut preds: Vec<f32> = Vec::new();
        let mut targets: Vec<f32> = Vec::new();
        let mut d_pred: Vec<f32> = Vec::new();

        for step in 1..=config.train.steps {
            g_acc.clear();

            for (k, pool) in pools.iter().enumerate() {
                if pool.is_empty() {
                    continue;
                }
                let batch = sample_batch(pool, config.train.batch_per_mode, &mut rng);
                Self::batch_inputs_into(dataset, &batch, &mut base_in, &mut enc_in, &mut spans);
                model
                    .base
                    .forward_with(model.store.params(), &base_in, &mut base_cache);
                model
                    .encoder
                    .forward_with(model.store.params(), &enc_in, &mut enc_cache);
                let fwd = model.attend(base_cache.output(), enc_cache.output(), &spans);
                model
                    .output
                    .forward_with(model.store.params(), &fwd.context, &mut ctx_cache);
                let ctx_out = ctx_cache.output();

                preds.clear();
                preds.extend((0..batch.len()).map(|b| {
                    let has = spans[b].1 > spans[b].0;
                    fwd.preds[b] + if has { ctx_out[(b, 0)] } else { 0.0 }
                }));
                targets.clear();
                targets.extend(batch.iter().map(|&i| dataset.observations[i].log_runtime()));
                squared_loss_into(&preds, &targets, &mut d_pred);
                for g in &mut d_pred {
                    *g *= weights[k];
                }

                // Output-network gradient (only rows with interferers).
                d_ctx_out.resize(batch.len(), 1);
                d_ctx_out.fill(0.0);
                for (b, &(lo, hi)) in spans.iter().enumerate() {
                    if hi > lo {
                        d_ctx_out[(b, 0)] = d_pred[b];
                    }
                }
                model.output.backward_with(
                    model.store.params(),
                    &ctx_cache,
                    &d_ctx_out,
                    &mut d_context,
                    g_tmp.as_mut_slice(),
                    &mut scratch,
                );
                g_acc.accumulate_range(model.output.range(), &g_tmp, 1.0);

                // Backprop the attention mechanism into base & encoder outputs.
                let (d_base_out, d_enc_out) =
                    model.attend_backward(&fwd, &d_context, &d_pred, &spans);
                model.base.backward_with(
                    model.store.params(),
                    &base_cache,
                    &d_base_out,
                    &mut dx,
                    g_tmp.as_mut_slice(),
                    &mut scratch,
                );
                g_acc.accumulate_range(model.base.range(), &g_tmp, 1.0);
                model.encoder.backward_with(
                    model.store.params(),
                    &enc_cache,
                    &d_enc_out,
                    &mut dx,
                    g_tmp.as_mut_slice(),
                    &mut scratch,
                );
                g_acc.accumulate_range(model.encoder.range(), &g_tmp, 1.0);
            }

            // One fused optimizer step over the whole plane (a network that
            // saw no data this step keeps its zeroed gradient window).
            opt.step(&mut [model.store.params_mut()], &[g_acc.as_slice()]);

            if (step % config.train.eval_every == 0 || step == config.train.steps)
                && !val.is_empty()
            {
                let preds = model.predict_log(dataset, &val);
                let targets: Vec<f32> = val
                    .iter()
                    .map(|&i| dataset.observations[i].log_runtime())
                    .collect();
                let (loss, _) = squared_loss(&preds[0], &targets);
                if best.as_ref().is_none_or(|(b, _)| loss < *b) {
                    best = Some((loss, model.clone()));
                }
            }
        }

        best.map(|(_, m)| m).unwrap_or(model)
    }

    fn batch_inputs(dataset: &Dataset, batch: &[usize]) -> (Matrix, Matrix, Vec<(usize, usize)>) {
        let mut base_in = Matrix::zeros(0, 0);
        let mut enc_in = Matrix::zeros(0, 0);
        let mut spans = Vec::new();
        Self::batch_inputs_into(dataset, batch, &mut base_in, &mut enc_in, &mut spans);
        (base_in, enc_in, spans)
    }

    /// [`AttentionNet::batch_inputs`] into reusable buffers.
    fn batch_inputs_into(
        dataset: &Dataset,
        batch: &[usize],
        base_in: &mut Matrix,
        enc_in: &mut Matrix,
        spans: &mut Vec<(usize, usize)>,
    ) {
        let wf = dataset.workload_features.cols();
        let pf = dataset.platform_features.cols();
        base_in.resize(batch.len(), wf + pf);
        let total: usize = batch
            .iter()
            .map(|&i| dataset.observations[i].interferers.len())
            .sum();
        enc_in.resize(total.max(1), wf + pf);
        enc_in.fill(0.0);
        spans.clear();
        let mut row = 0;
        for (b, &oi) in batch.iter().enumerate() {
            let o = &dataset.observations[oi];
            let xw = dataset.workload_features.row(o.workload as usize);
            let xp = dataset.platform_features.row(o.platform as usize);
            base_in.row_mut(b)[..wf].copy_from_slice(xw);
            base_in.row_mut(b)[wf..].copy_from_slice(xp);
            let start = row;
            for &k in &o.interferers {
                let r = enc_in.row_mut(row);
                r[..wf].copy_from_slice(dataset.workload_features.row(k as usize));
                r[wf..].copy_from_slice(xp);
                row += 1;
            }
            spans.push((start, row));
        }
    }

    /// Attention forward pass over already-computed network outputs.
    fn attend(&self, base_out: &Matrix, enc_out: &Matrix, spans: &[(usize, usize)]) -> AttnForward {
        let d = self.head_dim;
        let n = spans.len();
        let mut preds = Vec::with_capacity(n);
        let mut attn = Vec::with_capacity(n);
        let mut context = Matrix::zeros(n, d);
        for (b, &(lo, hi)) in spans.iter().enumerate() {
            preds.push(self.intercept + base_out[(b, 0)]);
            let query = &base_out.row(b)[1..1 + d];
            if hi == lo {
                attn.push(Vec::new());
                continue;
            }
            // Softmax over <key_k, query> (scaled by √d as usual).
            let scale = 1.0 / (d as f32).sqrt();
            let logits: Vec<f32> = (lo..hi)
                .map(|r| dot(&enc_out.row(r)[..d], query) * scale)
                .collect();
            let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
            let z: f32 = exps.iter().sum();
            let a: Vec<f32> = exps.iter().map(|e| e / z).collect();
            for (w, r) in a.iter().zip(lo..hi) {
                let value = &enc_out.row(r)[d..2 * d];
                pitot_linalg::axpy_slice(*w, value, context.row_mut(b));
            }
            attn.push(a);
        }
        AttnForward {
            preds,
            attn,
            context,
            base_out: base_out.clone(),
            enc_out: enc_out.clone(),
        }
    }

    /// Backward pass of the attention mechanism.
    ///
    /// Returns gradients with respect to the base-network and encoder
    /// outputs given `d_context` (gradient into the pooled context) and
    /// `d_pred` (gradient into the scalar prediction).
    fn attend_backward(
        &self,
        fwd: &AttnForward,
        d_context: &Matrix,
        d_pred: &[f32],
        spans: &[(usize, usize)],
    ) -> (Matrix, Matrix) {
        let d = self.head_dim;
        let mut d_base = Matrix::zeros(fwd.base_out.rows(), fwd.base_out.cols());
        let mut d_enc = Matrix::zeros(fwd.enc_out.rows(), fwd.enc_out.cols());
        let scale = 1.0 / (d as f32).sqrt();

        for (b, &(lo, hi)) in spans.iter().enumerate() {
            // Scalar prediction path.
            d_base[(b, 0)] = d_pred[b];
            if hi == lo {
                continue;
            }
            let a = &fwd.attn[b];
            let dc = d_context.row(b);
            let query = &fwd.base_out.row(b)[1..1 + d];

            // d a_k = <dc, value_k>; softmax backward; then keys & query.
            let da: Vec<f32> = (lo..hi)
                .map(|r| dot(dc, &fwd.enc_out.row(r)[d..2 * d]))
                .collect();
            let dot_aa: f32 = a.iter().zip(&da).map(|(x, y)| x * y).sum();
            for (j, r) in (lo..hi).enumerate() {
                // d value_k = a_k · dc.
                pitot_linalg::axpy_slice(a[j], dc, &mut d_enc.row_mut(r)[d..2 * d]);
                // d logit_j = a_j (da_j − Σ a·da), then through the √d scale.
                let dl = a[j] * (da[j] - dot_aa) * scale;
                // d key_j = dl · query; d query += dl · key_j.
                let key: Vec<f32> = fwd.enc_out.row(r)[..d].to_vec();
                pitot_linalg::axpy_slice(dl, query, &mut d_enc.row_mut(r)[..d]);
                pitot_linalg::axpy_slice(dl, &key, &mut d_base.row_mut(b)[1..1 + d]);
            }
        }
        (d_base, d_enc)
    }
}

impl LogPredictor for AttentionNet {
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>> {
        let (base_in, enc_in, spans) = Self::batch_inputs(dataset, idx);
        let base_out = self.base.infer(self.store.params(), &base_in);
        let has_intf = spans.iter().any(|&(lo, hi)| hi > lo);
        if !has_intf {
            return vec![base_out.col(0).iter().map(|b| self.intercept + b).collect()];
        }
        let enc_out = self.encoder.infer(self.store.params(), &enc_in);
        let fwd = self.attend(&base_out, &enc_out, &spans);
        let ctx_out = self.output.infer(self.store.params(), &fwd.context);
        let preds = (0..idx.len())
            .map(|b| {
                let has = spans[b].1 > spans[b].0;
                fwd.preds[b] + if has { ctx_out[(b, 0)] } else { 0.0 }
            })
            .collect();
        vec![preds]
    }

    fn method_name(&self) -> &'static str {
        "Attention"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pitot_testbed::{Testbed, TestbedConfig};

    fn setup() -> (Dataset, Split) {
        let ds = Testbed::generate(&TestbedConfig::small()).collect_dataset();
        let split = Split::stratified(&ds, 0.6, 0);
        (ds, split)
    }

    #[test]
    fn attention_trains_to_reasonable_error() {
        let (ds, split) = setup();
        let model = AttentionNet::train(&ds, &split, &AttentionConfig::tiny());
        let m = model.mape(&ds, &split.test[..2000.min(split.test.len())]);
        assert!(m < 3.0, "attention MAPE {m}");
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let (ds, split) = setup();
        let model = AttentionNet::train(&ds, &split, &AttentionConfig::tiny());
        let idx = vec![ds.mode_indices(3)[0]];
        let (base_in, enc_in, spans) = AttentionNet::batch_inputs(&ds, &idx);
        let fwd = model.attend(
            &model.base.infer(model.store.params(), &base_in),
            &model.encoder.infer(model.store.params(), &enc_in),
            &spans,
        );
        let s: f32 = fwd.attn[0].iter().sum();
        assert_eq!(fwd.attn[0].len(), 3);
        assert!((s - 1.0).abs() < 1e-5, "attention weights sum {s}");
    }

    /// Gradient check of the full attention path via directional derivative.
    #[test]
    fn attention_backward_matches_finite_differences() {
        let (ds, split) = setup();
        let mut cfg = AttentionConfig::tiny();
        cfg.train.steps = 5;
        let model = AttentionNet::train(&ds, &split, &cfg);
        let idx: Vec<usize> = ds.mode_indices(2)[..3].to_vec();
        let targets: Vec<f32> = idx
            .iter()
            .map(|&i| ds.observations[i].log_runtime())
            .collect();

        let loss_of = |m: &AttentionNet| {
            let preds = m.predict_log(&ds, &idx);
            squared_loss(&preds[0], &targets).0
        };

        // Analytic gradients for the base network.
        let params = model.store.params();
        let (base_in, enc_in, spans) = AttentionNet::batch_inputs(&ds, &idx);
        let (base_out, base_cache) = model.base.forward(params, &base_in);
        let (enc_out, enc_cache) = model.encoder.forward(params, &enc_in);
        let fwd = model.attend(&base_out, &enc_out, &spans);
        let (ctx_out, ctx_cache) = model.output.forward(params, &fwd.context);
        let preds: Vec<f32> = (0..idx.len())
            .map(|b| fwd.preds[b] + ctx_out[(b, 0)])
            .collect();
        let (_, d_pred) = squared_loss(&preds, &targets);
        let mut d_ctx_out = Matrix::zeros(idx.len(), 1);
        for (b, g) in d_pred.iter().enumerate() {
            d_ctx_out[(b, 0)] = *g;
        }
        let mut grads = GradPlane::zeros_like(&model.store);
        let d_context = model
            .output
            .backward(params, &ctx_cache, &d_ctx_out, grads.as_mut_slice());
        let (d_base_out, d_enc_out) = model.attend_backward(&fwd, &d_context, &d_pred, &spans);
        model
            .base
            .backward(params, &base_cache, &d_base_out, grads.as_mut_slice());
        model
            .encoder
            .backward(params, &enc_cache, &d_enc_out, grads.as_mut_slice());

        // Directional derivative over base + encoder plane windows. The step
        // must be small: with ~7k parameters perturbed at once, the total
        // displacement is eps·√7000 and curvature error grows with its
        // square.
        let eps = 1e-3f32;
        let mut plus = model.clone();
        let mut minus = model.clone();
        let mut analytic = 0.0f64;
        {
            let window = model.base.range().join(model.encoder.range());
            let ps = plus.store.params_mut();
            let ms = minus.store.params_mut();
            for k in window.as_range() {
                let dir = if k % 2 == 0 { 1.0 } else { -1.0 };
                ps[k] += eps * dir;
                ms[k] -= eps * dir;
                analytic += (grads.as_slice()[k] * dir) as f64;
            }
        }
        let numeric = ((loss_of(&plus) - loss_of(&minus)) / (2.0 * eps)) as f64;
        let denom = 1.0f64.max(analytic.abs()).max(numeric.abs());
        assert!(
            (analytic - numeric).abs() / denom < 5e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }
}
