//! Shared baseline infrastructure.

use pitot_testbed::Dataset;
use serde::{Deserialize, Serialize};

/// Common training knobs shared by all baselines (paper App B.4: same steps,
/// batch size, optimizer, and log-domain targets as Pitot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// SGD steps.
    pub steps: usize,
    /// Batch size per interference mode.
    pub batch_per_mode: usize,
    /// AdaMax learning rate.
    pub learning_rate: f32,
    /// Evaluate/checkpoint cadence.
    pub eval_every: usize,
    /// Validation cap per mode (0 = all).
    pub val_cap: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BaselineConfig {
    /// Paper-scale settings (20k steps, batch 512/mode).
    pub fn paper() -> Self {
        Self {
            steps: 20_000,
            batch_per_mode: 512,
            learning_rate: 1e-3,
            eval_every: 200,
            val_cap: 4096,
            seed: 0,
        }
    }

    /// Harness-scale settings matching `PitotConfig::fast()`.
    pub fn fast() -> Self {
        Self {
            steps: 1200,
            batch_per_mode: 192,
            eval_every: 100,
            val_cap: 1024,
            ..Self::paper()
        }
    }

    /// Unit-test settings.
    pub fn tiny() -> Self {
        Self {
            steps: 250,
            batch_per_mode: 96,
            eval_every: 50,
            val_cap: 512,
            ..Self::paper()
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Anything that predicts log runtimes for dataset observations.
///
/// All baselines and Pitot's own `TrainedPitot`-style wrappers expose
/// this surface so the experiment harness can evaluate error and fit split
/// conformal bounds uniformly. `predictions[h][i]` is head `h`'s log-space
/// prediction for the `i`-th requested observation; baselines have one head.
pub trait LogPredictor {
    /// Log-runtime predictions, one vector per head.
    fn predict_log(&self, dataset: &Dataset, idx: &[usize]) -> Vec<Vec<f32>>;

    /// Training quantile per head (`0.5` for squared-loss heads).
    fn quantile_levels(&self) -> Vec<f32> {
        vec![0.5]
    }

    /// Human-readable method name for reports.
    fn method_name(&self) -> &'static str;

    /// Point predictions in seconds (head 0).
    fn predict_seconds(&self, dataset: &Dataset, idx: &[usize]) -> Vec<f32> {
        self.predict_log(dataset, idx)[0]
            .iter()
            .map(|l| l.exp())
            .collect()
    }

    /// MAPE over the given observations.
    fn mape(&self, dataset: &Dataset, idx: &[usize]) -> f32 {
        assert!(!idx.is_empty(), "MAPE of empty index set");
        let preds = self.predict_seconds(dataset, idx);
        let total: f64 = preds
            .iter()
            .zip(idx)
            .map(|(p, &i)| {
                let a = dataset.observations[i].runtime_s;
                ((p - a).abs() / a.max(1e-12)) as f64
            })
            .sum();
        (total / idx.len() as f64) as f32
    }
}

/// Draws a batch of `n` indices uniformly with replacement from `pool`.
pub(crate) fn sample_batch<R: rand::Rng + ?Sized>(
    pool: &[usize],
    n: usize,
    rng: &mut R,
) -> Vec<usize> {
    (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(BaselineConfig::paper().steps, 20_000);
        assert!(BaselineConfig::fast().steps < 5_000);
        assert_eq!(BaselineConfig::tiny().with_seed(3).seed, 3);
    }
}
