//! Baseline predictors from the Pitot paper's evaluation (Sec 5.3 / App B.4).
//!
//! No prior work tackles interference-aware runtime prediction across
//! heterogeneous platforms directly, so the paper assembles three baselines
//! from state-of-the-art components; this crate reproduces them:
//!
//! - [`MatrixFactorization`]: plain embedding-per-entity factorization in the
//!   log domain (Paragon/Quasar-style), no side information, interference
//!   observations discarded;
//! - [`NeuralNetwork`]: an MLP over concatenated workload+platform features
//!   plus a second MLP predicting a per-interferer log multiplier
//!   (Pham et al. / Saeed et al. style);
//! - [`AttentionNet`]: the neural-network baseline with its multiplicative
//!   interference model replaced by a single-head attention mechanism over
//!   the interfering workloads.
//!
//! Three further comparators extend the paper's set, each probing one of
//! Pitot's design choices:
//!
//! - [`KnnCollaborative`]: training-free k-NN collaborative filtering (how
//!   much of the problem is "just" collaborative structure?);
//! - [`InductiveMc`]: the analytic bilinear matrix completion with side
//!   information the paper cites and rejects (Chiang et al., 2015) — it
//!   measures exactly how much tower nonlinearity buys;
//! - [`TensorCompletion`]: CP tensor completion over (workload, platform,
//!   interferer), the approach footnote 6 argues cannot survive sparsity.
//!
//! All trained baselines use AdaMax in the log domain with the same step
//! budget and batching as Pitot (App B.4 "Common settings"), and expose the
//! same [`LogPredictor`] surface so the experiment harness can calibrate
//! them with split conformal prediction.

// Every public item in this crate is part of the documented baseline-predictor
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod attention;
mod common;
mod imc;
mod knn;
mod mf;
mod nn_baseline;
mod tensor;
mod wcet;

pub use attention::{AttentionConfig, AttentionNet};
pub use common::{BaselineConfig, LogPredictor};
pub use imc::{ImcConfig, InductiveMc};
pub use knn::{KnnCollaborative, KnnConfig};
pub use mf::{MatrixFactorization, MfConfig};
pub use nn_baseline::{NeuralNetwork, NnConfig};
pub use tensor::{TensorCompletion, TensorConfig};
pub use wcet::WcetBaseline;
