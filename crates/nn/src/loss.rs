//! Loss functions: squared error and the pinball (quantile) loss.
//!
//! All losses return `(loss, d_pred)` where `d_pred[i] = ∂loss/∂pred[i]`,
//! using *mean* reduction over the batch unless a weight vector says
//! otherwise. Targets and predictions are plain slices; the caller owns the
//! mapping back into model outputs.

/// Mean squared error `mean((pred − target)²)` and its gradient.
///
/// # Panics
///
/// Panics if lengths differ or the batch is empty.
pub fn squared_loss(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    let mut grad = Vec::new();
    let loss = squared_loss_into(pred, target, &mut grad);
    (loss, grad)
}

/// [`squared_loss`] into a reusable gradient buffer (cleared and refilled);
/// the uniform-weight case needs no weight vector at all.
///
/// # Panics
///
/// Panics if lengths differ or the batch is empty.
pub fn squared_loss_into(pred: &[f32], target: &[f32], grad: &mut Vec<f32>) -> f32 {
    assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
    assert!(!pred.is_empty(), "total weight must be positive");
    let inv = 1.0 / pred.len() as f32;
    grad.clear();
    grad.resize(pred.len(), 0.0);
    let mut loss = 0.0;
    for (g, (&p, &t)) in grad.iter_mut().zip(pred.iter().zip(target)) {
        let e = p - t;
        loss += e * e;
        *g = 2.0 * e * inv;
    }
    loss * inv
}

/// Weighted squared error `Σ wᵢ(predᵢ − targetᵢ)² / Σ wᵢ` and its gradient.
///
/// # Panics
///
/// Panics if lengths differ or the total weight is zero.
pub fn weighted_squared_loss(pred: &[f32], target: &[f32], weight: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
    assert_eq!(pred.len(), weight.len(), "pred/weight length mismatch");
    let wsum: f32 = weight.iter().sum();
    assert!(wsum > 0.0, "total weight must be positive");
    let mut loss = 0.0;
    let mut grad = vec![0.0; pred.len()];
    for i in 0..pred.len() {
        let e = pred[i] - target[i];
        loss += weight[i] * e * e;
        grad[i] = 2.0 * weight[i] * e / wsum;
    }
    (loss / wsum, grad)
}

/// Pinball (quantile) loss for target quantile `xi` (paper Eq 13) and its
/// gradient, mean-reduced.
///
/// The minimizer over a constant prediction is the empirical `xi`-quantile of
/// the targets, which is what makes quantile regression work.
///
/// # Panics
///
/// Panics if lengths differ, the batch is empty, or `xi ∉ (0, 1)`.
pub fn pinball_loss(pred: &[f32], target: &[f32], xi: f32) -> (f32, Vec<f32>) {
    let mut grad = Vec::new();
    let loss = pinball_loss_into(pred, target, xi, &mut grad);
    (loss, grad)
}

/// [`pinball_loss`] into a reusable gradient buffer (cleared and refilled).
///
/// # Panics
///
/// Panics if lengths differ, the batch is empty, or `xi ∉ (0, 1)`.
pub fn pinball_loss_into(pred: &[f32], target: &[f32], xi: f32, grad: &mut Vec<f32>) -> f32 {
    assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
    assert!(xi > 0.0 && xi < 1.0, "target quantile {xi} outside (0,1)");
    assert!(!pred.is_empty(), "total weight must be positive");
    let inv = 1.0 / pred.len() as f32;
    grad.clear();
    grad.resize(pred.len(), 0.0);
    let mut loss = 0.0;
    for (g, (&p, &t)) in grad.iter_mut().zip(pred.iter().zip(target)) {
        let diff = t - p; // positive ⇒ under-prediction
        if diff > 0.0 {
            loss += xi * diff;
            *g = -xi * inv;
        } else {
            loss += (1.0 - xi) * (-diff);
            *g = (1.0 - xi) * inv;
        }
    }
    loss * inv
}

/// Weighted pinball loss; see [`pinball_loss`].
///
/// # Panics
///
/// Panics if lengths differ, the total weight is zero, or `xi ∉ (0, 1)`.
pub fn weighted_pinball_loss(
    pred: &[f32],
    target: &[f32],
    xi: f32,
    weight: &[f32],
) -> (f32, Vec<f32>) {
    assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
    assert_eq!(pred.len(), weight.len(), "pred/weight length mismatch");
    assert!(xi > 0.0 && xi < 1.0, "target quantile {xi} outside (0,1)");
    let wsum: f32 = weight.iter().sum();
    assert!(wsum > 0.0, "total weight must be positive");
    let mut loss = 0.0;
    let mut grad = vec![0.0; pred.len()];
    for i in 0..pred.len() {
        let diff = target[i] - pred[i]; // positive ⇒ under-prediction
        if diff > 0.0 {
            loss += weight[i] * xi * diff;
            grad[i] = -weight[i] * xi / wsum;
        } else {
            loss += weight[i] * (1.0 - xi) * (-diff);
            grad[i] = weight[i] * (1.0 - xi) / wsum;
        }
    }
    (loss / wsum, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn squared_loss_value_and_grad() {
        let (l, g) = squared_loss(&[1.0, 3.0], &[0.0, 1.0]);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert!((g[0] - 1.0).abs() < 1e-6); // 2*1/2
        assert!((g[1] - 2.0).abs() < 1e-6); // 2*2/2
    }

    #[test]
    fn weighted_squared_loss_respects_weights() {
        let (l, _) = weighted_squared_loss(&[1.0, 1.0], &[0.0, 0.0], &[1.0, 3.0]);
        assert!((l - 1.0).abs() < 1e-6); // (1*1 + 3*1)/4
    }

    #[test]
    fn pinball_asymmetry() {
        // xi = 0.9 punishes under-prediction 9x more than over-prediction.
        let (under, _) = pinball_loss(&[0.0], &[1.0], 0.9);
        let (over, _) = pinball_loss(&[1.0], &[0.0], 0.9);
        assert!((under / over - 9.0).abs() < 1e-4);
    }

    #[test]
    fn pinball_grad_matches_finite_differences() {
        // Keep |pred − target| well above the FD step so central differences
        // never straddle the loss kink.
        let pred = [0.3f32, -0.2, 1.5];
        let target = [0.5f32, -0.5, 1.0];
        let xi = 0.8;
        let (_, g) = pinball_loss(&pred, &target, xi);
        let h = 1e-3;
        for i in 0..pred.len() {
            let mut pp = pred;
            pp[i] += h;
            let mut pm = pred;
            pm[i] -= h;
            let (lp, _) = pinball_loss(&pp, &target, xi);
            let (lm, _) = pinball_loss(&pm, &target, xi);
            let num = (lp - lm) / (2.0 * h);
            assert!((num - g[i]).abs() < 1e-3, "grad[{i}]: {num} vs {}", g[i]);
        }
    }

    proptest! {
        /// The constant minimizing pinball loss is the empirical xi-quantile:
        /// scan candidates and verify no constant beats the quantile.
        #[test]
        fn pinball_minimizer_is_quantile(
            xi in 0.1f32..0.9,
            ys in proptest::collection::vec(-10.0f32..10.0, 10..60),
        ) {
            // The pinball minimizer over constants is the ⌈n·xi⌉-th order
            // statistic (an exact empirical quantile, not an interpolation).
            let mut sorted = ys.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            let k = ((ys.len() as f32 * xi).ceil() as usize).clamp(1, ys.len());
            let q = sorted[k - 1];
            let pred_q = vec![q; ys.len()];
            let (loss_q, _) = pinball_loss(&pred_q, &ys, xi);
            for cand in [-12.0f32, -5.0, -1.0, 0.0, 1.0, 5.0, 12.0] {
                let pred_c = vec![cand; ys.len()];
                let (loss_c, _) = pinball_loss(&pred_c, &ys, xi);
                prop_assert!(loss_q <= loss_c + 1e-4, "constant {cand} beats quantile {q}");
            }
        }

        /// Squared-loss gradient always points from target toward pred.
        #[test]
        fn squared_grad_sign(p in -5.0f32..5.0, t in -5.0f32..5.0) {
            let (_, g) = squared_loss(&[p], &[t]);
            prop_assert!(g[0] * (p - t) >= 0.0);
        }
    }
}
