//! Pointwise activation functions and their derivatives.

use pitot_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A pointwise activation function.
///
/// The paper uses GELU on all hidden layers (Sec 3.3) and a leaky ReLU with
/// negative slope 0.1 as the interference activation α (Sec 3.4); the other
/// variants exist for the baselines and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Gaussian Error Linear Unit, tanh approximation.
    Gelu,
    /// `f(x) = max(0, x)`.
    Relu,
    /// `f(x) = x` for `x > 0`, `slope·x` otherwise.
    LeakyRelu(f32),
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Gelu => gelu(x),
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(slope) => {
                if x > 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::Tanh => fast_tanh(x),
        }
    }

    /// Derivative `f'(x)` evaluated at the pre-activation `x`.
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Gelu => gelu_derivative(x),
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(slope) => {
                if x > 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            Activation::Tanh => {
                let t = fast_tanh(x);
                1.0 - t * t
            }
        }
    }

    /// Applies the activation elementwise to a matrix.
    pub fn apply_matrix(self, x: &Matrix) -> Matrix {
        x.map(|v| self.apply(v))
    }

    /// Applies the activation elementwise in place (use when the
    /// pre-activation is dead afterwards, e.g. inference).
    ///
    /// GELU and tanh route through the vectorized (AVX2+FMA-dispatched)
    /// maps in `pitot_linalg::kernels`; the cheap piecewise-linear variants
    /// stay on the generic parallel map.
    pub fn apply_matrix_inplace(self, x: &mut Matrix) {
        match self {
            Activation::Gelu => pitot_linalg::kernels::gelu_map(x.as_mut_slice()),
            Activation::Tanh => pitot_linalg::kernels::tanh_map(x.as_mut_slice()),
            _ => x.par_map_inplace(|v| self.apply(v)),
        }
    }

    /// Applies the activation elementwise into a caller-owned buffer:
    /// allocation-free once the buffer has capacity.
    pub fn apply_matrix_into(self, x: &Matrix, out: &mut Matrix) {
        out.copy_from(x);
        self.apply_matrix_inplace(out);
    }

    /// Given the upstream gradient `dy` and the cached pre-activation `x`,
    /// returns `dy ⊙ f'(x)`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn backward_matrix(self, x: &Matrix, dy: &Matrix) -> Matrix {
        dy.zip_map(x, |g, pre| g * self.derivative(pre))
    }

    /// In-place activation backward: `dy ⊙= f'(x)` (the upstream gradient is
    /// dead after the chain step, so no fresh matrix is needed).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn backward_matrix_inplace(self, x: &Matrix, dy: &mut Matrix) {
        match self {
            Activation::Gelu => {
                assert_eq!(x.shape(), dy.shape(), "gelu backward shape mismatch");
                pitot_linalg::kernels::gelu_backward_map(x.as_slice(), dy.as_mut_slice());
            }
            _ => dy.zip_map_inplace(x, |g, pre| g * self.derivative(pre)),
        }
    }
}

// The scalar rational-tanh GELU family lives in `pitot_linalg::kernels`
// next to its vectorized counterparts so both evaluate one polynomial
// definition; these thin wrappers keep this module's call sites readable.
use pitot_linalg::kernels::{
    gelu_f32 as gelu, gelu_grad_f32 as gelu_derivative, tanh_f32 as fast_tanh,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0, GELU(x) → x for large x, → 0 for very negative x.
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!((Activation::Gelu.apply(6.0) - 6.0).abs() < 1e-4);
        assert!(Activation::Gelu.apply(-6.0).abs() < 1e-4);
        // Reference value: gelu(1.0) ≈ 0.841192 (tanh approximation).
        assert!((Activation::Gelu.apply(1.0) - 0.841_192).abs() < 1e-4);
    }

    #[test]
    fn leaky_relu_slope() {
        let a = Activation::LeakyRelu(0.1);
        assert_eq!(a.apply(2.0), 2.0);
        assert_eq!(a.apply(-2.0), -0.2);
        assert_eq!(a.derivative(2.0), 1.0);
        assert_eq!(a.derivative(-2.0), 0.1);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-3f32;
        for act in [
            Activation::Identity,
            Activation::Gelu,
            Activation::Relu,
            Activation::LeakyRelu(0.1),
            Activation::Tanh,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                let num = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let ana = act.derivative(x);
                assert!(
                    (num - ana).abs() < 5e-3,
                    "{act:?} at {x}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn fast_tanh_tracks_libm_tanh() {
        for i in -1000..=1000 {
            let x = i as f32 * 0.01;
            let (fast, libm) = (fast_tanh(x), x.tanh());
            assert!(
                (fast - libm).abs() < 1e-5,
                "fast_tanh({x}) = {fast} vs libm {libm}"
            );
        }
        assert!((fast_tanh(40.0) - 1.0).abs() < 1e-6, "saturates at +1");
        assert!((fast_tanh(-40.0) + 1.0).abs() < 1e-6, "saturates at -1");
    }

    #[test]
    fn matrix_forms_agree_with_scalar() {
        let x = Matrix::from_rows(&[&[-1.0, 0.5], &[2.0, -0.25]]);
        let y = Activation::Gelu.apply_matrix(&x);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(Activation::Gelu.apply(*a), *b);
        }
        let dy = Matrix::full(2, 2, 1.0);
        let dx = Activation::Gelu.backward_matrix(&x, &dy);
        for (a, b) in x.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(Activation::Gelu.derivative(*a), *b);
        }
    }
}
