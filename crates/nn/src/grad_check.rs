//! Finite-difference gradient checking.
//!
//! Every manually-derived backward pass in this workspace is validated with
//! these helpers. They operate on a *flat parameter vector* plus a loss
//! closure, so callers adapt their model by copying parameters in and out.

/// Computes the numerical gradient of `loss` at `params` by central
/// differences with step `h`.
///
/// `loss` must be deterministic in `params`.
pub fn numerical_grad(params: &[f32], h: f32, mut loss: impl FnMut(&[f32]) -> f32) -> Vec<f32> {
    let mut grad = vec![0.0; params.len()];
    let mut work = params.to_vec();
    for i in 0..params.len() {
        let orig = work[i];
        work[i] = orig + h;
        let lp = loss(&work);
        work[i] = orig - h;
        let lm = loss(&work);
        work[i] = orig;
        grad[i] = (lp - lm) / (2.0 * h);
    }
    grad
}

/// Checks an analytic gradient against finite differences.
///
/// Returns the worst relative error `|gᵃ − gⁿ| / max(1, |gᵃ|, |gⁿ|)` across
/// all coordinates, so callers can assert a tolerance appropriate to their
/// function's smoothness (GELU nets are fine at `1e-2` with `h = 1e-2` in
/// `f32`; piecewise-linear losses need looser tolerances near kinks).
pub fn grad_check(
    params: &[f32],
    analytic: &[f32],
    h: f32,
    loss: impl FnMut(&[f32]) -> f32,
) -> f32 {
    assert_eq!(params.len(), analytic.len(), "gradient length mismatch");
    let numeric = numerical_grad(params, h, loss);
    let mut worst = 0.0f32;
    for (a, n) in analytic.iter().zip(&numeric) {
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        worst = worst.max((a - n).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numerical_grad_of_quadratic() {
        // f(x, y) = x² + 3y ⇒ ∇f = (2x, 3).
        let g = numerical_grad(&[2.0, 5.0], 1e-3, |p| p[0] * p[0] + 3.0 * p[1]);
        assert!((g[0] - 4.0).abs() < 1e-2);
        assert!((g[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn grad_check_accepts_correct_gradient() {
        let params = [1.0f32, -2.0, 0.5];
        let analytic: Vec<f32> = params.iter().map(|p| 2.0 * p).collect();
        let err = grad_check(&params, &analytic, 1e-3, |p| p.iter().map(|v| v * v).sum());
        assert!(err < 1e-2, "relative error {err}");
    }

    #[test]
    fn grad_check_rejects_wrong_gradient() {
        let params = [1.0f32, -2.0];
        let wrong = [0.0f32, 0.0];
        let err = grad_check(&params, &wrong, 1e-3, |p| p.iter().map(|v| v * v).sum());
        assert!(err > 0.5, "should flag a zero gradient, got {err}");
    }
}
