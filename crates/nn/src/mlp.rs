//! Multi-layer perceptron: a stack of [`Linear`] layers with hidden
//! activations, optionally layer-normalized, parameterized by one window of
//! the flat parameter plane.

use crate::store::{ParamRange, ParamStoreBuilder};
use crate::{Activation, LayerNorm, LayerNormCache, Linear};
use pitot_linalg::{Matrix, Scratch};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network `x → L₁ → [LN] → act → L₂ → [LN] → act → … → L_n`
/// (linear output).
///
/// The paper's embedding towers `f_w`, `f_p` are `Mlp`s with two hidden
/// layers and GELU activations (Sec 3.3); layer norm is an optional
/// extension knob (off in the paper's configuration). The network owns no
/// weights: every layer views a window of the [`crate::ParamStore`] the
/// network was built in, and the whole network spans the contiguous
/// [`Mlp::range`] of that plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    /// One layer norm per hidden layer, applied between the linear and the
    /// activation. `None` (and absent in old checkpoints) = disabled.
    #[serde(default)]
    norms: Option<Vec<LayerNorm>>,
    span: ParamRange,
}

/// Forward-pass cache: everything `Mlp::backward` needs.
///
/// Reusable: pass the same cache to [`Mlp::forward_with`] every step and the
/// buffers are recycled in place, making the steady-state forward pass
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// `inputs[i]` is the input to layer `i` (post-activation of layer `i−1`).
    inputs: Vec<Matrix>,
    /// `pre[i]` is the input to layer `i`'s hidden activation (the linear
    /// output, layer-normalized when norms are enabled; the last entry is
    /// the network output itself).
    pre: Vec<Matrix>,
    /// Per-hidden-layer layer-norm caches (empty when norms are disabled).
    ln: Vec<LayerNormCache>,
}

impl MlpCache {
    /// Creates an empty cache; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The network output of the last [`Mlp::forward_with`] pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has run yet.
    pub fn output(&self) -> &Matrix {
        self.pre
            .last()
            .expect("no forward pass has filled this cache")
    }
}

impl Mlp {
    /// Allocates an MLP in `store` with the given layer widths, e.g.
    /// `&[in, h1, h2, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(
        widths: &[usize],
        hidden_act: Activation,
        rng: &mut R,
        store: &mut ParamStoreBuilder,
    ) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let start = store.len();
        let layers: Vec<Linear> = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng, store))
            .collect();
        Self {
            layers,
            hidden_act,
            norms: None,
            span: ParamRange {
                offset: start,
                len: store.len() - start,
            },
        }
    }

    /// Like [`Mlp::new`] with layer normalization between every hidden
    /// linear and its activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn with_layer_norm<R: Rng + ?Sized>(
        widths: &[usize],
        hidden_act: Activation,
        rng: &mut R,
        store: &mut ParamStoreBuilder,
    ) -> Self {
        let mut mlp = Self::new(widths, hidden_act, rng, store);
        mlp.norms = Some(
            widths[1..widths.len() - 1]
                .iter()
                .map(|&w| LayerNorm::new(w, store))
                .collect(),
        );
        mlp.span.len = store.len() - mlp.span.offset;
        mlp
    }

    /// Whether hidden layers are layer-normalized.
    pub fn has_layer_norm(&self) -> bool {
        self.norms.is_some()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// The layers, first to last.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The optional per-hidden-layer norms (for [`crate::QuantizedMlp`],
    /// which replays them on the f32 side of its inference path).
    pub(crate) fn norms(&self) -> Option<&[crate::LayerNorm]> {
        self.norms.as_deref()
    }

    /// Hidden activation function.
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_act
    }

    /// The contiguous plane window covering every parameter of this network.
    pub fn range(&self) -> ParamRange {
        self.span
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.span.len
    }

    /// Forward pass returning the output and the cache for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, params: &[f32], x: &Matrix) -> (Matrix, MlpCache) {
        let mut cache = MlpCache::new();
        self.forward_with(params, x, &mut cache);
        (cache.output().clone(), cache)
    }

    /// Forward pass into a reusable cache; the output is at
    /// [`MlpCache::output`]. Allocation-free once the cache buffers have
    /// capacity (except on the optional layer-norm path, which still
    /// allocates its per-step statistics).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_with(&self, params: &[f32], x: &Matrix, cache: &mut MlpCache) {
        let n = self.layers.len();
        cache.inputs.resize_with(n, || Matrix::zeros(0, 0));
        cache.pre.resize_with(n, || Matrix::zeros(0, 0));
        cache.ln.clear();
        cache.inputs[0].copy_from(x);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(params, &cache.inputs[i], &mut cache.pre[i]);
            if i + 1 < n {
                if let Some(norms) = &self.norms {
                    let (zn, ln_cache) = norms[i].forward(params, &cache.pre[i]);
                    cache.pre[i] = zn;
                    cache.ln.push(ln_cache);
                }
                self.hidden_act
                    .apply_matrix_into(&cache.pre[i], &mut cache.inputs[i + 1]);
            }
        }
    }

    /// Output without building a cache (inference path).
    pub fn infer(&self, params: &[f32], x: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut cur = x.clone();
        let mut next = Matrix::zeros(0, 0);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(params, &cur, &mut next);
            if i + 1 < n {
                if let Some(norms) = &self.norms {
                    next = norms[i].infer(params, &next);
                }
                self.hidden_act.apply_matrix_inplace(&mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Backward pass. Returns the gradient with respect to the input;
    /// parameter gradients are written into this network's windows of
    /// `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the cached forward shapes.
    pub fn backward(
        &self,
        params: &[f32],
        cache: &MlpCache,
        d_out: &Matrix,
        grads: &mut [f32],
    ) -> Matrix {
        let mut dx = Matrix::zeros(0, 0);
        let mut scratch = Scratch::new();
        self.backward_with(params, cache, d_out, &mut dx, grads, &mut scratch);
        dx
    }

    /// Backward pass into caller-owned buffers: `dx` receives the input
    /// gradient, this network's windows of the gradient plane are
    /// overwritten, and intermediate layer gradients recycle through
    /// `scratch`. Allocation-free once every buffer is warm (layer-norm path
    /// excepted).
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the cached forward shapes or `grads`
    /// is shorter than this network's plane window.
    pub fn backward_with(
        &self,
        params: &[f32],
        cache: &MlpCache,
        d_out: &Matrix,
        dx: &mut Matrix,
        grads: &mut [f32],
        scratch: &mut Scratch,
    ) {
        self.backward_with_dx_cols(params, cache, d_out, dx, grads, scratch, 0..self.in_dim());
    }

    /// [`Mlp::backward_with`] computing the network-input gradient only for
    /// the input columns `dx_cols`. Parameter gradients are complete either
    /// way; only the first layer's `dy·Wᵀ` product is trimmed, which pays
    /// off when just a few input columns feed trainable parameters (the
    /// learned-feature columns of Pitot's towers).
    ///
    /// # Panics
    ///
    /// Panics as [`Mlp::backward_with`], or if the window exceeds the input
    /// width.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_with_dx_cols(
        &self,
        params: &[f32],
        cache: &MlpCache,
        d_out: &Matrix,
        dx: &mut Matrix,
        grads: &mut [f32],
        scratch: &mut Scratch,
        dx_cols: std::ops::Range<usize>,
    ) {
        let n = self.layers.len();
        let mut dy = scratch.take_matrix(d_out.rows(), d_out.cols());
        dy.copy_from(d_out);
        for i in (0..n).rev() {
            // The hidden activation sits *after* layer i for all but the last.
            if i + 1 < n {
                self.hidden_act
                    .backward_matrix_inplace(&cache.pre[i], &mut dy);
                if let Some(norms) = &self.norms {
                    let dz = norms[i].backward(params, &cache.ln[i], &dy, grads);
                    dy.copy_from(&dz);
                }
            }
            if i > 0 {
                let mut dx_i = scratch.take_matrix(dy.rows(), self.layers[i].in_dim());
                self.layers[i].backward_into(params, &cache.inputs[i], &dy, &mut dx_i, grads);
                scratch.recycle_matrix(std::mem::replace(&mut dy, dx_i));
            } else {
                self.layers[0].backward_into_dx_cols(
                    params,
                    &cache.inputs[0],
                    &dy,
                    dx,
                    grads,
                    dx_cols.clone(),
                );
            }
        }
        scratch.recycle_matrix(dy);
    }

    /// Scales the output layer's parameters by `factor`.
    ///
    /// Residual-style models (like Pitot, which predicts a correction to a
    /// scaling baseline) converge faster and avoid wild initial predictions
    /// when the towers start near zero output.
    pub fn scale_output_layer(&self, params: &mut [f32], factor: f32) {
        if let Some(last) = self.layers.last() {
            for v in &mut params[last.range().as_range()] {
                *v *= factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{GradPlane, ParamStore};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(widths: &[usize], act: Activation, seed: u64) -> (Mlp, ParamStore) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = ParamStoreBuilder::new();
        let mlp = Mlp::new(widths, act, &mut rng, &mut b);
        (mlp, b.finish())
    }

    #[test]
    fn shapes_and_param_count() {
        let (mlp, store) = build(&[5, 8, 3], Activation::Gelu, 0);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.param_count(), 5 * 8 + 8 + 8 * 3 + 3);
        assert_eq!(store.len(), mlp.param_count());
        let (y, _) = mlp.forward(store.params(), &Matrix::zeros(2, 5));
        assert_eq!(y.shape(), (2, 3));
    }

    #[test]
    fn infer_matches_forward() {
        let (mlp, store) = build(&[4, 6, 2], Activation::Tanh, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let x = Matrix::randn(3, 4, &mut rng);
        let (y, _) = mlp.forward(store.params(), &x);
        assert_eq!(y, mlp.infer(store.params(), &x));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let (mlp, store) = build(&[3, 5, 4, 2], Activation::Gelu, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let x = Matrix::randn(6, 3, &mut rng);
        let loss = |params: &[f32], x: &Matrix| mlp.infer(params, x).sum();

        let (_, cache) = mlp.forward(store.params(), &x);
        let mut grads = GradPlane::zeros_like(&store);
        let dx = mlp.backward(
            store.params(),
            &cache,
            &Matrix::full(6, 2, 1.0),
            grads.as_mut_slice(),
        );

        let h = 1e-2f32;
        // Check a handful of plane offsets spread over every layer.
        let probes = [0usize, 7, 16, 20, 31, 40, store.len() - 1];
        for &k in &probes {
            let mut plus = store.clone();
            plus.params_mut()[k] += h;
            let mut minus = store.clone();
            minus.params_mut()[k] -= h;
            let num = (loss(plus.params(), &x) - loss(minus.params(), &x)) / (2.0 * h);
            let ana = grads.as_slice()[k];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "plane[{k}]: {num} vs {ana}"
            );
        }
        // Check input gradient.
        for &(r, c) in &[(0usize, 0usize), (5, 2)] {
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let num = (loss(store.params(), &xp) - loss(store.params(), &xm)) / (2.0 * h);
            assert!(
                (num - dx[(r, c)]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{r},{c}]"
            );
        }
    }

    #[test]
    fn layer_norm_variant_backward_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut b = ParamStoreBuilder::new();
        let mlp = Mlp::with_layer_norm(&[3, 6, 5, 2], Activation::Gelu, &mut rng, &mut b);
        let store = b.finish();
        assert!(mlp.has_layer_norm());
        assert_eq!(store.len(), mlp.param_count());
        let x = Matrix::randn(5, 3, &mut rng);
        let wts = Matrix::randn(5, 2, &mut rng);
        let loss = |params: &[f32], x: &Matrix| -> f32 {
            mlp.infer(params, x)
                .as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let (_, cache) = mlp.forward(store.params(), &x);
        let mut grads = GradPlane::zeros_like(&store);
        let dx = mlp.backward(store.params(), &cache, &wts, grads.as_mut_slice());

        // Directional derivative over the whole plane (incl. γ/β).
        let h = 1e-2f32;
        let mut plus = store.clone();
        let mut minus = store.clone();
        let mut analytic = 0.0f64;
        {
            let mut dir_rng = ChaCha8Rng::seed_from_u64(11);
            let p = plus.params_mut();
            let m = minus.params_mut();
            for (k, g) in grads.as_slice().iter().enumerate() {
                let dir: f32 = if rand::Rng::gen_bool(&mut dir_rng, 0.5) {
                    1.0
                } else {
                    -1.0
                };
                p[k] += h * dir;
                m[k] -= h * dir;
                analytic += (g * dir) as f64;
            }
        }
        let numeric = ((loss(plus.params(), &x) - loss(minus.params(), &x)) / (2.0 * h)) as f64;
        let denom = 1.0f64.max(analytic.abs()).max(numeric.abs());
        assert!(
            (analytic - numeric).abs() / denom < 5e-2,
            "directional derivative mismatch: analytic {analytic}, numeric {numeric}"
        );

        // Input gradient as well.
        for &(r, c) in &[(0usize, 0usize), (4, 2)] {
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let num = (loss(store.params(), &xp) - loss(store.params(), &xm)) / (2.0 * h);
            assert!(
                (num - dx[(r, c)]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{r},{c}]: {num} vs {}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn layer_norm_widens_the_plane_window() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut b = ParamStoreBuilder::new();
        let mlp = Mlp::with_layer_norm(&[4, 6, 3], Activation::Gelu, &mut rng, &mut b);
        let store = b.finish();
        // Param count includes γ/β for the one hidden layer.
        assert_eq!(mlp.param_count(), 4 * 6 + 6 + 6 * 3 + 3 + 2 * 6);
        assert_eq!(mlp.range().len, store.len());
    }

    #[test]
    fn checkpoints_without_norms_field_deserialize() {
        // Forward compatibility: descriptor JSON from before the layer-norm
        // extension has no `norms` key and must load as a norm-free MLP.
        let (mlp, store) = build(&[3, 4, 2], Activation::Gelu, 9);
        let mut json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&mlp).unwrap()).unwrap();
        json.as_object_mut().unwrap().remove("norms");
        let restored: Mlp = serde_json::from_value(json).unwrap();
        assert!(!restored.has_layer_norm());
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let x = Matrix::randn(2, 3, &mut rng);
        assert_eq!(
            mlp.infer(store.params(), &x),
            restored.infer(store.params(), &x)
        );
    }

    #[test]
    fn output_layer_scaling_shrinks_outputs() {
        let (mlp, mut store) = build(&[4, 8, 3], Activation::Gelu, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let x = Matrix::randn(10, 4, &mut rng);
        let before = mlp.infer(store.params(), &x).frobenius_norm();
        mlp.scale_output_layer(store.params_mut(), 0.1);
        let after = mlp.infer(store.params(), &x).frobenius_norm();
        assert!(
            (after - before * 0.1).abs() < 1e-4 * before,
            "{before} → {after}"
        );
    }

    #[test]
    fn two_networks_share_one_plane() {
        // The defining property of the flat plane: several networks live in
        // one store, their windows are disjoint, and gradients land in the
        // matching windows.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut b = ParamStoreBuilder::new();
        let first = Mlp::new(&[3, 4, 2], Activation::Relu, &mut rng, &mut b);
        let second = Mlp::new(&[2, 5, 1], Activation::Gelu, &mut rng, &mut b);
        let store = b.finish();
        assert_eq!(first.range().offset, 0);
        assert_eq!(second.range().offset, first.range().len);
        assert_eq!(store.len(), first.param_count() + second.param_count());

        let x = Matrix::randn(4, 3, &mut rng);
        let (y, cache) = first.forward(store.params(), &x);
        let mut grads = GradPlane::zeros_like(&store);
        first.backward(
            store.params(),
            &cache,
            &Matrix::full(4, 2, 1.0),
            grads.as_mut_slice(),
        );
        // First network's window is written, second's stays zero.
        assert!(grads.slice(first.range()).iter().any(|&g| g != 0.0));
        assert!(grads.slice(second.range()).iter().all(|&g| g == 0.0));
        assert_eq!(y.shape(), (4, 2));
    }
}
