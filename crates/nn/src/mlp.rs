//! Multi-layer perceptron: a stack of [`Linear`] layers with hidden
//! activations, optionally layer-normalized.

use crate::{Activation, LayerNorm, LayerNormCache, LayerNormGrads, Linear, LinearGrads};
use pitot_linalg::{Matrix, Scratch};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network `x → L₁ → [LN] → act → L₂ → [LN] → act → … → L_n`
/// (linear output).
///
/// The paper's embedding towers `f_w`, `f_p` are `Mlp`s with two hidden
/// layers and GELU activations (Sec 3.3); layer norm is an optional
/// extension knob (off in the paper's configuration).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_act: Activation,
    /// One layer norm per hidden layer, applied between the linear and the
    /// activation. `None` (and absent in old checkpoints) = disabled.
    #[serde(default)]
    norms: Option<Vec<LayerNorm>>,
}

/// Forward-pass cache: everything `Mlp::backward` needs.
///
/// Reusable: pass the same cache to [`Mlp::forward_with`] every step and the
/// buffers are recycled in place, making the steady-state forward pass
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// `inputs[i]` is the input to layer `i` (post-activation of layer `i−1`).
    inputs: Vec<Matrix>,
    /// `pre[i]` is the input to layer `i`'s hidden activation (the linear
    /// output, layer-normalized when norms are enabled; the last entry is
    /// the network output itself).
    pre: Vec<Matrix>,
    /// Per-hidden-layer layer-norm caches (empty when norms are disabled).
    ln: Vec<LayerNormCache>,
}

impl MlpCache {
    /// Creates an empty cache; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The network output of the last [`Mlp::forward_with`] pass.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has run yet.
    pub fn output(&self) -> &Matrix {
        self.pre
            .last()
            .expect("no forward pass has filled this cache")
    }
}

/// Gradients for every layer of an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpGrads {
    /// One gradient block per layer, first layer first.
    pub layers: Vec<LinearGrads>,
    /// Layer-norm gradients per hidden layer (empty when disabled).
    pub norms: Vec<LayerNormGrads>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths, e.g. `&[in, h1, h2, out]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new<R: Rng + ?Sized>(widths: &[usize], hidden_act: Activation, rng: &mut R) -> Self {
        assert!(
            widths.len() >= 2,
            "an MLP needs at least input and output widths"
        );
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Self {
            layers,
            hidden_act,
            norms: None,
        }
    }

    /// Like [`Mlp::new`] with layer normalization between every hidden
    /// linear and its activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn with_layer_norm<R: Rng + ?Sized>(
        widths: &[usize],
        hidden_act: Activation,
        rng: &mut R,
    ) -> Self {
        let mut mlp = Self::new(widths, hidden_act, rng);
        mlp.norms = Some(
            widths[1..widths.len() - 1]
                .iter()
                .map(|&w| LayerNorm::new(w))
                .collect(),
        );
        mlp
    }

    /// Whether hidden layers are layer-normalized.
    pub fn has_layer_norm(&self) -> bool {
        self.norms.is_some()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// The layers, first to last.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Hidden activation function.
    pub fn hidden_activation(&self) -> Activation {
        self.hidden_act
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        let ln: usize = self
            .norms
            .as_ref()
            .map_or(0, |ns| ns.iter().map(|n| 2 * n.dim()).sum());
        self.layers.iter().map(Linear::param_count).sum::<usize>() + ln
    }

    /// Forward pass returning the output and the cache for [`Mlp::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MlpCache) {
        let mut cache = MlpCache::new();
        self.forward_with(x, &mut cache);
        (cache.output().clone(), cache)
    }

    /// Forward pass into a reusable cache; the output is at
    /// [`MlpCache::output`]. Allocation-free once the cache buffers have
    /// capacity (except on the optional layer-norm path, which still
    /// allocates its per-step statistics).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_with(&self, x: &Matrix, cache: &mut MlpCache) {
        let n = self.layers.len();
        cache.inputs.resize_with(n, || Matrix::zeros(0, 0));
        cache.pre.resize_with(n, || Matrix::zeros(0, 0));
        cache.ln.clear();
        cache.inputs[0].copy_from(x);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(&cache.inputs[i], &mut cache.pre[i]);
            if i + 1 < n {
                if let Some(norms) = &self.norms {
                    let (zn, ln_cache) = norms[i].forward(&cache.pre[i]);
                    cache.pre[i] = zn;
                    cache.ln.push(ln_cache);
                }
                self.hidden_act
                    .apply_matrix_into(&cache.pre[i], &mut cache.inputs[i + 1]);
            }
        }
    }

    /// Output without building a cache (inference path).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut cur = x.clone();
        let mut next = Matrix::zeros(0, 0);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(&cur, &mut next);
            if i + 1 < n {
                if let Some(norms) = &self.norms {
                    next = norms[i].infer(&next);
                }
                self.hidden_act.apply_matrix_inplace(&mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Backward pass. Returns the gradient with respect to the input and the
    /// per-layer parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the cached forward shapes.
    pub fn backward(&self, cache: &MlpCache, d_out: &Matrix) -> (Matrix, MlpGrads) {
        let mut grads = MlpGrads::zeros_like(self);
        let mut dx = Matrix::zeros(0, 0);
        let mut scratch = Scratch::new();
        self.backward_with(cache, d_out, &mut dx, &mut grads, &mut scratch);
        (dx, grads)
    }

    /// Backward pass into caller-owned buffers: `dx` receives the input
    /// gradient, `grads` (shaped by [`MlpGrads::zeros_like`]) is overwritten,
    /// and intermediate layer gradients recycle through `scratch`.
    /// Allocation-free once every buffer is warm (layer-norm path excepted).
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the cached forward shapes or `grads`
    /// is shaped for a different network.
    pub fn backward_with(
        &self,
        cache: &MlpCache,
        d_out: &Matrix,
        dx: &mut Matrix,
        grads: &mut MlpGrads,
        scratch: &mut Scratch,
    ) {
        let n = self.layers.len();
        assert_eq!(grads.layers.len(), n, "gradient blocks per layer");
        if self.norms.is_some() {
            assert_eq!(grads.norms.len(), n - 1, "layer-norm gradient blocks");
        }
        let mut dy = scratch.take_matrix(d_out.rows(), d_out.cols());
        dy.copy_from(d_out);
        for i in (0..n).rev() {
            // The hidden activation sits *after* layer i for all but the last.
            if i + 1 < n {
                self.hidden_act
                    .backward_matrix_inplace(&cache.pre[i], &mut dy);
                if let Some(norms) = &self.norms {
                    let (dz, g) = norms[i].backward(&cache.ln[i], &dy);
                    grads.norms[i] = g;
                    dy.copy_from(&dz);
                }
            }
            if i > 0 {
                let mut dx_i = scratch.take_matrix(dy.rows(), self.layers[i].in_dim());
                self.layers[i].backward_into(
                    &cache.inputs[i],
                    &dy,
                    &mut dx_i,
                    &mut grads.layers[i],
                );
                scratch.recycle_matrix(std::mem::replace(&mut dy, dx_i));
            } else {
                self.layers[0].backward_into(&cache.inputs[0], &dy, dx, &mut grads.layers[0]);
            }
        }
        scratch.recycle_matrix(dy);
    }

    /// Mutable flat parameter views in a stable order (layer 0 weight, bias,
    /// …, then layer-norm γ/β blocks when enabled).
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        let mut out: Vec<&mut [f32]> = self
            .layers
            .iter_mut()
            .flat_map(Linear::param_slices_mut)
            .collect();
        if let Some(norms) = &mut self.norms {
            for n in norms {
                out.extend(n.param_slices_mut());
            }
        }
        out
    }

    /// Scales the output layer's parameters by `factor`.
    ///
    /// Residual-style models (like Pitot, which predicts a correction to a
    /// scaling baseline) converge faster and avoid wild initial predictions
    /// when the towers start near zero output.
    pub fn scale_output_layer(&mut self, factor: f32) {
        if let Some(last) = self.layers.last_mut() {
            for block in last.param_slices_mut() {
                for v in block {
                    *v *= factor;
                }
            }
        }
    }
}

impl MlpGrads {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        let norms = mlp.norms.as_ref().map_or_else(Vec::new, |ns| {
            ns.iter()
                .map(|n| LayerNormGrads {
                    gamma: vec![0.0; n.dim()],
                    beta: vec![0.0; n.dim()],
                })
                .collect()
        });
        Self {
            layers: mlp.layers.iter().map(LinearGrads::zeros_like).collect(),
            norms,
        }
    }

    /// Accumulates another gradient set of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if layer counts or shapes differ.
    pub fn accumulate(&mut self, other: &MlpGrads) {
        assert_eq!(self.layers.len(), other.layers.len());
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.accumulate(b);
        }
        assert_eq!(self.norms.len(), other.norms.len());
        for (a, b) in self.norms.iter_mut().zip(&other.norms) {
            for (x, y) in a.gamma.iter_mut().zip(&b.gamma) {
                *x += y;
            }
            for (x, y) in a.beta.iter_mut().zip(&b.beta) {
                *x += y;
            }
        }
    }

    /// Flat gradient views matching [`Mlp::param_slices_mut`] order.
    pub fn grad_slices(&self) -> Vec<&[f32]> {
        let mut out: Vec<&[f32]> = self
            .layers
            .iter()
            .flat_map(LinearGrads::grad_slices)
            .collect();
        for n in &self.norms {
            out.push(&n.gamma);
            out.push(&n.beta);
        }
        out
    }

    /// Scales all gradients by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for g in &mut self.layers {
            g.scale(alpha);
        }
        for n in &mut self.norms {
            for v in n.gamma.iter_mut().chain(n.beta.iter_mut()) {
                *v *= alpha;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mlp = Mlp::new(&[5, 8, 3], Activation::Gelu, &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.param_count(), 5 * 8 + 8 + 8 * 3 + 3);
        let (y, _) = mlp.forward(&Matrix::zeros(2, 5));
        assert_eq!(y.shape(), (2, 3));
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 6, 2], Activation::Tanh, &mut rng);
        let x = Matrix::randn(3, 4, &mut rng);
        let (y, _) = mlp.forward(&x);
        assert_eq!(y, mlp.infer(&x));
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mlp = Mlp::new(&[3, 5, 4, 2], Activation::Gelu, &mut rng);
        let x = Matrix::randn(6, 3, &mut rng);
        let loss = |m: &Mlp, x: &Matrix| m.infer(x).sum();

        let (_, cache) = mlp.forward(&x);
        let (dx, grads) = mlp.backward(&cache, &Matrix::full(6, 2, 1.0));

        let h = 1e-2f32;
        // Check a few weight entries in each layer.
        for li in 0..3 {
            for &(i, j) in &[(0usize, 0usize), (1, 1)] {
                let mut mp = mlp.clone();
                mp.layers[li].param_slices_mut()[0][i * mlp.layers[li].out_dim() + j] += h;
                let mut mm = mlp.clone();
                mm.layers[li].param_slices_mut()[0][i * mlp.layers[li].out_dim() + j] -= h;
                let num = (loss(&mp, &x) - loss(&mm, &x)) / (2.0 * h);
                let ana = grads.layers[li].weight[(i, j)];
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                    "layer {li} dW[{i},{j}]: {num} vs {ana}"
                );
            }
        }
        // Check input gradient.
        for &(r, c) in &[(0usize, 0usize), (5, 2)] {
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let num = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * h);
            assert!(
                (num - dx[(r, c)]).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{r},{c}]"
            );
        }
    }

    #[test]
    fn layer_norm_variant_backward_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mlp = Mlp::with_layer_norm(&[3, 6, 5, 2], Activation::Gelu, &mut rng);
        assert!(mlp.has_layer_norm());
        let x = Matrix::randn(5, 3, &mut rng);
        let wts = Matrix::randn(5, 2, &mut rng);
        let loss = |m: &Mlp, x: &Matrix| -> f32 {
            m.infer(x)
                .as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let (_, cache) = mlp.forward(&x);
        let (dx, grads) = mlp.backward(&cache, &wts);

        // Directional derivative over all parameter blocks (incl. γ/β).
        let h = 1e-2f32;
        let g_slices = grads.grad_slices();
        let mut plus = mlp.clone();
        let mut minus = mlp.clone();
        let mut analytic = 0.0f64;
        {
            let mut dir_rng = ChaCha8Rng::seed_from_u64(11);
            let mut p = plus.param_slices_mut();
            let mut m = minus.param_slices_mut();
            for (bi, g) in g_slices.iter().enumerate() {
                for k in 0..g.len() {
                    let dir: f32 = if rand::Rng::gen_bool(&mut dir_rng, 0.5) {
                        1.0
                    } else {
                        -1.0
                    };
                    p[bi][k] += h * dir;
                    m[bi][k] -= h * dir;
                    analytic += (g[k] * dir) as f64;
                }
            }
        }
        let numeric = ((loss(&plus, &x) - loss(&minus, &x)) / (2.0 * h)) as f64;
        let denom = 1.0f64.max(analytic.abs()).max(numeric.abs());
        assert!(
            (analytic - numeric).abs() / denom < 5e-2,
            "directional derivative mismatch: analytic {analytic}, numeric {numeric}"
        );

        // Input gradient as well.
        for &(r, c) in &[(0usize, 0usize), (4, 2)] {
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let num = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * h);
            assert!(
                (num - dx[(r, c)]).abs() < 3e-2 * (1.0 + num.abs()),
                "dx[{r},{c}]: {num} vs {}",
                dx[(r, c)]
            );
        }
    }

    #[test]
    fn layer_norm_param_blocks_align() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut mlp = Mlp::with_layer_norm(&[4, 6, 3], Activation::Gelu, &mut rng);
        let grads = MlpGrads::zeros_like(&mlp);
        let p = mlp.param_slices_mut();
        let g = grads.grad_slices();
        assert_eq!(p.len(), g.len());
        for (ps, gs) in p.iter().zip(&g) {
            assert_eq!(ps.len(), gs.len());
        }
        // Param count includes γ/β for the one hidden layer.
        assert_eq!(mlp.param_count(), 4 * 6 + 6 + 6 * 3 + 3 + 2 * 6);
    }

    #[test]
    fn checkpoints_without_norms_field_deserialize() {
        // Forward compatibility: JSON from before the layer-norm extension
        // has no `norms` key and must load as a norm-free MLP.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mlp = Mlp::new(&[3, 4, 2], Activation::Gelu, &mut rng);
        let mut json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&mlp).unwrap()).unwrap();
        json.as_object_mut().unwrap().remove("norms");
        let restored: Mlp = serde_json::from_value(json).unwrap();
        assert!(!restored.has_layer_norm());
        let x = Matrix::randn(2, 3, &mut rng);
        assert_eq!(mlp.infer(&x), restored.infer(&x));
    }

    #[test]
    fn output_layer_scaling_shrinks_outputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut mlp = Mlp::new(&[4, 8, 3], Activation::Gelu, &mut rng);
        let x = Matrix::randn(10, 4, &mut rng);
        let before = mlp.infer(&x).frobenius_norm();
        mlp.scale_output_layer(0.1);
        let after = mlp.infer(&x).frobenius_norm();
        assert!(
            (after - before * 0.1).abs() < 1e-4 * before,
            "{before} → {after}"
        );
    }

    #[test]
    fn grad_slices_align_with_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[3, 4, 2], Activation::Relu, &mut rng);
        let grads = MlpGrads::zeros_like(&mlp);
        let p = mlp.param_slices_mut();
        let g = grads.grad_slices();
        assert_eq!(p.len(), g.len());
        for (ps, gs) in p.iter().zip(&g) {
            assert_eq!(ps.len(), gs.len());
        }
    }
}
