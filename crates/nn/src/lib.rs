//! Neural-network building blocks for the Pitot reproduction.
//!
//! Pitot's two-tower model (paper Sec 3.3) is small enough — two MLPs with two
//! 128-unit hidden layers — that a full autodiff engine would be overkill.
//! This crate instead provides *manually differentiated* layers whose
//! backward passes are verified against finite differences in the test suite:
//!
//! - [`ParamStore`]: the **flat parameter plane** — every trainable scalar
//!   of a model in one contiguous buffer, with a matching [`GradPlane`] and
//!   contiguous AdaMax moment planes,
//! - [`Linear`]: dense layer viewing windows of the plane,
//! - [`Activation`]: GELU / leaky-ReLU / ReLU / tanh / identity,
//! - [`Mlp`]: a stack of linears with hidden activations,
//! - [`AdaMax`]: the l∞ Adam variant the paper trains with (App B.3), fused
//!   into a single SIMD pass over the planes,
//! - loss functions: squared error and the pinball (quantile) loss of Eq 13,
//! - [`grad_check`]: finite-difference gradient checking used across the
//!   workspace's tests.
//!
//! # Examples
//!
//! ```
//! use pitot_linalg::Matrix;
//! use pitot_nn::{Activation, AdaMax, GradPlane, Mlp, ParamStoreBuilder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut builder = ParamStoreBuilder::new();
//! let mlp = Mlp::new(&[4, 16, 2], Activation::Gelu, &mut rng, &mut builder);
//! let mut store = builder.finish();
//! let x = Matrix::randn(8, 4, &mut rng);
//! let (y, cache) = mlp.forward(store.params(), &x);
//! assert_eq!(y.shape(), (8, 2));
//! // Backprop a dummy gradient and take one fused optimizer step over the
//! // whole plane.
//! let mut grads = GradPlane::zeros_like(&store);
//! mlp.backward(store.params(), &cache, &Matrix::full(8, 2, 1.0), grads.as_mut_slice());
//! let mut opt = AdaMax::new(1e-3);
//! opt.step(&mut [store.params_mut()], &[grads.as_slice()]);
//! ```

// Every public item in this crate is part of the documented layer/optimizer
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod activation;
mod dropout;
mod grad_check;
mod layernorm;
mod linear;
mod loss;
mod mlp;
mod optim;
mod quant;
mod schedule;
mod store;

pub use activation::Activation;
pub use dropout::{Dropout, DropoutMask};
pub use grad_check::{grad_check, numerical_grad};
pub use layernorm::{LayerNorm, LayerNormCache};
pub use linear::Linear;
pub use loss::{
    pinball_loss, pinball_loss_into, squared_loss, squared_loss_into, weighted_pinball_loss,
    weighted_squared_loss,
};
pub use mlp::{Mlp, MlpCache};
pub use optim::{AdaMax, Adam, Optimizer, SgdMomentum};
pub use quant::QuantizedMlp;
pub use schedule::LrSchedule;
pub use store::{GradPlane, ParamRange, ParamStore, ParamStoreBuilder};
