//! Inverted dropout.
//!
//! Pitot itself does not regularize with dropout (its capacity is small and
//! φ provides per-entity slack), but the hyperparameter harness uses dropout
//! to probe whether the two-tower model overfits at large embedding
//! dimensions — one of the "future work" regularization knobs.

use pitot_linalg::Matrix;
use rand::Rng;

/// An inverted-dropout layer: activations are zeroed with probability `p`
/// during training and scaled by `1/(1−p)` so inference needs no rescaling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    p: f32,
}

/// The keep/scale mask recorded by a training-mode forward pass.
#[derive(Debug, Clone)]
pub struct DropoutMask {
    mask: Matrix,
}

impl Dropout {
    /// Creates a layer dropping activations with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability outside [0,1)");
        Self { p }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Training-mode forward pass: returns the dropped/rescaled activations
    /// and the mask needed by [`Dropout::backward`].
    pub fn forward<R: Rng + ?Sized>(&self, x: &Matrix, rng: &mut R) -> (Matrix, DropoutMask) {
        if self.p == 0.0 {
            return (
                x.clone(),
                DropoutMask {
                    mask: Matrix::full(x.rows(), x.cols(), 1.0),
                },
            );
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let mut mask = Matrix::zeros(x.rows(), x.cols());
        for v in mask.as_mut_slice() {
            if rng.gen_range(0.0f32..1.0) >= self.p {
                *v = keep_scale;
            }
        }
        let mut y = x.clone();
        for (yv, mv) in y.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *yv *= mv;
        }
        (y, DropoutMask { mask })
    }

    /// Inference-mode forward pass (identity under inverted dropout).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    /// Backward pass through the recorded mask.
    ///
    /// # Panics
    ///
    /// Panics if `d_out`'s shape differs from the forward activation's.
    pub fn backward(&self, mask: &DropoutMask, d_out: &Matrix) -> Matrix {
        assert_eq!(d_out.shape(), mask.mask.shape(), "gradient shape mismatch");
        let mut dx = d_out.clone();
        for (g, m) in dx.as_mut_slice().iter_mut().zip(mask.mask.as_slice()) {
            *g *= m;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_probability_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = Matrix::randn(4, 8, &mut rng);
        let d = Dropout::new(0.0);
        let (y, mask) = d.forward(&x, &mut rng);
        assert_eq!(y.as_slice(), x.as_slice());
        let g = Matrix::full(4, 8, 1.0);
        assert_eq!(d.backward(&mask, &g).as_slice(), g.as_slice());
    }

    #[test]
    fn drops_roughly_p_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Matrix::full(100, 100, 1.0);
        let d = Dropout::new(0.3);
        let (y, _) = d.forward(&x, &mut rng);
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = dropped as f32 / y.len() as f32;
        assert!((frac - 0.3).abs() < 0.02, "dropped fraction {frac}");
    }

    #[test]
    fn preserves_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Matrix::full(200, 200, 1.0);
        let d = Dropout::new(0.5);
        let (y, _) = d.forward(&x, &mut rng);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.02, "inverted dropout mean {mean}");
    }

    #[test]
    fn backward_routes_gradients_through_kept_units() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Matrix::full(10, 10, 2.0);
        let d = Dropout::new(0.4);
        let (y, mask) = d.forward(&x, &mut rng);
        let g = Matrix::full(10, 10, 1.0);
        let dx = d.backward(&mask, &g);
        // Gradient is zero exactly where the activation was dropped, and the
        // keep-scale elsewhere.
        for (yv, gv) in y.as_slice().iter().zip(dx.as_slice()) {
            if *yv == 0.0 {
                assert_eq!(*gv, 0.0);
            } else {
                assert!((*gv - 1.0 / 0.6).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn infer_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let x = Matrix::randn(5, 5, &mut rng);
        assert_eq!(Dropout::new(0.9).infer(&x).as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "outside [0,1)")]
    fn rejects_p_of_one() {
        Dropout::new(1.0);
    }
}
