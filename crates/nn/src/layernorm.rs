//! Layer normalization with manual backprop.
//!
//! Normalizes each row (one sample's activations) to zero mean and unit
//! variance, then applies a learned affine `γ ⊙ x̂ + β`. Available to the
//! hyperparameter harness for tower-stability experiments at large depth;
//! like every layer in this crate its backward pass is verified against
//! finite differences.

use pitot_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A layer-normalization layer over feature dimension `dim`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

/// Cached statistics from a forward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalized activations x̂ (pre-affine).
    normalized: Matrix,
    /// Per-row 1/σ.
    inv_std: Vec<f32>,
}

/// Parameter gradients from a backward pass.
#[derive(Debug, Clone)]
pub struct LayerNormGrads {
    /// ∂L/∂γ.
    pub gamma: Vec<f32>,
    /// ∂L/∂β.
    pub beta: Vec<f32>,
}

impl LayerNorm {
    /// Identity-initialized layer norm (`γ = 1`, `β = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "layer norm dimension must be positive");
        Self {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Forward pass; returns the output and the backprop cache.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        assert_eq!(x.cols(), self.dim(), "input width mismatch");
        let (n, d) = x.shape();
        let mut normalized = Matrix::zeros(n, d);
        let mut out = Matrix::zeros(n, d);
        let mut inv_std = Vec::with_capacity(n);
        for r in 0..n {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            let nr = normalized.row_mut(r);
            for (c, &v) in row.iter().enumerate() {
                nr[c] = (v - mean) * is;
            }
            let or = out.row_mut(r);
            for c in 0..d {
                or[c] = self.gamma[c] * nr[c] + self.beta[c];
            }
        }
        (
            out,
            LayerNormCache {
                normalized,
                inv_std,
            },
        )
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.forward(x).0
    }

    /// Backward pass: returns `∂L/∂x` and the parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `d_out`'s shape differs from the cached activation's.
    pub fn backward(&self, cache: &LayerNormCache, d_out: &Matrix) -> (Matrix, LayerNormGrads) {
        assert_eq!(
            d_out.shape(),
            cache.normalized.shape(),
            "gradient shape mismatch"
        );
        let (n, d) = d_out.shape();
        let mut d_gamma = vec![0.0f32; d];
        let mut d_beta = vec![0.0f32; d];
        let mut dx = Matrix::zeros(n, d);

        for r in 0..n {
            let go = d_out.row(r);
            let xh = cache.normalized.row(r);
            // Affine gradients.
            for c in 0..d {
                d_gamma[c] += go[c] * xh[c];
                d_beta[c] += go[c];
            }
            // d x̂ = γ ⊙ d_out; then the standard LN input gradient:
            // dx = (1/σ)(d x̂ − mean(d x̂) − x̂ · mean(d x̂ ⊙ x̂)).
            let dxh: Vec<f32> = (0..d).map(|c| self.gamma[c] * go[c]).collect();
            let mean_dxh: f32 = dxh.iter().sum::<f32>() / d as f32;
            let mean_dxh_xh: f32 = dxh.iter().zip(xh).map(|(a, b)| a * b).sum::<f32>() / d as f32;
            let is = cache.inv_std[r];
            let dr = dx.row_mut(r);
            for c in 0..d {
                dr[c] = is * (dxh[c] - mean_dxh - xh[c] * mean_dxh_xh);
            }
        }
        (
            dx,
            LayerNormGrads {
                gamma: d_gamma,
                beta: d_beta,
            },
        )
    }

    /// Mutable parameter blocks in optimizer order (γ then β).
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.gamma.as_mut_slice(), self.beta.as_mut_slice()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::numerical_grad;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn output_rows_are_normalized_at_identity_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = Matrix::randn(6, 16, &mut rng);
        let ln = LayerNorm::new(16);
        let (y, _) = ln.forward(&x);
        for r in 0..6 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn scale_invariance() {
        // LN(c·x) == LN(x) for c > 0 at identity parameters.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Matrix::randn(3, 8, &mut rng);
        let mut x5 = x.clone();
        for v in x5.as_mut_slice() {
            *v *= 5.0;
        }
        let ln = LayerNorm::new(8);
        let (a, _) = ln.forward(&x);
        let (b, _) = ln.forward(&x5);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Matrix::randn(4, 6, &mut rng);
        let mut ln = LayerNorm::new(6);
        // Non-trivial affine parameters.
        for (i, g) in ln.gamma.iter_mut().enumerate() {
            *g = 1.0 + 0.1 * i as f32;
        }
        ln.beta[2] = 0.5;

        // Loss = sum of outputs weighted by a fixed random matrix.
        let wts = Matrix::randn(4, 6, &mut rng);
        let loss = |flat: &[f32]| -> f32 {
            let xm = Matrix::from_vec(4, 6, flat.to_vec());
            let (y, _) = ln.forward(&xm);
            y.as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let (_, cache) = ln.forward(&x);
        let (dx, _) = ln.backward(&cache, &wts);
        let num = numerical_grad(x.as_slice(), 1e-2, loss);
        for (a, n) in dx.as_slice().iter().zip(&num) {
            assert!(
                (a - n).abs() < 2e-2 * (1.0 + n.abs()),
                "analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Matrix::randn(5, 4, &mut rng);
        let ln = LayerNorm::new(4);
        let wts = Matrix::randn(5, 4, &mut rng);
        let (_, cache) = ln.forward(&x);
        let (_, grads) = ln.backward(&cache, &wts);

        let eps = 1e-2f32;
        for c in 0..4 {
            for (block, analytic) in [(0usize, grads.gamma[c]), (1, grads.beta[c])] {
                let mut lo = ln.clone();
                let mut hi = ln.clone();
                if block == 0 {
                    lo.gamma[c] -= eps;
                    hi.gamma[c] += eps;
                } else {
                    lo.beta[c] -= eps;
                    hi.beta[c] += eps;
                }
                let f = |l: &LayerNorm| -> f32 {
                    let (y, _) = l.forward(&x);
                    y.as_slice()
                        .iter()
                        .zip(wts.as_slice())
                        .map(|(a, b)| a * b)
                        .sum()
                };
                let numeric = (f(&hi) - f(&lo)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "block {block} col {c}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn constant_rows_stay_finite() {
        let x = Matrix::full(2, 8, 3.0);
        let ln = LayerNorm::new(8);
        let (y, _) = ln.forward(&x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let x = Matrix::zeros(2, 3);
        LayerNorm::new(4).forward(&x);
    }
}
