//! Layer normalization with manual backprop, parameterized by windows of
//! the flat parameter plane.
//!
//! Normalizes each row (one sample's activations) to zero mean and unit
//! variance, then applies a learned affine `γ ⊙ x̂ + β`. Available to the
//! hyperparameter harness for tower-stability experiments at large depth;
//! like every layer in this crate its backward pass is verified against
//! finite differences.

use crate::store::{ParamRange, ParamStoreBuilder};
use pitot_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A layer-normalization layer over feature dimension `dim`.
///
/// `γ` and `β` are windows of the shared [`crate::ParamStore`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: ParamRange,
    beta: ParamRange,
    eps: f32,
    dim: usize,
}

/// Cached statistics from a forward pass.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    /// Normalized activations x̂ (pre-affine).
    normalized: Matrix,
    /// Per-row 1/σ.
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Allocates an identity-initialized layer norm (`γ = 1`, `β = 0`) in
    /// `store`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, store: &mut ParamStoreBuilder) -> Self {
        assert!(dim > 0, "layer norm dimension must be positive");
        Self {
            gamma: store.alloc_full(dim, 1.0),
            beta: store.alloc(dim),
            eps: 1e-5,
            dim,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The plane window covering γ then β.
    pub fn range(&self) -> ParamRange {
        self.gamma.join(self.beta)
    }

    /// Forward pass; returns the output and the backprop cache.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    pub fn forward(&self, params: &[f32], x: &Matrix) -> (Matrix, LayerNormCache) {
        assert_eq!(x.cols(), self.dim, "input width mismatch");
        let gamma = &params[self.gamma.as_range()];
        let beta = &params[self.beta.as_range()];
        let (n, d) = x.shape();
        let mut normalized = Matrix::zeros(n, d);
        let mut out = Matrix::zeros(n, d);
        let mut inv_std = Vec::with_capacity(n);
        for r in 0..n {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + self.eps).sqrt();
            inv_std.push(is);
            let nr = normalized.row_mut(r);
            for (c, &v) in row.iter().enumerate() {
                nr[c] = (v - mean) * is;
            }
            let or = out.row_mut(r);
            for c in 0..d {
                or[c] = gamma[c] * nr[c] + beta[c];
            }
        }
        (
            out,
            LayerNormCache {
                normalized,
                inv_std,
            },
        )
    }

    /// Inference-only forward pass.
    pub fn infer(&self, params: &[f32], x: &Matrix) -> Matrix {
        self.forward(params, x).0
    }

    /// Backward pass: returns `∂L/∂x`; `∂L/∂γ` and `∂L/∂β` are written
    /// (overwriting) into this layer's windows of the gradient plane.
    ///
    /// # Panics
    ///
    /// Panics if `d_out`'s shape differs from the cached activation's.
    pub fn backward(
        &self,
        params: &[f32],
        cache: &LayerNormCache,
        d_out: &Matrix,
        grads: &mut [f32],
    ) -> Matrix {
        assert_eq!(
            d_out.shape(),
            cache.normalized.shape(),
            "gradient shape mismatch"
        );
        let gamma = &params[self.gamma.as_range()];
        let (n, d) = d_out.shape();
        let mut dx = Matrix::zeros(n, d);
        grads[self.gamma.as_range()].fill(0.0);
        grads[self.beta.as_range()].fill(0.0);

        let mut dxh = vec![0.0f32; d];
        for r in 0..n {
            let go = d_out.row(r);
            let xh = cache.normalized.row(r);
            // Affine gradients.
            {
                let d_gamma = &mut grads[self.gamma.as_range()];
                for c in 0..d {
                    d_gamma[c] += go[c] * xh[c];
                }
            }
            {
                let d_beta = &mut grads[self.beta.as_range()];
                for c in 0..d {
                    d_beta[c] += go[c];
                }
            }
            // d x̂ = γ ⊙ d_out; then the standard LN input gradient:
            // dx = (1/σ)(d x̂ − mean(d x̂) − x̂ · mean(d x̂ ⊙ x̂)).
            for c in 0..d {
                dxh[c] = gamma[c] * go[c];
            }
            let mean_dxh: f32 = dxh.iter().sum::<f32>() / d as f32;
            let mean_dxh_xh: f32 = dxh.iter().zip(xh).map(|(a, b)| a * b).sum::<f32>() / d as f32;
            let is = cache.inv_std[r];
            let dr = dx.row_mut(r);
            for c in 0..d {
                dr[c] = is * (dxh[c] - mean_dxh - xh[c] * mean_dxh_xh);
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad_check::numerical_grad;
    use crate::store::{GradPlane, ParamStore};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(dim: usize) -> (LayerNorm, ParamStore) {
        let mut b = ParamStoreBuilder::new();
        let ln = LayerNorm::new(dim, &mut b);
        (ln, b.finish())
    }

    #[test]
    fn output_rows_are_normalized_at_identity_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = Matrix::randn(6, 16, &mut rng);
        let (ln, store) = build(16);
        let (y, _) = ln.forward(store.params(), &x);
        for r in 0..6 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn scale_invariance() {
        // LN(c·x) == LN(x) for c > 0 at identity parameters.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Matrix::randn(3, 8, &mut rng);
        let mut x5 = x.clone();
        for v in x5.as_mut_slice() {
            *v *= 5.0;
        }
        let (ln, store) = build(8);
        let (a, _) = ln.forward(store.params(), &x);
        let (b, _) = ln.forward(store.params(), &x5);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Matrix::randn(4, 6, &mut rng);
        let (ln, mut store) = build(6);
        // Non-trivial affine parameters.
        for (i, g) in store.slice_mut(ln.gamma).iter_mut().enumerate() {
            *g = 1.0 + 0.1 * i as f32;
        }
        store.slice_mut(ln.beta)[2] = 0.5;

        // Loss = sum of outputs weighted by a fixed random matrix.
        let wts = Matrix::randn(4, 6, &mut rng);
        let loss = |flat: &[f32]| -> f32 {
            let xm = Matrix::from_vec(4, 6, flat.to_vec());
            let (y, _) = ln.forward(store.params(), &xm);
            y.as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let (_, cache) = ln.forward(store.params(), &x);
        let mut grads = GradPlane::zeros_like(&store);
        let dx = ln.backward(store.params(), &cache, &wts, grads.as_mut_slice());
        let num = numerical_grad(x.as_slice(), 1e-2, loss);
        for (a, n) in dx.as_slice().iter().zip(&num) {
            assert!(
                (a - n).abs() < 2e-2 * (1.0 + n.abs()),
                "analytic {a} vs numeric {n}"
            );
        }
    }

    #[test]
    fn parameter_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Matrix::randn(5, 4, &mut rng);
        let (ln, store) = build(4);
        let wts = Matrix::randn(5, 4, &mut rng);
        let (_, cache) = ln.forward(store.params(), &x);
        let mut grads = GradPlane::zeros_like(&store);
        ln.backward(store.params(), &cache, &wts, grads.as_mut_slice());

        let eps = 1e-2f32;
        let f = |params: &[f32]| -> f32 {
            let (y, _) = ln.forward(params, &x);
            y.as_slice()
                .iter()
                .zip(wts.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for k in 0..store.len() {
            let mut hi = store.clone();
            hi.params_mut()[k] += eps;
            let mut lo = store.clone();
            lo.params_mut()[k] -= eps;
            let numeric = (f(hi.params()) - f(lo.params())) / (2.0 * eps);
            let analytic = grads.as_slice()[k];
            assert!(
                (analytic - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                "plane[{k}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn constant_rows_stay_finite() {
        let x = Matrix::full(2, 8, 3.0);
        let (ln, store) = build(8);
        let (y, _) = ln.forward(store.params(), &x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let x = Matrix::zeros(2, 3);
        let (ln, store) = build(4);
        ln.forward(store.params(), &x);
    }
}
