//! Learning-rate schedules.
//!
//! The paper trains at a constant 1e-3 (App B.3); schedules exist for the
//! optimizer ablation and for the online-learning extension, where a short
//! warm restart at a reduced rate adapts a deployed model without washing
//! out what it already knows.

use serde::{Deserialize, Serialize};

/// A deterministic learning-rate schedule over optimizer steps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// The base rate forever (the paper's setting).
    Constant,
    /// Multiply by `factor` every `every` steps.
    StepDecay {
        /// Steps between decays.
        every: usize,
        /// Multiplicative decay per stage (in `(0, 1]`).
        factor: f32,
    },
    /// Cosine annealing from the base rate to `min_frac · base` over
    /// `total_steps`, constant afterwards.
    Cosine {
        /// Steps over which the cosine runs.
        total_steps: usize,
        /// Final rate as a fraction of the base rate.
        min_frac: f32,
    },
    /// Linear warmup over `warmup_steps` followed by cosine annealing to
    /// `min_frac · base` at `total_steps`.
    WarmupCosine {
        /// Linear ramp length.
        warmup_steps: usize,
        /// Total schedule length (≥ warmup).
        total_steps: usize,
        /// Final rate as a fraction of the base rate.
        min_frac: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (0-based) for a given base rate.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero periods, factors outside range,
    /// warmup longer than total).
    pub fn at(&self, step: usize, base_lr: f32) -> f32 {
        assert!(base_lr > 0.0, "base learning rate must be positive");
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::StepDecay { every, factor } => {
                assert!(every > 0, "decay period must be positive");
                assert!(factor > 0.0 && factor <= 1.0, "decay factor outside (0,1]");
                base_lr * factor.powi((step / every) as i32)
            }
            LrSchedule::Cosine {
                total_steps,
                min_frac,
            } => {
                assert!(total_steps > 0, "cosine length must be positive");
                assert!((0.0..=1.0).contains(&min_frac), "min_frac outside [0,1]");
                let t = (step as f32 / total_steps as f32).min(1.0);
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                base_lr * (min_frac + (1.0 - min_frac) * cos)
            }
            LrSchedule::WarmupCosine {
                warmup_steps,
                total_steps,
                min_frac,
            } => {
                assert!(warmup_steps <= total_steps, "warmup exceeds total");
                if step < warmup_steps {
                    return base_lr * (step + 1) as f32 / warmup_steps as f32;
                }
                let rest = total_steps - warmup_steps;
                LrSchedule::Cosine {
                    total_steps: rest.max(1),
                    min_frac,
                }
                .at(step - warmup_steps, base_lr)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_constant() {
        for step in [0usize, 10, 10_000] {
            assert_eq!(LrSchedule::Constant.at(step, 1e-3), 1e-3);
        }
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = LrSchedule::StepDecay {
            every: 100,
            factor: 0.5,
        };
        assert_eq!(s.at(0, 1.0), 1.0);
        assert_eq!(s.at(99, 1.0), 1.0);
        assert_eq!(s.at(100, 1.0), 0.5);
        assert_eq!(s.at(250, 1.0), 0.25);
    }

    #[test]
    fn cosine_starts_at_base_and_ends_at_min() {
        let s = LrSchedule::Cosine {
            total_steps: 1000,
            min_frac: 0.1,
        };
        assert!((s.at(0, 1.0) - 1.0).abs() < 1e-6);
        assert!((s.at(1000, 1.0) - 0.1).abs() < 1e-5);
        assert!((s.at(5000, 1.0) - 0.1).abs() < 1e-5, "holds at the floor");
        // Midpoint is the average of the endpoints.
        assert!((s.at(500, 1.0) - 0.55).abs() < 1e-5);
    }

    #[test]
    fn warmup_ramps_linearly_then_anneals() {
        let s = LrSchedule::WarmupCosine {
            warmup_steps: 10,
            total_steps: 110,
            min_frac: 0.0,
        };
        assert!((s.at(0, 1.0) - 0.1).abs() < 1e-6);
        assert!((s.at(4, 1.0) - 0.5).abs() < 1e-6);
        assert!((s.at(9, 1.0) - 1.0).abs() < 1e-6);
        assert!(s.at(60, 1.0) < 1.0);
        assert!(s.at(110, 1.0) < 1e-5);
    }

    proptest! {
        #[test]
        fn cosine_is_monotone_nonincreasing(total in 10usize..500, min_frac in 0.0f32..0.9) {
            let s = LrSchedule::Cosine { total_steps: total, min_frac };
            let mut last = f32::INFINITY;
            for step in 0..=total {
                let lr = s.at(step, 1.0);
                prop_assert!(lr <= last + 1e-6);
                prop_assert!(lr >= min_frac - 1e-6 && lr <= 1.0 + 1e-6);
                last = lr;
            }
        }

        #[test]
        fn all_schedules_stay_positive(step in 0usize..100_000) {
            let schedules = [
                LrSchedule::Constant,
                LrSchedule::StepDecay { every: 500, factor: 0.9 },
                LrSchedule::Cosine { total_steps: 20_000, min_frac: 0.01 },
                LrSchedule::WarmupCosine { warmup_steps: 100, total_steps: 20_000, min_frac: 0.01 },
            ];
            for s in &schedules {
                prop_assert!(s.at(step, 1e-3) > 0.0, "{s:?} hit zero at {step}");
            }
        }
    }
}
