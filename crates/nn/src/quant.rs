//! Int8-quantized MLP inference for compressed towers.
//!
//! A [`QuantizedMlp`] freezes an [`Mlp`]'s weights as int8
//! ([`pitot_linalg::QuantizedMatrix`], symmetric per-output-channel scales)
//! at build time and runs inference through the quantized product kernels:
//! activations are quantized per sample row on the fly, each layer's
//! product accumulates in exact i32, and everything around the products —
//! biases, layer norms, the hidden activation — stays f32, read from the
//! same [`ParamStore`] windows as the dense network. Pruning composes for
//! free: quantization reads the (masked) plane, and a zero weight
//! quantizes to exactly zero.
//!
//! Quantized inference is deterministic across `PITOT_THREADS` *and*
//! across the scalar/AVX2 dispatch paths (integer accumulation is exact;
//! see [`pitot_linalg::quant`]), which the serving layer's twin tests rely
//! on.

use crate::{Linear, Mlp, ParamStore};
use pitot_linalg::{matmul_q_into, Matrix, QuantizedMatrix};

/// An [`Mlp`] with int8-frozen weights; see the module docs.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    /// Per layer: the dense layer (for its bias window and dims) plus its
    /// column-quantized weight.
    layers: Vec<(Linear, QuantizedMatrix)>,
    norms: Option<Vec<crate::LayerNorm>>,
    hidden_act: crate::Activation,
}

impl QuantizedMlp {
    /// Quantizes `mlp`'s weights as read from `params` (so an installed
    /// pruning mask is baked in). Each weight matrix is packed with
    /// [`QuantizedMatrix::from_cols`]: one scale per output channel, stored
    /// transposed so the forward product is row-against-row dots.
    pub fn quantize(mlp: &Mlp, params: &ParamStore) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| {
                let qw = QuantizedMatrix::from_cols(layer.weight(params.params()));
                (*layer, qw)
            })
            .collect();
        Self {
            layers,
            norms: mlp.norms().map(<[_]>::to_vec),
            hidden_act: mlp.hidden_activation(),
        }
    }

    /// Inference mirroring [`Mlp::infer`], with each dense product replaced
    /// by dynamic activation quantization + the int8 kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` does not match the first layer's input width.
    pub fn infer(&self, params: &ParamStore, x: &Matrix) -> Matrix {
        let n = self.layers.len();
        let mut cur = x.clone();
        let mut next = Matrix::zeros(0, 0);
        for (i, (layer, qw)) in self.layers.iter().enumerate() {
            let qx = QuantizedMatrix::from_rows(cur.view());
            matmul_q_into(&qx, qw, &mut next);
            next.add_row_broadcast(layer.bias(params.params()));
            if i + 1 < n {
                if let Some(norms) = &self.norms {
                    next = norms[i].infer(params.params(), &next);
                }
                self.hidden_act.apply_matrix_inplace(&mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Bytes held by the quantized weights (i8 payloads + scales) — the
    /// memory the compressed tower actually carries for its products.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|(_, qw)| qw.bytes()).sum()
    }

    /// Bytes the same weights occupy densely in f32.
    pub fn dense_weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|(l, _)| l.weight_range().len * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, ParamStoreBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(norm: bool) -> (Mlp, ParamStore) {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut builder = ParamStoreBuilder::new();
        let widths = [12, 16, 5];
        let mlp = if norm {
            Mlp::with_layer_norm(&widths, Activation::Gelu, &mut rng, &mut builder)
        } else {
            Mlp::new(&widths, Activation::Gelu, &mut rng, &mut builder)
        };
        (mlp, builder.finish())
    }

    #[test]
    fn quantized_inference_tracks_dense() {
        for norm in [false, true] {
            let (mlp, params) = build(norm);
            let mut rng = ChaCha8Rng::seed_from_u64(33);
            let x = Matrix::randn(9, 12, &mut rng);
            let dense = mlp.infer(params.params(), &x);
            let q = QuantizedMlp::quantize(&mlp, &params);
            let quantized = q.infer(&params, &x);
            assert_eq!(dense.shape(), quantized.shape());
            // Int8 is lossy; the point is the error stays small relative to
            // the activations (the conformal layer absorbs the residual).
            let scale = dense
                .as_slice()
                .iter()
                .fold(0.0f32, |m, &v| m.max(v.abs()))
                .max(1.0);
            for (d, qv) in dense.as_slice().iter().zip(quantized.as_slice()) {
                assert!(
                    (d - qv).abs() <= 0.08 * scale,
                    "norm={norm}: {d} vs {qv} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn pruned_weights_quantize_to_exact_zero() {
        let (mlp, mut params) = build(false);
        let w0 = mlp.layers()[0].weight_range();
        params.prune_window_by_magnitude(w0, 0.5);
        let q = QuantizedMlp::quantize(&mlp, &params);
        let mask = params.mask().unwrap();
        let (in_dim, out_dim) = (mlp.layers()[0].in_dim(), mlp.layers()[0].out_dim());
        let back = q.layers[0].1.dequantize();
        for r in 0..in_dim {
            for c in 0..out_dim {
                if mask[w0.offset + r * out_dim + c] == 0 {
                    // from_cols stores the transpose: source (r, c) is at
                    // stored (c, r).
                    assert_eq!(back.row(c)[r], 0.0);
                }
            }
        }
    }

    #[test]
    fn quantized_weights_are_smaller() {
        let (mlp, params) = build(false);
        let q = QuantizedMlp::quantize(&mlp, &params);
        assert!(q.weight_bytes() * 3 < q.dense_weight_bytes());
    }
}
