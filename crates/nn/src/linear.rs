//! Dense (fully-connected) layer with manual backprop.

use pitot_linalg::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `y = x·W + b` with `W ∈ R^{in×out}`.
///
/// The backward pass is a method on the layer taking the cached input; the
/// caller owns caching so a layer can be reused across several forward passes
/// in one step (as the two-tower model does for quantile heads).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
}

/// Gradients for a [`Linear`] layer, shaped like the layer itself.
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient of the loss with respect to the weight matrix.
    pub weight: Matrix,
    /// Gradient of the loss with respect to the bias vector.
    pub bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with He-initialized weights and zero bias.
    ///
    /// He initialization (`σ = √(2/fan_in)`) keeps activations well-scaled
    /// under ReLU-family and GELU nonlinearities.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / in_dim.max(1) as f32).sqrt();
        let mut weight = Matrix::randn(in_dim, out_dim, rng);
        weight.scale(std);
        Self {
            weight,
            bias: vec![0.0; out_dim],
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Forward pass: `y = x·W + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass into a caller-owned buffer: allocation-free once the
    /// buffer has capacity.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weight, out);
        out.add_row_broadcast(&self.bias);
    }

    /// Backward pass given the cached input `x` and upstream gradient `dy`.
    ///
    /// Returns `(dx, grads)` where `dx = dy·Wᵀ`, `dW = xᵀ·dy`, `db = Σ_rows dy`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the forward pass.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (Matrix, LinearGrads) {
        let mut dx = Matrix::zeros(0, 0);
        let mut grads = LinearGrads {
            weight: Matrix::zeros(0, 0),
            bias: Vec::new(),
        };
        self.backward_into(x, dy, &mut dx, &mut grads);
        (dx, grads)
    }

    /// Backward pass into caller-owned buffers (`dx` and `grads` are
    /// overwritten): allocation-free once the buffers have capacity.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the forward pass.
    pub fn backward_into(&self, x: &Matrix, dy: &Matrix, dx: &mut Matrix, grads: &mut LinearGrads) {
        assert_eq!(dy.cols(), self.out_dim(), "upstream gradient width");
        assert_eq!(x.rows(), dy.rows(), "batch size mismatch");
        dy.matmul_transpose_into(&self.weight, dx);
        x.transpose_matmul_into(dy, &mut grads.weight);
        dy.sum_rows_into(&mut grads.bias);
    }

    /// Mutable flat views of the parameters, in a stable order (weight, bias).
    pub fn param_slices_mut(&mut self) -> Vec<&mut [f32]> {
        vec![self.weight.as_mut_slice(), &mut self.bias]
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

impl LinearGrads {
    /// Zero gradients shaped like `layer`.
    pub fn zeros_like(layer: &Linear) -> Self {
        Self {
            weight: Matrix::zeros(layer.in_dim(), layer.out_dim()),
            bias: vec![0.0; layer.out_dim()],
        }
    }

    /// Accumulates another gradient of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate(&mut self, other: &LinearGrads) {
        self.weight.axpy(1.0, &other.weight);
        for (b, o) in self.bias.iter_mut().zip(&other.bias) {
            *b += o;
        }
    }

    /// Flat views of the gradients, matching [`Linear::param_slices_mut`] order.
    pub fn grad_slices(&self) -> Vec<&[f32]> {
        vec![self.weight.as_slice(), &self.bias]
    }

    /// Scales all gradients by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.weight.scale(alpha);
        for b in &mut self.bias {
            *b *= alpha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shapes_and_bias() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut layer = Linear::new(3, 2, &mut rng);
        layer.param_slices_mut()[1].copy_from_slice(&[1.0, -1.0]);
        let y = layer.forward(&Matrix::zeros(4, 3));
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::randn(5, 4, &mut rng);
        // Loss = sum(y) so dy = ones; check dW and db numerically.
        let dy = Matrix::full(5, 3, 1.0);
        let (dx, grads) = layer.backward(&x, &dy);

        let h = 1e-2f32;
        // dW check at a few entries.
        for &(i, j) in &[(0usize, 0usize), (2, 1), (3, 2)] {
            let mut lp = layer.clone();
            lp.weight[(i, j)] += h;
            let mut lm = layer.clone();
            lm.weight[(i, j)] -= h;
            let num = (lp.forward(&x).sum() - lm.forward(&x).sum()) / (2.0 * h);
            assert!((num - grads.weight[(i, j)]).abs() < 1e-2, "dW[{i},{j}]");
        }
        // db check.
        for j in 0..3 {
            let mut lp = layer.clone();
            lp.bias[j] += h;
            let num = (lp.forward(&x).sum() - layer.forward(&x).sum()) / h;
            assert!((num - grads.bias[j]).abs() < 1e-2, "db[{j}]");
        }
        // dx check.
        for &(r, c) in &[(0usize, 0usize), (4, 3 - 1)] {
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let num = (layer.forward(&xp).sum() - layer.forward(&xm).sum()) / (2.0 * h);
            assert!((num - dx[(r, c)]).abs() < 1e-2, "dx[{r},{c}]");
        }
    }

    #[test]
    fn grads_accumulate() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let layer = Linear::new(2, 2, &mut rng);
        let x = Matrix::randn(3, 2, &mut rng);
        let dy = Matrix::full(3, 2, 1.0);
        let (_, g1) = layer.backward(&x, &dy);
        let mut acc = LinearGrads::zeros_like(&layer);
        acc.accumulate(&g1);
        acc.accumulate(&g1);
        for (a, b) in acc.weight.as_slice().iter().zip(g1.weight.as_slice()) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let layer = Linear::new(10, 5, &mut rng);
        assert_eq!(layer.param_count(), 55);
    }
}
