//! Dense (fully-connected) layer with manual backprop, parameterized by
//! windows of the flat parameter plane.

use crate::store::{ParamRange, ParamStoreBuilder};
use pitot_linalg::{kernels, MatRef, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `y = x·W + b` with `W ∈ R^{in×out}`.
///
/// The layer owns no data: `W` and `b` are [`ParamRange`] windows of a
/// [`crate::ParamStore`], so every forward/backward method takes the plane
/// (`params: &[f32]`) and gradient writes land directly in the matching
/// window of a [`crate::GradPlane`]. The caller owns input caching so a
/// layer can be reused across several forward passes in one step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    weight: ParamRange,
    bias: ParamRange,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Allocates a layer in `store` with He-initialized weights and zero
    /// bias.
    ///
    /// He initialization (`σ = √(2/fan_in)`) keeps activations well-scaled
    /// under ReLU-family and GELU nonlinearities.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        rng: &mut R,
        store: &mut ParamStoreBuilder,
    ) -> Self {
        let std = (2.0 / in_dim.max(1) as f32).sqrt();
        let weight = store.alloc_randn(in_dim * out_dim, std, rng);
        let bias = store.alloc(out_dim);
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight window viewed as an `in × out` matrix.
    #[inline]
    pub fn weight<'a>(&self, params: &'a [f32]) -> MatRef<'a> {
        MatRef::new(&params[self.weight.as_range()], self.in_dim, self.out_dim)
    }

    /// The bias window.
    #[inline]
    pub fn bias<'a>(&self, params: &'a [f32]) -> &'a [f32] {
        &params[self.bias.as_range()]
    }

    /// The plane window covering the whole layer (weight then bias).
    pub fn range(&self) -> ParamRange {
        self.weight.join(self.bias)
    }

    /// The weight window descriptor.
    pub fn weight_range(&self) -> ParamRange {
        self.weight
    }

    /// The bias window descriptor.
    pub fn bias_range(&self) -> ParamRange {
        self.bias
    }

    /// Forward pass: `y = x·W + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, params: &[f32], x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(params, x, &mut y);
        y
    }

    /// Forward pass into a caller-owned buffer: allocation-free once the
    /// buffer has capacity.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward_into(&self, params: &[f32], x: &Matrix, out: &mut Matrix) {
        kernels::matmul_view_into(x.view(), self.weight(params), out);
        out.add_row_broadcast(self.bias(params));
    }

    /// Backward pass given the cached input `x` and upstream gradient `dy`:
    /// `dx = dy·Wᵀ` is written into `dx`, while `dW = xᵀ·dy` and
    /// `db = Σ_rows dy` are written (overwriting) into this layer's windows
    /// of the gradient plane. Allocation-free once `dx` has capacity.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the forward pass.
    pub fn backward_into(
        &self,
        params: &[f32],
        x: &Matrix,
        dy: &Matrix,
        dx: &mut Matrix,
        grads: &mut [f32],
    ) {
        self.backward_into_dx_cols(params, x, dy, dx, grads, 0..self.in_dim);
    }

    /// [`Linear::backward_into`] computing the input gradient only for the
    /// input columns `dx_cols` (`dx` gets `dx_cols.len()` columns).
    ///
    /// Callers that need just a window of the input gradient — e.g. the
    /// learned-feature columns of a tower input — skip the rest of the
    /// `dy·Wᵀ` product entirely: the weight rows for a column window are a
    /// contiguous slab of the parameter plane.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent or the window exceeds the input
    /// width.
    pub fn backward_into_dx_cols(
        &self,
        params: &[f32],
        x: &Matrix,
        dy: &Matrix,
        dx: &mut Matrix,
        grads: &mut [f32],
        dx_cols: std::ops::Range<usize>,
    ) {
        assert_eq!(dy.cols(), self.out_dim, "upstream gradient width");
        assert_eq!(x.rows(), dy.rows(), "batch size mismatch");
        assert!(dx_cols.end <= self.in_dim, "dx column window out of range");
        let w_window = MatRef::new(
            &params[self.weight.offset + dx_cols.start * self.out_dim
                ..self.weight.offset + dx_cols.end * self.out_dim],
            dx_cols.len(),
            self.out_dim,
        );
        kernels::matmul_transpose_view_into(dy.view(), w_window, dx);
        kernels::transpose_matmul_buf(x.view(), dy.view(), &mut grads[self.weight.as_range()]);
        dy.sum_rows_into_buf(&mut grads[self.bias.as_range()]);
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len + self.bias.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{GradPlane, ParamStore};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn build(in_dim: usize, out_dim: usize, seed: u64) -> (Linear, ParamStore) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = ParamStoreBuilder::new();
        let layer = Linear::new(in_dim, out_dim, &mut rng, &mut b);
        (layer, b.finish())
    }

    #[test]
    fn forward_shapes_and_bias() {
        let (layer, mut store) = build(3, 2, 0);
        store
            .slice_mut(layer.bias_range())
            .copy_from_slice(&[1.0, -1.0]);
        let y = layer.forward(store.params(), &Matrix::zeros(4, 3));
        assert_eq!(y.shape(), (4, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let (layer, store) = build(4, 3, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x = Matrix::randn(5, 4, &mut rng);
        // Loss = sum(y) so dy = ones; check dW, db, and dx numerically.
        let dy = Matrix::full(5, 3, 1.0);
        let mut dx = Matrix::zeros(0, 0);
        let mut grads = GradPlane::zeros_like(&store);
        layer.backward_into(store.params(), &x, &dy, &mut dx, grads.as_mut_slice());

        let h = 1e-2f32;
        let loss = |params: &[f32], x: &Matrix| layer.forward(params, x).sum();
        // dW and db at a few plane offsets.
        for &k in &[0usize, 5, 11, 12, 13] {
            let mut plus = store.clone();
            plus.params_mut()[k] += h;
            let mut minus = store.clone();
            minus.params_mut()[k] -= h;
            let num = (loss(plus.params(), &x) - loss(minus.params(), &x)) / (2.0 * h);
            let ana = grads.as_slice()[k];
            assert!((num - ana).abs() < 1e-2, "plane[{k}]: {num} vs {ana}");
        }
        // dx check.
        for &(r, c) in &[(0usize, 0usize), (4, 3)] {
            let mut xp = x.clone();
            xp[(r, c)] += h;
            let mut xm = x.clone();
            xm[(r, c)] -= h;
            let num = (loss(store.params(), &xp) - loss(store.params(), &xm)) / (2.0 * h);
            assert!((num - dx[(r, c)]).abs() < 1e-2, "dx[{r},{c}]");
        }
    }

    #[test]
    fn param_count_and_ranges() {
        let (layer, store) = build(10, 5, 3);
        assert_eq!(layer.param_count(), 55);
        assert_eq!(store.len(), 55);
        assert_eq!(layer.range(), ParamRange { offset: 0, len: 55 });
    }
}
