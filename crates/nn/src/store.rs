//! The flat parameter plane.
//!
//! Every trainable scalar of a model lives in **one contiguous buffer**, a
//! [`ParamStore`], and each layer holds [`ParamRange`] descriptors (offset
//! plus length) into it instead of owning scattered matrices. Gradients
//! live in a [`GradPlane`] with the *same layout*, and the AdaMax moments
//! allocated by [`crate::AdaMax`] mirror the layout again, so one optimizer
//! step is a single fused pass over four parallel planes
//! ([`pitot_linalg::adamax_update`]) rather than a per-layer scalar loop.
//!
//! Ranges are handed out by a [`ParamStoreBuilder`] during model
//! construction; once [`ParamStoreBuilder::finish`] seals the store, the
//! layout is fixed. Serialization keeps only the flat buffer (descriptors
//! are reconstructed from the architecture), so checkpoints are a single
//! `Vec<f32>`.
//!
//! # Examples
//!
//! ```
//! use pitot_nn::{ParamStore, ParamStoreBuilder};
//!
//! let mut b = ParamStoreBuilder::new();
//! let w = b.alloc(6);
//! let bias = b.alloc_full(2, 1.0);
//! let store: ParamStore = b.finish();
//! assert_eq!(store.len(), 8);
//! assert_eq!(store.slice(bias), &[1.0, 1.0]);
//! assert_eq!(store.slice(w).len(), 6);
//! ```

use pitot_linalg::MatRef;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A window of the flat parameter plane (offset + length).
///
/// Copyable descriptor; the actual data lives in the [`ParamStore`] (or the
/// matching [`GradPlane`] / moment planes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamRange {
    /// First element of the window in the plane.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl ParamRange {
    /// The window as an index range.
    #[inline]
    pub fn as_range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }

    /// One element past the window.
    #[inline]
    pub fn end(&self) -> usize {
        self.offset + self.len
    }

    /// The smallest window covering both `self` and `other`.
    pub fn join(&self, other: ParamRange) -> ParamRange {
        let offset = self.offset.min(other.offset);
        ParamRange {
            offset,
            len: self.end().max(other.end()) - offset,
        }
    }
}

/// Allocates windows of the future parameter plane during model
/// construction.
#[derive(Debug, Default)]
pub struct ParamStoreBuilder {
    data: Vec<f32>,
    /// When set, [`ParamStoreBuilder::alloc_randn`] copies window values
    /// from this plane instead of drawing fresh normals. Shared (`Rc`) so
    /// a caller-side cache hands the plane over without copying it.
    prefill: Option<std::rc::Rc<[f32]>>,
}

impl ParamStoreBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder that *replays* a previously built plane: every
    /// [`ParamStoreBuilder::alloc_randn`] window copies its values from
    /// `plane` (at the same offsets) instead of drawing and scaling fresh
    /// normals. Callers cache the finished plane of an earlier identical
    /// construction and skip the Box–Muller fill entirely — layout code
    /// runs unchanged, so the resulting windows are bitwise identical to a
    /// fresh build by construction.
    ///
    /// The replayed plane must come from an identical allocation sequence;
    /// windows are checked to stay in bounds, and [`ParamStoreBuilder::finish`]
    /// asserts the layouts ended at the same length.
    pub fn prefilled(plane: std::rc::Rc<[f32]>) -> Self {
        Self {
            data: Vec::with_capacity(plane.len()),
            prefill: Some(plane),
        }
    }

    /// Elements allocated so far (the offset the next window will get).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocates a zero-initialized window.
    pub fn alloc(&mut self, len: usize) -> ParamRange {
        self.alloc_full(len, 0.0)
    }

    /// Allocates a window filled with `value`.
    pub fn alloc_full(&mut self, len: usize, value: f32) -> ParamRange {
        let offset = self.data.len();
        self.data.resize(offset + len, value);
        ParamRange { offset, len }
    }

    /// Allocates a window of normal draws scaled by `std` (He/Xavier-style
    /// initialization directly into the plane).
    pub fn alloc_randn<R: Rng + ?Sized>(
        &mut self,
        len: usize,
        std: f32,
        rng: &mut R,
    ) -> ParamRange {
        if let Some(plane) = &self.prefill {
            let offset = self.data.len();
            assert!(
                offset + len <= plane.len(),
                "replayed window [{offset}, {}) exceeds the prefill plane ({})",
                offset + len,
                plane.len()
            );
            self.data.extend_from_slice(&plane[offset..offset + len]);
            return ParamRange { offset, len };
        }
        let range = self.alloc(len);
        let slab = &mut self.data[range.as_range()];
        pitot_linalg::fill_randn(slab, rng);
        for v in slab {
            *v *= std;
        }
        range
    }

    /// Seals the layout into an immutable-shape store.
    ///
    /// # Panics
    ///
    /// Panics if a prefill plane (see [`ParamStoreBuilder::prefilled`]) was
    /// supplied and its length differs from the built layout — the replayed
    /// construction diverged from the original.
    pub fn finish(self) -> ParamStore {
        if let Some(plane) = &self.prefill {
            assert_eq!(
                plane.len(),
                self.data.len(),
                "replayed layout diverged from the prefill plane"
            );
        }
        pitot_linalg::alloc_count::record_buffer(self.data.len());
        ParamStore {
            data: self.data,
            mask: None,
        }
    }
}

/// The sealed flat parameter plane: one contiguous `Vec<f32>` holding every
/// trainable scalar of a model, plus an optional structured pruning mask.
///
/// The mask (one `u8` per parameter, `1` = keep, `0` = pruned) lives on the
/// plane itself so it serializes with checkpoints and survives
/// resume-from-checkpoint training: re-applying it after every optimizer
/// step keeps pruned weights exactly zero, and a resumed run replays the
/// same masked trajectory bitwise. Checkpoints written before masks existed
/// deserialize with no mask (`#[serde(default)]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamStore {
    data: Vec<f32>,
    #[serde(default)]
    mask: Option<Vec<u8>>,
}

impl ParamStore {
    /// Total number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole plane.
    #[inline]
    pub fn params(&self) -> &[f32] {
        &self.data
    }

    /// The whole plane, mutably (the optimizer's single parameter block).
    #[inline]
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One window of the plane.
    #[inline]
    pub fn slice(&self, range: ParamRange) -> &[f32] {
        &self.data[range.as_range()]
    }

    /// One window of the plane, mutably.
    #[inline]
    pub fn slice_mut(&mut self, range: ParamRange) -> &mut [f32] {
        &mut self.data[range.as_range()]
    }

    /// A window viewed as a `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `range.len != rows * cols`.
    #[inline]
    pub fn matrix(&self, range: ParamRange, rows: usize, cols: usize) -> MatRef<'_> {
        MatRef::new(self.slice(range), rows, cols)
    }

    /// The pruning mask, if one has been installed (`1` = keep, `0` =
    /// pruned; one entry per parameter).
    pub fn mask(&self) -> Option<&[u8]> {
        self.mask.as_deref()
    }

    /// Installs a full-plane pruning mask and immediately applies it
    /// (pruned parameters are zeroed).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != self.len()`.
    pub fn set_mask(&mut self, mask: Vec<u8>) {
        assert_eq!(mask.len(), self.data.len(), "mask/plane length mismatch");
        self.mask = Some(mask);
        self.apply_mask();
    }

    /// Removes the pruning mask (already-zeroed parameters keep their
    /// values; nothing is restored).
    pub fn clear_mask(&mut self) {
        self.mask = None;
    }

    /// Re-zeroes every pruned parameter. A no-op without a mask; called
    /// after each optimizer step so masked training stays masked (the
    /// optimizer is free to propose updates to pruned weights, the mask
    /// vetoes them).
    pub fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (v, &m) in self.data.iter_mut().zip(mask) {
                if m == 0 {
                    *v = 0.0;
                }
            }
        }
    }

    /// Magnitude-prunes one window of the plane: the `⌊len·sparsity⌋`
    /// smallest-|w| parameters of `range` are marked pruned (ties broken
    /// deterministically by index) and zeroed. Installs an all-keep mask on
    /// first use; repeated calls on different windows compose.
    ///
    /// # Panics
    ///
    /// Panics if `sparsity` is outside `[0, 1]` or the window exceeds the
    /// plane.
    pub fn prune_window_by_magnitude(&mut self, range: ParamRange, sparsity: f32) {
        assert!(
            (0.0..=1.0).contains(&sparsity),
            "sparsity {sparsity} outside [0, 1]"
        );
        let drop = ((range.len as f64) * f64::from(sparsity)).floor() as usize;
        let plane_len = self.data.len();
        let window = &self.data[range.as_range()];
        let mut order: Vec<usize> = (0..range.len).collect();
        order.sort_by(|&a, &b| window[a].abs().total_cmp(&window[b].abs()).then(a.cmp(&b)));
        let mask = self.mask.get_or_insert_with(|| vec![1; plane_len]);
        for &i in &order[..drop] {
            mask[range.offset + i] = 0;
        }
        self.apply_mask();
    }
}

/// A gradient plane with the same layout as a [`ParamStore`].
///
/// Allocated once per training loop and recycled in place; accumulation and
/// scaling run through the fused elementwise kernels.
#[derive(Debug, Clone)]
pub struct GradPlane {
    data: Vec<f32>,
}

impl GradPlane {
    /// A zeroed plane matching `store`'s layout.
    pub fn zeros_like(store: &ParamStore) -> Self {
        pitot_linalg::alloc_count::record_buffer(store.len());
        Self {
            data: vec![0.0; store.len()],
        }
    }

    /// Total number of gradient entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the plane is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole plane (the optimizer's single gradient block).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole plane, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One window of the plane.
    #[inline]
    pub fn slice(&self, range: ParamRange) -> &[f32] {
        &self.data[range.as_range()]
    }

    /// One window of the plane, mutably.
    #[inline]
    pub fn slice_mut(&mut self, range: ParamRange) -> &mut [f32] {
        &mut self.data[range.as_range()]
    }

    /// Zeroes the whole plane.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// `self[range] += alpha · other[range]` — accumulate one model's window
    /// from a scratch plane (multi-network training loops).
    ///
    /// # Panics
    ///
    /// Panics if the planes have different layouts.
    pub fn accumulate_range(&mut self, range: ParamRange, other: &GradPlane, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "plane layout mismatch");
        pitot_linalg::axpy_slice(
            alpha,
            &other.data[range.as_range()],
            &mut self.data[range.as_range()],
        );
    }

    /// Scales the whole plane by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn builder_allocates_contiguously() {
        let mut b = ParamStoreBuilder::new();
        let a = b.alloc(3);
        let c = b.alloc_full(2, 0.5);
        assert_eq!(a, ParamRange { offset: 0, len: 3 });
        assert_eq!(c, ParamRange { offset: 3, len: 2 });
        let store = b.finish();
        assert_eq!(store.params(), &[0.0, 0.0, 0.0, 0.5, 0.5]);
        assert_eq!(a.join(c), ParamRange { offset: 0, len: 5 });
    }

    #[test]
    fn randn_windows_are_scaled() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut b = ParamStoreBuilder::new();
        let r = b.alloc_randn(1000, 0.1, &mut rng);
        let store = b.finish();
        let std = {
            let s = store.slice(r);
            let mean: f32 = s.iter().sum::<f32>() / s.len() as f32;
            (s.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / s.len() as f32).sqrt()
        };
        assert!((std - 0.1).abs() < 0.02, "std {std}");
    }

    #[test]
    fn grad_plane_accumulates_ranges() {
        let mut b = ParamStoreBuilder::new();
        let lo = b.alloc(2);
        let hi = b.alloc(2);
        let store = b.finish();
        let mut acc = GradPlane::zeros_like(&store);
        let mut tmp = GradPlane::zeros_like(&store);
        tmp.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        acc.accumulate_range(lo, &tmp, 1.0);
        acc.accumulate_range(hi, &tmp, 0.5);
        assert_eq!(acc.as_slice(), &[1.0, 2.0, 1.5, 2.0]);
        acc.scale(2.0);
        assert_eq!(acc.as_slice(), &[2.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn store_serde_round_trip() {
        let mut b = ParamStoreBuilder::new();
        b.alloc_full(3, 1.5);
        let store = b.finish();
        let json = serde_json::to_string(&store).unwrap();
        let back: ParamStore = serde_json::from_str(&json).unwrap();
        assert_eq!(store, back);
    }
}
