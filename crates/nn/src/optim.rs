//! First-order optimizers: AdaMax (the paper's choice), Adam, and SGD with
//! momentum.
//!
//! The paper trains every model with AdaMax at its default hyperparameters
//! (App B.3: lr 1e-3, β₁ 0.9, β₂ 0.999). Adam and SGD exist for the
//! optimizer ablation (`pitot-repro optimizer`), which checks that the
//! paper's choice is a convenience rather than a load-bearing trick.
//!
//! All optimizers share the [`Optimizer`] trait: parameters arrive as an
//! ordered list of mutable flat slices with matching gradient slices, and
//! state buffers are allocated lazily on the first step. The registration
//! order must stay stable across steps.
//!
//! Models built on the flat [`crate::ParamStore`] pass exactly **one**
//! block (the whole plane), so the AdaMax moments become two contiguous
//! planes mirroring the parameter layout and each step is a single fused
//! grad-read → moment-update → weight-write pass through
//! [`pitot_linalg::adamax_update`] (AVX2+FMA behind the runtime dispatch).
//! Multi-block callers (the matrix-factorization baselines) go through the
//! same fused kernel once per block.

use serde::{Deserialize, Serialize};

/// A first-order stochastic optimizer over flat parameter blocks.
///
/// `Send` is a supertrait so training state (and servers that embed a
/// resumable train context) can move across threads — every optimizer here
/// is plain owned data.
pub trait Optimizer: Send {
    /// Applies one update.
    ///
    /// # Panics
    ///
    /// Panics if the number or shapes of the blocks change between steps, or
    /// if `params` and `grads` disagree.
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Number of steps taken so far.
    fn steps(&self) -> u64;

    /// Short display name for experiment tables.
    fn name(&self) -> &'static str;
}

/// AdaMax optimizer state.
///
/// The optimizer is agnostic to model structure: each step it receives the
/// model's parameters as an ordered list of mutable flat slices plus matching
/// gradient slices, and lazily allocates moment buffers of the same shapes on
/// the first step. The caller must keep the registration order stable across
/// steps (all models in this workspace derive it from struct field order).
///
/// # Examples
///
/// ```
/// use pitot_nn::AdaMax;
///
/// let mut theta = vec![1.0f32, -2.0];
/// let grad = vec![0.5f32, -0.5];
/// let mut opt = AdaMax::new(0.1);
/// opt.step(&mut [&mut theta], &[&grad]);
/// assert!(theta[0] < 1.0 && theta[1] > -2.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaMax {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    u: Vec<Vec<f32>>,
}

impl AdaMax {
    /// Creates an optimizer with the given learning rate and the paper's
    /// default moment decays (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Creates an optimizer with explicit moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or the betas are outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            u: Vec::new(),
        }
    }

    /// Learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one AdaMax update.
    ///
    /// # Panics
    ///
    /// Panics if the number or shapes of the slices change between steps, or
    /// if `params` and `grads` disagree.
    pub fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len(), "param/grad block count mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| {
                    pitot_linalg::alloc_count::record_buffer(p.len());
                    vec![0.0; p.len()]
                })
                .collect();
            self.u = params
                .iter()
                .map(|p| {
                    pitot_linalg::alloc_count::record_buffer(p.len());
                    vec![0.0; p.len()]
                })
                .collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "block count changed between steps"
        );
        self.t += 1;
        // Bias correction only applies to the first moment in AdaMax.
        let lr_t = self.lr / (1.0 - self.beta1.powi(self.t as i32));
        for ((p, g), (m, u)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.u.iter_mut()))
        {
            assert_eq!(p.len(), g.len(), "param/grad length mismatch");
            assert_eq!(p.len(), m.len(), "block shape changed between steps");
            pitot_linalg::adamax_update(p, g, m, u, lr_t, self.beta1, self.beta2, self.eps);
        }
    }
}

impl Optimizer for AdaMax {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        AdaMax::step(self, params, grads);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn steps(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "adamax"
    }
}

/// Adam optimizer (Kingma & Ba) with bias-corrected first and second
/// moments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with default moment decays (β₁ = 0.9, β₂ = 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or the betas are outside `[0, 1)`.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len(), "param/grad block count mismatch");
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "block count changed between steps"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.len(), g.len(), "param/grad length mismatch");
            assert_eq!(p.len(), m.len(), "block shape changed between steps");
            for i in 0..p.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                p[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn steps(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdMomentum {
    lr: f32,
    momentum: f32,
    t: u64,
    velocity: Vec<Vec<f32>>,
}

impl SgdMomentum {
    /// SGD with momentum 0.9.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.9)
    }

    /// SGD with explicit momentum (0 disables it).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum ∉ [0, 1)`.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum outside [0,1)");
        Self {
            lr,
            momentum,
            t: 0,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for SgdMomentum {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len(), "param/grad block count mismatch");
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "block count changed between steps"
        );
        self.t += 1;
        for ((p, g), vel) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            assert_eq!(p.len(), g.len(), "param/grad length mismatch");
            assert_eq!(p.len(), vel.len(), "block shape changed between steps");
            pitot_linalg::scale_add(vel, self.momentum, g, -self.lr);
            pitot_linalg::axpy_slice(1.0, vel, p);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    fn steps(&self) -> u64 {
        self.t
    }

    fn name(&self) -> &'static str {
        "sgd-momentum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2; AdaMax should converge to 3.
        let mut x = vec![0.0f32];
        let mut opt = AdaMax::new(0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut [&mut x], &[&g]);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "converged to {}", x[0]);
    }

    #[test]
    fn handles_multiple_blocks() {
        let mut a = vec![1.0f32; 3];
        let mut b = vec![-1.0f32; 2];
        let mut opt = AdaMax::new(0.1);
        for _ in 0..500 {
            let (ga, gb): (Vec<f32>, Vec<f32>) = (
                a.iter().map(|v| 2.0 * v).collect(),
                b.iter().map(|v| 2.0 * v).collect(),
            );
            opt.step(&mut [&mut a, &mut b], &[&ga, &gb]);
        }
        assert!(a.iter().all(|v| v.abs() < 1e-2));
        assert!(b.iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn step_counter_advances() {
        let mut x = vec![0.0f32];
        let mut opt = AdaMax::new(0.1);
        opt.step(&mut [&mut x], &[&[1.0]]);
        opt.step(&mut [&mut x], &[&[1.0]]);
        assert_eq!(opt.steps(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_grad() {
        let mut x = vec![0.0f32; 2];
        let mut opt = AdaMax::new(0.1);
        opt.step(&mut [&mut x], &[&[1.0]]);
    }

    #[test]
    fn update_is_bounded_by_lr() {
        // AdaMax steps are bounded by lr/(1-beta1^t) regardless of grad scale.
        let mut x = vec![0.0f32];
        let mut opt = AdaMax::new(0.001);
        opt.step(&mut [&mut x], &[&[1e6]]);
        assert!(x[0].abs() <= 0.011, "step {}", x[0]);
    }

    /// Runs an optimizer against f(x) = Σ(xᵢ − target)² and returns final x.
    fn drive(opt: &mut dyn Optimizer, steps: usize, target: f32) -> Vec<f32> {
        let mut x = vec![0.0f32; 4];
        for _ in 0..steps {
            let g: Vec<f32> = x.iter().map(|v| 2.0 * (v - target)).collect();
            opt.step(&mut [&mut x], &[&g]);
        }
        x
    }

    #[test]
    fn all_optimizers_minimize_the_same_quadratic() {
        let mut adamax = AdaMax::new(0.05);
        let mut adam = Adam::new(0.05);
        let mut sgd = SgdMomentum::new(0.01);
        for opt in [&mut adamax as &mut dyn Optimizer, &mut adam, &mut sgd] {
            let x = drive(opt, 2000, 3.0);
            assert!(
                x.iter().all(|v| (v - 3.0).abs() < 5e-2),
                "{} converged to {:?}",
                opt.name(),
                x
            );
        }
    }

    #[test]
    fn trait_learning_rate_roundtrip() {
        let mut opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(AdaMax::new(0.1)),
            Box::new(Adam::new(0.1)),
            Box::new(SgdMomentum::new(0.1)),
        ];
        for opt in &mut opts {
            assert_eq!(opt.learning_rate(), 0.1);
            opt.set_learning_rate(0.01);
            assert_eq!(opt.learning_rate(), 0.01);
        }
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut x = vec![1.0f32];
        let mut opt = SgdMomentum::with_momentum(0.1, 0.0);
        opt.step(&mut [&mut x], &[&[2.0]]);
        assert!((x[0] - 0.8).abs() < 1e-6, "plain SGD step: {}", x[0]);
    }

    #[test]
    fn adam_handles_sparse_like_gradients() {
        // Zero gradients must not destabilize the second moment.
        let mut x = vec![1.0f32, 1.0];
        let mut opt = Adam::new(0.05);
        for step in 0..600 {
            let g = if step % 3 == 0 {
                vec![2.0 * x[0], 0.0]
            } else {
                vec![0.0, 2.0 * x[1]]
            };
            opt.step(&mut [&mut x], &[&g]);
        }
        assert!(x.iter().all(|v| v.abs() < 0.1), "converged to {x:?}");
    }

    #[test]
    #[should_panic(expected = "momentum outside")]
    fn rejects_bad_momentum() {
        SgdMomentum::with_momentum(0.1, 1.5);
    }
}
