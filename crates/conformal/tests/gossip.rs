//! Gossip convergence over arbitrary merge topologies.
//!
//! PR 5 proved the `MergeableWindow` CRDT converges when a *coordinator*
//! merges every replica's snapshot (a star). Degraded-mode fleet serving
//! (coordinator outages) relies on a stronger claim: replicas exchanging
//! summaries *pairwise*, over any connected topology, in any order,
//! converge to exactly the state the coordinator would hold — and lower to
//! a calibration bitwise identical to the coordinator's `to_scored()` on
//! the union of live windows. These tests exercise ring, star, and seeded
//! random connected topologies, plus supersession of stale runs mid-gossip.

use pitot_conformal::{MergeableWindow, WindowedScores};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One synthetic replica stream with quantized values (duplicate scores
/// across replicas are the common fleet case, not a corner).
fn stream(seed: u64, n: usize, n_heads: usize) -> Vec<(Vec<f32>, f32, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x5DEE).wrapping_add(11));
    (0..n)
        .map(|i| {
            let preds: Vec<f32> = (0..n_heads)
                .map(|_| (rng.gen_range(-8i32..8) as f32) * 0.25)
                .collect();
            let target = (rng.gen_range(-8i32..8) as f32) * 0.25;
            (preds, target, i % 3)
        })
        .collect()
}

fn window_of(entries: &[(Vec<f32>, f32, usize)], cap: usize, n_heads: usize) -> WindowedScores {
    let mut w = WindowedScores::new(cap, n_heads);
    for (p, t, k) in entries {
        w.push(p, *t, *k);
    }
    w
}

/// The coordinator's view: every replica snapshot absorbed into one state.
fn coordinator_state(windows: &[WindowedScores]) -> MergeableWindow {
    let n_heads = windows[0].n_heads();
    let mut merged = MergeableWindow::empty(n_heads);
    for (r, w) in windows.iter().enumerate() {
        merged.absorb(&MergeableWindow::snapshot(r as u64, w));
    }
    merged
}

/// Runs `rounds` of pairwise gossip over the given edges: each edge merges
/// both endpoint states into their join (state-based CRDT exchange). Edges
/// are processed in order within a round — the schedule a deterministic
/// fault-injected fleet uses.
fn gossip(states: &mut [MergeableWindow], edges: &[(usize, usize)], rounds: usize) {
    for _ in 0..rounds {
        for &(i, j) in edges {
            let joined = states[i].merge(&states[j]);
            states[i] = joined.clone();
            states[j] = joined;
        }
    }
}

/// Asserts every node's gossip state equals the coordinator's, both as CRDT
/// state and (when non-empty) as the lowered calibration, bitwise.
fn assert_converged(states: &[MergeableWindow], coordinator: &MergeableWindow) {
    for (i, s) in states.iter().enumerate() {
        assert_eq!(s, coordinator, "node {i} diverged from the coordinator");
        if !coordinator.is_empty() {
            assert_eq!(s.to_scored(), coordinator.to_scored(), "node {i} scored");
        }
    }
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

fn star_edges(n: usize) -> Vec<(usize, usize)> {
    (1..n).map(|i| (0, i)).collect()
}

/// A seeded random connected topology: a random spanning tree (node `i`
/// attaches to a uniform earlier node) plus a few extra random edges.
fn random_connected_edges(n: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x60551);
    let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (rng.gen_range(0..i), i)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges
}

proptest::proptest! {
    /// The headline claim: pairwise gossip over ring, star, and random
    /// connected topologies converges every node to the coordinator's
    /// state — and therefore to its `to_scored()` on the union of live
    /// windows, bitwise. `n` rounds bound the propagation diameter of any
    /// connected topology on `n` nodes.
    #[test]
    fn gossip_converges_to_coordinator_on_any_connected_topology(
        seed in 0u64..20,
        n in 2usize..7,
        cap in 1usize..24,
    ) {
        let n_heads = 1 + (seed as usize % 3);
        let windows: Vec<WindowedScores> = (0..n)
            .map(|r| {
                // Lengths straddle the capacity: some replicas evicted,
                // some partial, some still empty.
                let len = (seed as usize + r * 17) % (2 * cap + 1);
                window_of(&stream(seed * 41 + r as u64, len, n_heads), cap, n_heads)
            })
            .collect();
        let coordinator = coordinator_state(&windows);

        for edges in [
            ring_edges(n),
            star_edges(n),
            random_connected_edges(n, seed * 131 + n as u64),
        ] {
            let mut states: Vec<MergeableWindow> = windows
                .iter()
                .enumerate()
                .map(|(r, w)| MergeableWindow::snapshot(r as u64, w))
                .collect();
            gossip(&mut states, &edges, n);
            assert_converged(&states, &coordinator);
        }
    }

    /// Supersession through gossip: after convergence one replica keeps
    /// observing (evicting old entries), re-snapshots into its own state,
    /// and gossip re-converges to the *new* union — stale runs of that
    /// replica vanish everywhere without tombstones.
    #[test]
    fn gossip_propagates_newer_snapshots(
        seed in 0u64..20,
        n in 2usize..6,
        cap in 2usize..16,
    ) {
        let n_heads = 1 + (seed as usize % 2);
        let streams: Vec<Vec<(Vec<f32>, f32, usize)>> = (0..n)
            .map(|r| stream(seed * 59 + r as u64, 2 * cap + 3, n_heads))
            .collect();
        let mut windows: Vec<WindowedScores> = streams
            .iter()
            .map(|s| window_of(&s[..cap], cap, n_heads))
            .collect();
        let edges = ring_edges(n);
        let mut states: Vec<MergeableWindow> = windows
            .iter()
            .enumerate()
            .map(|(r, w)| MergeableWindow::snapshot(r as u64, w))
            .collect();
        gossip(&mut states, &edges, n);
        assert_converged(&states, &coordinator_state(&windows));

        // Replica 0 advances past its old snapshot (full eviction churn).
        for (p, t, k) in &streams[0][cap..] {
            windows[0].push(p, *t, *k);
        }
        states[0].absorb(&MergeableWindow::snapshot(0, &windows[0]));
        gossip(&mut states, &edges, n);
        let coordinator = coordinator_state(&windows);
        assert_converged(&states, &coordinator);
        // The stale run is gone everywhere: every node holds replica 0 at
        // its new clock.
        for s in &states {
            proptest::prop_assert_eq!(s.replica_clock(0), Some(windows[0].clock()));
        }
    }
}

/// Gossip with a dead node excluded (its edges removed) still converges the
/// *live* nodes to the coordinator's fit on the union of live windows —
/// the exact guarantee degraded-mode serving leans on during an outage
/// with a crashed replica.
#[test]
fn gossip_excluding_dead_node_converges_live_union() {
    let n_heads = 2;
    let n = 5;
    let dead = 2usize;
    let windows: Vec<WindowedScores> = (0..n)
        .map(|r| window_of(&stream(77 + r as u64, 20, n_heads), 8, n_heads))
        .collect();
    let live: Vec<usize> = (0..n).filter(|&r| r != dead).collect();
    // Ring over the live nodes only.
    let edges: Vec<(usize, usize)> = live
        .iter()
        .enumerate()
        .map(|(k, &r)| (r, live[(k + 1) % live.len()]))
        .collect();
    let mut states: Vec<MergeableWindow> = windows
        .iter()
        .enumerate()
        .map(|(r, w)| MergeableWindow::snapshot(r as u64, w))
        .collect();
    gossip(&mut states, &edges, n);
    // Coordinator over live windows only.
    let mut coordinator = MergeableWindow::empty(n_heads);
    for &r in &live {
        coordinator.absorb(&MergeableWindow::snapshot(r as u64, &windows[r]));
    }
    for &r in &live {
        assert_eq!(&states[r], &coordinator, "live node {r}");
        assert_eq!(states[r].to_scored(), coordinator.to_scored());
    }
    // The dead node never heard anything beyond itself.
    assert_eq!(states[dead].replicas().count(), 1);
}
