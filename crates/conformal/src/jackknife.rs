//! CV+ / jackknife+ conformal bounds (Barber et al., 2021).
//!
//! Split conformal spends part of the data purely on calibration — a real
//! cost in the paper's low-data regime (Fig 4's 10% training splits). The
//! CV+ construction recovers that data: train K fold models, score each
//! held-out point against the model that did *not* see it, and bound a test
//! point by a quantile over `{ŷ_{fold(i)}(x) + sᵢ}`. Jackknife+ is the
//! K = n limit.
//!
//! This module is model-agnostic: callers supply per-fold predictions. The
//! one-sided guarantee is `Pr(y > bound) ≤ 2ε` in the worst case (the
//! CV+ factor of two), but in practice coverage lands near `1 − ε`.

use serde::{Deserialize, Serialize};

/// A fitted CV+ upper-bound predictor.
///
/// Holds one conformity score per calibration point together with the fold
/// that scored it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvPlus {
    /// `(fold, score)` pairs, where `score = y − ŷ^{−fold}(x)`.
    scores: Vec<(usize, f32)>,
    n_folds: usize,
    miscoverage: f32,
}

impl CvPlus {
    /// Builds the score table.
    ///
    /// `fold_of[i]` is the fold whose *held-out* set contains point `i`, and
    /// `oof_predictions[i]` is the prediction of the model trained *without*
    /// fold `fold_of[i]` on point `i` (out-of-fold predictions).
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched inputs, a fold index `≥ n_folds`, or
    /// `miscoverage ∉ (0, 1)`.
    pub fn fit(
        oof_predictions_log: &[f32],
        targets_log: &[f32],
        fold_of: &[usize],
        n_folds: usize,
        miscoverage: f32,
    ) -> Self {
        assert!(!oof_predictions_log.is_empty(), "empty calibration set");
        assert_eq!(
            oof_predictions_log.len(),
            targets_log.len(),
            "prediction/target mismatch"
        );
        assert_eq!(fold_of.len(), targets_log.len(), "fold/target mismatch");
        assert!(n_folds >= 2, "need at least two folds");
        assert!(
            miscoverage > 0.0 && miscoverage < 1.0,
            "miscoverage outside (0,1)"
        );
        let scores: Vec<(usize, f32)> = fold_of
            .iter()
            .zip(oof_predictions_log)
            .zip(targets_log)
            .map(|((&f, p), t)| {
                assert!(f < n_folds, "fold index {f} out of range");
                (f, t - p)
            })
            .collect();
        Self {
            scores,
            n_folds,
            miscoverage,
        }
    }

    /// Number of folds.
    pub fn n_folds(&self) -> usize {
        self.n_folds
    }

    /// Target miscoverage rate.
    pub fn miscoverage(&self) -> f32 {
        self.miscoverage
    }

    /// Upper bound in log space for a test point.
    ///
    /// `fold_predictions_log[k]` is fold-`k`'s model prediction at the test
    /// point. The bound is the `⌈(n+1)(1−ε)⌉`-th smallest of
    /// `ŷ_{fold(i)}(x) + sᵢ` over calibration points `i`.
    ///
    /// # Panics
    ///
    /// Panics if `fold_predictions_log.len() != n_folds`.
    pub fn bound_log(&self, fold_predictions_log: &[f32]) -> f32 {
        assert_eq!(
            fold_predictions_log.len(),
            self.n_folds,
            "one prediction per fold required"
        );
        let mut candidates: Vec<f32> = self
            .scores
            .iter()
            .map(|&(f, s)| fold_predictions_log[f] + s)
            .collect();
        candidates.sort_by(f32::total_cmp);
        let n = candidates.len();
        let k = ((((n + 1) as f32) * (1.0 - self.miscoverage)).ceil() as usize).clamp(1, n);
        candidates[k - 1]
    }

    /// Vectorized [`CvPlus::bound_log`]: `test_fold_predictions[k][j]` is
    /// fold-`k`'s prediction for test point `j`.
    ///
    /// # Panics
    ///
    /// Panics on a fold-count mismatch or ragged prediction rows.
    pub fn bounds_log(&self, test_fold_predictions: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(
            test_fold_predictions.len(),
            self.n_folds,
            "fold count mismatch"
        );
        let n_test = test_fold_predictions[0].len();
        for (k, row) in test_fold_predictions.iter().enumerate() {
            assert_eq!(row.len(), n_test, "fold {k} prediction count mismatch");
        }
        (0..n_test)
            .map(|j| {
                let per_fold: Vec<f32> = test_fold_predictions.iter().map(|row| row[j]).collect();
                self.bound_log(&per_fold)
            })
            .collect()
    }
}

/// Assigns `n` points to `k` folds round-robin (deterministic; callers that
/// need randomized folds should shuffle indices first).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn round_robin_folds(n: usize, k: usize) -> Vec<usize> {
    assert!(k > 0, "need at least one fold");
    (0..n).map(|i| i % k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::coverage;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Simulates K fold models of a common regression task: each fold model
    /// has its own small bias (as refitting on n−n/K points would).
    struct FoldSim {
        biases: Vec<f32>,
        sigma: f32,
    }

    impl FoldSim {
        fn new(k: usize, sigma: f32, seed: u64) -> Self {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Self {
                biases: (0..k).map(|_| rng.gen_range(-0.05f32..0.05)).collect(),
                sigma,
            }
        }

        fn predict(&self, fold: usize, x: f32) -> f32 {
            2.0 * x + self.biases[fold]
        }

        fn sample(&self, x: f32, rng: &mut ChaCha8Rng) -> f32 {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            2.0 * x + self.sigma * z
        }
    }

    fn build(seed: u64, n: usize, k: usize, eps: f32) -> (CvPlus, FoldSim) {
        let sim = FoldSim::new(k, 0.2, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let folds = round_robin_folds(n, k);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let targets: Vec<f32> = xs.iter().map(|&x| sim.sample(x, &mut rng)).collect();
        let oof: Vec<f32> = xs
            .iter()
            .zip(&folds)
            .map(|(&x, &f)| sim.predict(f, x))
            .collect();
        (CvPlus::fit(&oof, &targets, &folds, k, eps), sim)
    }

    #[test]
    fn cv_plus_covers_fresh_data() {
        let eps = 0.1;
        let (cv, sim) = build(0, 2000, 5, eps);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n_test = 2000;
        let xs: Vec<f32> = (0..n_test).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let targets: Vec<f32> = xs.iter().map(|&x| sim.sample(x, &mut rng)).collect();
        let fold_preds: Vec<Vec<f32>> = (0..5)
            .map(|f| xs.iter().map(|&x| sim.predict(f, x)).collect())
            .collect();
        let bounds = cv.bounds_log(&fold_preds);
        let cov = coverage(&bounds, &targets);
        assert!(cov >= 1.0 - eps - 0.03, "coverage {cov}");
    }

    #[test]
    fn bound_is_monotone_in_epsilon() {
        let (strict, sim) = build(1, 500, 4, 0.02);
        let (loose, _) = build(1, 500, 4, 0.3);
        let preds: Vec<f32> = (0..4).map(|f| sim.predict(f, 0.5)).collect();
        assert!(strict.bound_log(&preds) >= loose.bound_log(&preds));
    }

    #[test]
    fn round_robin_balances_folds() {
        let folds = round_robin_folds(10, 3);
        let count = |k| folds.iter().filter(|&&f| f == k).count();
        assert_eq!(count(0), 4);
        assert_eq!(count(1), 3);
        assert_eq!(count(2), 3);
    }

    #[test]
    #[should_panic(expected = "one prediction per fold")]
    fn bound_checks_fold_count() {
        let (cv, _) = build(2, 100, 4, 0.1);
        cv.bound_log(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "fold index")]
    fn fit_rejects_out_of_range_fold() {
        CvPlus::fit(&[0.0, 0.0], &[0.0, 0.0], &[0, 7], 2, 0.1);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn cv_plus_coverage_property(seed in 0u64..30, k in 2usize..8, eps in 0.05f32..0.25) {
            let (cv, sim) = build(seed + 10, 1200, k, eps);
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 777);
            let xs: Vec<f32> = (0..1200).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let targets: Vec<f32> = xs.iter().map(|&x| sim.sample(x, &mut rng)).collect();
            let fold_preds: Vec<Vec<f32>> = (0..k)
                .map(|f| xs.iter().map(|&x| sim.predict(f, x)).collect())
                .collect();
            let cov = coverage(&cv.bounds_log(&fold_preds), &targets);
            // CV+'s worst-case guarantee is 1 − 2ε (Barber et al.); typical
            // coverage sits near 1 − ε but fold-model bias (strongest at
            // small k) eats into it. Assert a midpoint with noise slack.
            let slack = 4.0 * (eps * (1.0 - eps) * 2.0 / 1200.0).sqrt() + 0.02;
            prop_assert!(cov >= 1.0 - 1.5 * eps - slack, "coverage {cov} at ε {eps}, k {k}");
        }
    }
}
