//! Conformal prediction for runtime upper bounds (paper Sec 3.5).
//!
//! Pitot predicts *runtime budgets*: a bound `C̃(ε)` such that the workload
//! finishes within the budget with probability at least `1 − ε`. This crate
//! implements the three calibration strategies the paper compares:
//!
//! - [`SplitConformal`]: one-sided split conformal regression over a single
//!   (squared-loss) prediction head — valid but not adaptive;
//! - conformalized quantile regression (CQR): the same calibration applied to
//!   quantile-regression heads, giving adaptive *and* valid bounds;
//! - [`PooledConformal`]: CQR with *calibration pools* keyed by the number of
//!   simultaneously-running workloads, plus the paper's *optimal quantile
//!   selection* (App B.2) which picks, per pool, the trained quantile head
//!   whose calibrated bound is tightest on a validation set.
//!
//! Beyond the paper's pipeline, the crate implements the neighbouring
//! conformal constructions the paper cites or motivates, for the
//! conformal-variants experiment:
//!
//! - [`TwoSidedCqr`]: interval-valued CQR (Romano et al.; paper footnote 4),
//!   whose lower edge doubles as a phase-shift/anomaly detector;
//! - [`ScaledConformal`]: dispersion-normalized scores (the "CQR-r" family
//!   of Sousa et al., 2022);
//! - [`CvPlus`]: cross-validation+ bounds that avoid sacrificing data to a
//!   dedicated calibration split (Barber et al., 2021);
//! - [`MondrianConformal`]: group-conditional calibration for arbitrary
//!   keys, generalizing the interference-count pools;
//! - [`rearrange_heads`]: monotone rearrangement fixing crossed quantile
//!   heads (never increases pinball loss);
//! - [`CoverageCurve`] and friends: diagnostics for marginal, per-group, and
//!   worst-group coverage.
//!
//! For online serving, [`WindowedScores`] maintains a sliding-window
//! calibration set incrementally — per-event binary-search edits of the
//! pre-sorted score slices, bitwise identical to re-scoring the window from
//! scratch — so a streaming service can refresh its bounds per observation
//! at rank-lookup cost. For multi-replica serving, [`MergeableWindow`]
//! snapshots replica windows into a CRDT of sorted-run segments whose merge
//! is commutative, associative, idempotent, and bitwise identical to a
//! from-scratch calibration on the union of the live windows — the
//! statistical basis being that exchangeable splits of the calibration set
//! preserve the coverage guarantee.
//!
//! All calibration happens in log-runtime space; since `exp` is monotone the
//! coverage guarantee transfers to linear space unchanged.
//!
//! # Examples
//!
//! ```
//! use pitot_conformal::SplitConformal;
//!
//! // Model under-predicts by ~0.1 in log space; conformal fixes coverage.
//! let preds: Vec<f32> = (0..100).map(|i| i as f32 * 0.01).collect();
//! let truths: Vec<f32> = preds.iter().map(|p| p + 0.1).collect();
//! let cal = SplitConformal::fit(&preds, &truths, 0.1);
//! assert!(cal.offset() >= 0.1);
//! assert!(cal.upper_bound_log(0.5) >= 0.6);
//! ```

// Every public item in this crate is part of the documented conformal API;
// keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod diagnostics;
mod jackknife;
mod merge;
mod metrics;
mod mondrian;
mod pooled;
mod rearrange;
mod scaled;
mod scores;
mod split_conformal;
mod two_sided;

pub use diagnostics::{
    calibration_error, conditional_coverage, worst_group_coverage, CoverageCurve,
};
pub use jackknife::{round_robin_folds, CvPlus};
pub use merge::{MergeableWindow, ReplayEntry, SummaryError, SummaryFault, TamperMode};
pub use metrics::{coverage, overprovision_margin};
pub use mondrian::MondrianConformal;
pub use pooled::{HeadSelection, PoolCalibration, PooledConformal, PredictionSet};
pub use rearrange::{crossing_rate, rearrange_heads};
pub use scaled::{head_spread, ScaledConformal, MIN_SCALE};
pub use scores::{upper_scores, ScoredCalibration, SweepCalibration, WindowedScores};
pub use split_conformal::{calibrate_gamma, SplitConformal};
pub use two_sided::{interval_coverage, mean_interval_factor, Interval, TwoSidedCqr};
