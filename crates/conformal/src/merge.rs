//! Mergeable calibration-window summaries for multi-replica serving.
//!
//! A fleet of edge sites feeding one conformal predictor cannot ship every
//! observation to a central calibrator — but it does not have to. Under
//! exchangeable splits of the calibration set (the assumption conformalized
//! matrix completion already makes, Gui et al. 2023), the union of
//! per-replica calibration windows is itself a valid calibration set, so a
//! coordinator only needs each replica's *sorted score summary* to fit a
//! fleet-level [`crate::PooledConformal`].
//!
//! [`MergeableWindow`] is that summary: a state-based CRDT of sorted-run
//! segments keyed by replica id. Each segment carries the replica's
//! [`WindowedScores::clock`] — the count of observations ever pushed — and
//! merging keeps, per replica, the segment with the larger clock. Because a
//! window's contents are a pure function of its stream prefix, a newer
//! snapshot *fully supersedes* an older one from the same replica: entries
//! evicted between two snapshots simply do not appear in the newer segment,
//! so eviction needs **no tombstones**. The merge is therefore
//! commutative, associative, and idempotent (property-tested below), and a
//! coordinator can combine summaries in any order, at any cadence, over any
//! gossip topology, and always converge to the same fleet state.
//!
//! [`MergeableWindow::to_scored`] lowers the merged summary to a
//! [`ScoredCalibration`] via linear merges of the pre-sorted segments —
//! **bitwise identical** to a from-scratch `ScoredCalibration::new` on the
//! union of the live replica windows (property-tested below), so a
//! fleet-level fit sees exactly the calibration set a centralized server
//! would have built.
//!
//! # Summary integrity
//!
//! A summary crossing a trust boundary (replica → coordinator, gossip peer
//! → gossip peer) is *telemetry*, and telemetry can lie: a Byzantine or
//! corrupted replica can ship NaN scores, unsorted runs, or a cardinality
//! that disagrees with its segments. Every run therefore carries an FNV-1a
//! checksum over its full structural content, fixed at snapshot time, and
//! [`MergeableWindow::verify`] re-derives structure and digest, naming the
//! offending replica and fault class on the first violation. A receiver
//! that verifies before [`MergeableWindow::absorb`] confines a bogus
//! summary to its sender — the CRDT never sees it.

use crate::scores::{ScoredCalibration, WindowedScores};
use std::collections::BTreeMap;

/// One replica's live window contents at snapshot time: pre-sorted global
/// and per-pool score runs plus the eviction clock that orders snapshots.
#[derive(Debug, Clone, PartialEq)]
struct ReplicaRun {
    /// The replica window's [`WindowedScores::clock`] at snapshot time.
    clock: u64,
    /// Live observations in the snapshot.
    n: usize,
    /// Per head: the replica's live scores, ascending.
    global: Vec<Vec<f32>>,
    /// Pool key → per-head ascending scores (only pools with live entries).
    pools: BTreeMap<usize, Vec<Vec<f32>>>,
    /// FNV-1a over clock, cardinality, pool layout, and every score bit,
    /// fixed at snapshot time (see [`run_checksum`]).
    checksum: u64,
}

/// The integrity fault classes [`MergeableWindow::verify`] detects, most
/// specific first: structural checks run before the digest comparison, so
/// a fault is named by *what* is wrong, not merely that bits changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryFault {
    /// A run's stated cardinality disagrees with its segments (head counts,
    /// per-head lengths, pool totals, or an empty pool key).
    CardinalityMismatch,
    /// A run contains a NaN or infinite score.
    NonFiniteScore,
    /// A run's scores are not ascending under `total_cmp`.
    UnsortedRun,
    /// The run's content does not reproduce its stored checksum.
    ChecksumMismatch,
}

impl std::fmt::Display for SummaryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::CardinalityMismatch => "cardinality mismatch",
            Self::NonFiniteScore => "non-finite score",
            Self::UnsortedRun => "unsorted run",
            Self::ChecksumMismatch => "checksum mismatch",
        })
    }
}

/// A failed [`MergeableWindow::verify`]: which replica's run is bad and how
/// — the audit record a coordinator stores when it rejects a summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryError {
    /// The replica whose run failed verification.
    pub replica: u64,
    /// What was wrong with it.
    pub fault: SummaryFault,
}

impl std::fmt::Display for SummaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica {} summary: {}", self.replica, self.fault)
    }
}

/// Deterministic corruption modes for [`MergeableWindow::corrupt_run`] —
/// each lands in a distinct [`SummaryFault`] class when verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperMode {
    /// Overwrite one score with NaN, recomputing the checksum — the finite
    /// scan, not the digest, must catch it.
    NonFinite,
    /// Inflate the run's stated cardinality, recomputing the checksum —
    /// the structural check must catch it.
    Cardinality,
    /// Break a head's sort order by swapping its extreme scores,
    /// recomputing the checksum — the order scan must catch it.
    Unsorted,
    /// Flip bits of the stored checksum, leaving content untouched — pure
    /// bit-rot / in-flight corruption.
    Checksum,
}

/// FNV-1a over a run's full structural content: clock, stated cardinality,
/// per-head global runs (length-prefixed), and per-pool runs (key- and
/// length-prefixed). Order-sensitive, so any bit flip, reorder, truncation,
/// or cardinality edit changes the digest.
fn run_checksum(
    clock: u64,
    n: usize,
    global: &[Vec<f32>],
    pools: &BTreeMap<usize, Vec<Vec<f32>>>,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let push = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    push(&mut h, &clock.to_le_bytes());
    push(&mut h, &(n as u64).to_le_bytes());
    for head in global {
        push(&mut h, &(head.len() as u64).to_le_bytes());
        for &s in head {
            push(&mut h, &s.to_bits().to_le_bytes());
        }
    }
    for (&pool, per_head) in pools {
        push(&mut h, &(pool as u64).to_le_bytes());
        for head in per_head {
            push(&mut h, &(head.len() as u64).to_le_bytes());
            for &s in head {
                push(&mut h, &s.to_bits().to_le_bytes());
            }
        }
    }
    h
}

impl ReplicaRun {
    /// Structural + digest verification against the expected head count;
    /// returns the first fault found, most specific first.
    fn validate(&self, n_heads: usize) -> Result<(), SummaryFault> {
        if self.global.len() != n_heads || self.global.iter().any(|h| h.len() != self.n) {
            return Err(SummaryFault::CardinalityMismatch);
        }
        let mut pooled = 0usize;
        for per_head in self.pools.values() {
            if per_head.len() != n_heads
                || per_head[0].is_empty()
                || per_head.iter().any(|h| h.len() != per_head[0].len())
            {
                return Err(SummaryFault::CardinalityMismatch);
            }
            pooled += per_head[0].len();
        }
        if pooled != self.n {
            return Err(SummaryFault::CardinalityMismatch);
        }
        let runs = self.global.iter().chain(self.pools.values().flatten());
        for run in runs {
            if run.iter().any(|s| !s.is_finite()) {
                return Err(SummaryFault::NonFiniteScore);
            }
            if run.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
                return Err(SummaryFault::UnsortedRun);
            }
        }
        if run_checksum(self.clock, self.n, &self.global, &self.pools) != self.checksum {
            return Err(SummaryFault::ChecksumMismatch);
        }
        Ok(())
    }
}

/// One reconstructed window entry for crash-recovery replay: the per-head
/// nonconformity scores of a single slot plus its calibration pool (the
/// element type of [`MergeableWindow::replica_entries`]).
pub type ReplayEntry = (Vec<f32>, usize);

/// A mergeable summary of one or more replica calibration windows
/// (see the module docs for the protocol).
///
/// Equality is elementwise over the contained sorted runs, so two summaries
/// compare equal exactly when they would lower to bitwise-identical
/// [`ScoredCalibration`]s *and* carry the same replica clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeableWindow {
    n_heads: usize,
    /// Replica id → that replica's latest known run.
    runs: BTreeMap<u64, ReplicaRun>,
}

impl MergeableWindow {
    /// The merge identity: a summary that has heard from no replica.
    ///
    /// # Panics
    ///
    /// Panics if `n_heads` is zero.
    pub fn empty(n_heads: usize) -> Self {
        assert!(n_heads > 0, "at least one head required");
        Self {
            n_heads,
            runs: BTreeMap::new(),
        }
    }

    /// Snapshots one replica window under the given replica id.
    ///
    /// The snapshot is a copy of the window's already-sorted score slices —
    /// `O(window)` with no comparisons — plus its eviction clock. An empty
    /// window yields a valid (empty) run that a later snapshot from the
    /// same replica supersedes.
    pub fn snapshot(replica: u64, window: &WindowedScores) -> Self {
        let global = window.scored.global_sorted.clone();
        let pools = window.scored.pool_sorted.clone();
        let checksum = run_checksum(window.clock(), window.len(), &global, &pools);
        let mut runs = BTreeMap::new();
        runs.insert(
            replica,
            ReplicaRun {
                clock: window.clock(),
                n: window.len(),
                global,
                pools,
                checksum,
            },
        );
        Self {
            n_heads: window.n_heads(),
            runs,
        }
    }

    /// Verifies every held run's structure and checksum, returning the
    /// first violation with the offending replica named (iteration is in
    /// replica-id order, so the result is deterministic).
    ///
    /// An honest [`MergeableWindow::snapshot`] always verifies; the error
    /// path exists for summaries that crossed a trust boundary. Receivers
    /// should verify an incoming summary *before* absorbing it so a
    /// Byzantine sender degrades only itself.
    pub fn verify(&self) -> Result<(), SummaryError> {
        for (&replica, run) in &self.runs {
            if let Err(fault) = run.validate(self.n_heads) {
                return Err(SummaryError { replica, fault });
            }
        }
        Ok(())
    }

    /// Deterministically corrupts the run held for `replica` — the fault
    /// injection hook behind the chaos/poison harnesses in `pitot-serve`
    /// and `pitot-experiments`, public because those live in other crates.
    /// `salt` varies which score/bits are hit so repeated tampering does
    /// not collapse onto one spot; equal inputs corrupt identically, which
    /// is what keeps fault replays bitwise-deterministic.
    ///
    /// Degenerate runs that cannot express the requested fault (an empty
    /// run asked for [`TamperMode::NonFinite`], a constant-score head asked
    /// for [`TamperMode::Unsorted`]) fall back to a checksum flip, so a
    /// tampered summary is *always* rejected by [`MergeableWindow::verify`].
    ///
    /// Returns `false` (and changes nothing) if no run is held for
    /// `replica`.
    pub fn corrupt_run(&mut self, replica: u64, mode: TamperMode, salt: u64) -> bool {
        let Some(run) = self.runs.get_mut(&replica) else {
            return false;
        };
        let flip = |run: &mut ReplicaRun| run.checksum ^= salt | 1;
        match mode {
            TamperMode::Checksum => flip(run),
            TamperMode::Cardinality => {
                run.n += 1 + (salt as usize % 3);
                run.checksum = run_checksum(run.clock, run.n, &run.global, &run.pools);
            }
            TamperMode::NonFinite if run.n > 0 => {
                let h = (salt as usize) % run.global.len();
                let i = (salt as usize >> 3) % run.global[h].len();
                run.global[h][i] = f32::NAN;
                run.checksum = run_checksum(run.clock, run.n, &run.global, &run.pools);
            }
            TamperMode::Unsorted
                if run.n > 1 && {
                    let head = &run.global[(salt as usize) % run.global.len()];
                    head[0].to_bits() != head[head.len() - 1].to_bits()
                } =>
            {
                let h = (salt as usize) % run.global.len();
                let head = &mut run.global[h];
                let last = head.len() - 1;
                head.swap(0, last);
                run.checksum = run_checksum(run.clock, run.n, &run.global, &run.pools);
            }
            // Degenerate content for the requested mode: fall back to the
            // always-detectable checksum flip.
            TamperMode::NonFinite | TamperMode::Unsorted => flip(run),
        }
        true
    }

    /// Jumps the clock of the run held for `replica` forward by `jump`,
    /// recomputing its checksum so the summary still passes
    /// [`MergeableWindow::verify`] — the clock-skew injection hook. Skew is
    /// *not* an integrity fault (the run's data is genuine); it is caught
    /// by the receiver's clock-plausibility screen instead, which is why
    /// this hook keeps the checksum honest. Returns `false` (and changes
    /// nothing) if no run is held for `replica`.
    pub fn skew_run_clock(&mut self, replica: u64, jump: u64) -> bool {
        let Some(run) = self.runs.get_mut(&replica) else {
            return false;
        };
        run.clock += jump;
        run.checksum = run_checksum(run.clock, run.n, &run.global, &run.pools);
        true
    }

    /// Number of heads per observation.
    pub fn n_heads(&self) -> usize {
        self.n_heads
    }

    /// Total live observations across every known replica.
    pub fn len(&self) -> usize {
        self.runs.values().map(|r| r.n).sum()
    }

    /// Whether no live observation is known (no replicas, or all empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replica ids this summary has heard from, with their clocks.
    pub fn replicas(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.runs.iter().map(|(&id, r)| (id, r.clock))
    }

    /// The clock of the run held for `replica`, if any — lets a
    /// coordinator skip snapshotting replicas whose windows have not
    /// advanced since the last merge.
    pub fn replica_clock(&self, replica: u64) -> Option<u64> {
        self.runs.get(&replica).map(|r| r.clock)
    }

    /// CRDT join: keeps, per replica id, the run with the larger eviction
    /// clock (ties keep either — a clock determines the window contents, so
    /// equal clocks carry equal runs). Commutative, associative, and
    /// idempotent; [`MergeableWindow::empty`] is the identity.
    ///
    /// # Panics
    ///
    /// Panics if the operands disagree on head count.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.absorb(other);
        out
    }

    /// In-place [`MergeableWindow::merge`]: upserts only `other`'s
    /// newer-clocked runs, never copying the runs already held — the form
    /// a coordinator accumulating one snapshot per replica per round wants
    /// (`O(other)` per call, not `O(self + other)`).
    ///
    /// # Panics
    ///
    /// Panics if the operands disagree on head count.
    pub fn absorb(&mut self, other: &Self) {
        assert_eq!(
            self.n_heads, other.n_heads,
            "cannot merge summaries with different head counts"
        );
        for (&id, run) in &other.runs {
            match self.runs.get(&id) {
                Some(existing) if existing.clock >= run.clock => {}
                _ => {
                    self.runs.insert(id, run.clone());
                }
            }
        }
    }

    /// Reconstructs the `(per-head scores, pool)` entries of one replica's
    /// held run, with the run's clock — the replay message a coordinator
    /// hands a crash-recovering replica so it can rejoin *warm* instead of
    /// serving off an empty window (see `PitotServer::restore_window` in
    /// `pitot-serve`).
    ///
    /// Entries are regrouped positionally: within each pool, the rank-`j`
    /// scores of every head form one entry. That pairing is generally not
    /// the original per-observation grouping (the summary keeps per-head
    /// sorted runs, not observations), but it preserves the per-pool
    /// per-head score *multisets* exactly — so a window rebuilt by pushing
    /// these entries lowers to sorted views bitwise identical to the run it
    /// was reconstructed from. Arrival order within the rebuilt window is
    /// synthetic (pool-major), so post-restore evictions may retire
    /// different entries than the pre-crash window would have; calibration
    /// validity is unaffected (any window subset is an exchangeable split).
    ///
    /// Returns `None` if this summary holds no run for `replica`.
    pub fn replica_entries(&self, replica: u64) -> Option<(u64, Vec<ReplayEntry>)> {
        let run = self.runs.get(&replica)?;
        let mut entries = Vec::with_capacity(run.n);
        for (&pool, per_head) in &run.pools {
            let m = per_head[0].len();
            for j in 0..m {
                entries.push((per_head.iter().map(|h| h[j]).collect::<Vec<f32>>(), pool));
            }
        }
        debug_assert_eq!(entries.len(), run.n);
        Some((run.clock, entries))
    }

    /// Lowers the summary to a [`ScoredCalibration`] over the union of
    /// every known replica's live window — linear merges of the pre-sorted
    /// segments, bitwise identical to `ScoredCalibration::new` on the same
    /// union (property-tested).
    ///
    /// The result is ready for [`crate::PooledConformal::fit_scored`];
    /// fitting at any ε is then a rank lookup, exactly as on a
    /// single-replica window.
    ///
    /// # Panics
    ///
    /// Panics if the summary holds no live observations (an empty
    /// calibration set has no quantiles).
    pub fn to_scored(&self) -> ScoredCalibration {
        assert!(
            !self.is_empty(),
            "cannot calibrate on an empty fleet summary"
        );
        let mut global_sorted = vec![Vec::new(); self.n_heads];
        let mut pool_sorted: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
        for run in self.runs.values() {
            for (h, head) in run.global.iter().enumerate() {
                global_sorted[h] = merge_sorted(&global_sorted[h], head);
            }
            for (&pool, per_head) in &run.pools {
                let acc = pool_sorted
                    .entry(pool)
                    .or_insert_with(|| vec![Vec::new(); self.n_heads]);
                for (h, head) in per_head.iter().enumerate() {
                    acc[h] = merge_sorted(&acc[h], head);
                }
            }
        }
        ScoredCalibration {
            global_sorted,
            pool_sorted,
            n: self.len(),
        }
    }
}

/// Merges two ascending (under `total_cmp`) runs into one, taking from the
/// left run on ties so equal float bits stay contiguous. The result is the
/// sorted multiset union — identical to sorting the concatenation.
fn merge_sorted(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if b[j].total_cmp(&a[i]).is_lt() {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooled::PredictionSet;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// One synthetic replica stream: `(per-head preds, target, pool)`
    /// entries. Quantized values force duplicate scores across replicas —
    /// the shards of one fleet observe the same catalog, so identical
    /// scores on different replicas are the common case, not a corner.
    fn stream(seed: u64, n: usize, n_heads: usize) -> Vec<(Vec<f32>, f32, usize)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0xA5A5).wrapping_add(1));
        (0..n)
            .map(|i| {
                let preds: Vec<f32> = (0..n_heads)
                    .map(|_| (rng.gen_range(-8i32..8) as f32) * 0.25)
                    .collect();
                let target = (rng.gen_range(-8i32..8) as f32) * 0.25;
                let pool = i % 3;
                (preds, target, pool)
            })
            .collect()
    }

    /// Feeds a stream through a fresh window of the given capacity.
    fn window_of(entries: &[(Vec<f32>, f32, usize)], cap: usize, n_heads: usize) -> WindowedScores {
        let mut w = WindowedScores::new(cap, n_heads);
        for (p, t, k) in entries {
            w.push(p, *t, *k);
        }
        w
    }

    /// From-scratch [`ScoredCalibration`] on the union of the replicas'
    /// *live* (post-eviction) window tails.
    fn scratch_union(replicas: &[&WindowedScores], n_heads: usize) -> ScoredCalibration {
        let mut preds: Vec<Vec<f32>> = vec![Vec::new(); n_heads];
        let mut targets = Vec::new();
        let mut pools = Vec::new();
        for w in replicas {
            for (scores, pool) in w.entries() {
                // Reconstruct a (pred, target) pair with exactly these
                // score bits: s = 0.0 − (−s).
                for (h, &s) in scores.iter().enumerate() {
                    preds[h].push(-s);
                }
                targets.push(0.0);
                pools.push(pool);
            }
        }
        ScoredCalibration::new(&PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        })
    }

    proptest::proptest! {
        /// The headline identity: merging any number of replica snapshots
        /// (different stream lengths, window capacities smaller than the
        /// streams, duplicate score values across shards) lowers to a
        /// [`ScoredCalibration`] bitwise identical to a from-scratch fit on
        /// the union of the live windows.
        #[test]
        fn merged_summary_is_bitwise_identical_to_scratch_union(
            seed in 0u64..30,
            n_replicas in 1usize..5,
            cap in 1usize..40,
        ) {
            let n_heads = 1 + (seed as usize % 3);
            let windows: Vec<WindowedScores> = (0..n_replicas)
                .map(|r| {
                    // Lengths straddle the capacity so some replicas have
                    // evicted and others have not (or are still empty).
                    let n = (seed as usize + r * 13) % (2 * cap + 1);
                    window_of(&stream(seed * 31 + r as u64, n, n_heads), cap, n_heads)
                })
                .collect();
            let mut merged = MergeableWindow::empty(n_heads);
            for (r, w) in windows.iter().enumerate() {
                merged.absorb(&MergeableWindow::snapshot(r as u64, w));
            }
            let live: usize = windows.iter().map(|w| w.len()).sum();
            proptest::prop_assert_eq!(merged.len(), live);
            if live > 0 {
                let refs: Vec<&WindowedScores> = windows.iter().collect();
                let scratch = scratch_union(&refs, n_heads);
                proptest::prop_assert_eq!(&merged.to_scored(), &scratch);
            }
        }

        /// Merge is commutative and associative over snapshots of
        /// *different ages of the same replicas* — the out-of-order,
        /// duplicated delivery a real coordinator sees.
        #[test]
        fn merge_is_commutative_and_associative(
            seed in 0u64..30,
            cap in 1usize..24,
        ) {
            let n_heads = 1 + (seed as usize % 2);
            // Three summaries drawn from two replicas at different clocks:
            // a and c are older/newer snapshots of replica 0.
            let s0 = stream(seed, 2 * cap + 3, n_heads);
            let mut w0 = WindowedScores::new(cap, n_heads);
            for (p, t, k) in &s0[..cap.min(s0.len())] {
                w0.push(p, *t, *k);
            }
            let a = MergeableWindow::snapshot(0, &w0);
            for (p, t, k) in &s0[cap.min(s0.len())..] {
                w0.push(p, *t, *k);
            }
            let c = MergeableWindow::snapshot(0, &w0);
            let w1 = window_of(&stream(seed + 77, cap + 2, n_heads), cap, n_heads);
            let b = MergeableWindow::snapshot(1, &w1);

            proptest::prop_assert_eq!(a.merge(&b), b.merge(&a));
            proptest::prop_assert_eq!(a.merge(&c), c.merge(&a));
            proptest::prop_assert_eq!(
                a.merge(&b).merge(&c),
                a.merge(&b.merge(&c))
            );
            // Idempotence, and identity of the empty summary.
            let ab = a.merge(&b);
            proptest::prop_assert_eq!(ab.merge(&ab.clone()), ab.clone());
            proptest::prop_assert_eq!(
                ab.merge(&MergeableWindow::empty(n_heads)),
                ab
            );
        }
    }

    #[test]
    fn single_replica_summary_is_the_window_itself() {
        let n_heads = 2;
        let w = window_of(&stream(5, 40, n_heads), 16, n_heads);
        let merged = MergeableWindow::snapshot(9, &w);
        assert_eq!(&merged.to_scored(), w.scored());
    }

    #[test]
    fn empty_replicas_merge_as_identity() {
        let n_heads = 2;
        let w = window_of(&stream(6, 20, n_heads), 8, n_heads);
        let full = MergeableWindow::snapshot(0, &w);
        let empty_win = WindowedScores::new(8, n_heads);
        let empty = MergeableWindow::snapshot(1, &empty_win);
        let merged = full.merge(&empty);
        assert_eq!(merged.len(), w.len());
        assert_eq!(&merged.to_scored(), w.scored());
        // Either way around.
        assert_eq!(&empty.merge(&full).to_scored(), w.scored());
    }

    #[test]
    fn newer_snapshot_supersedes_after_eviction() {
        // Snapshot a replica, let it evict every original entry, snapshot
        // again: the merge of both must equal the newer snapshot alone —
        // evicted entries leave no tombstones and no residue.
        let n_heads = 2;
        let s = stream(7, 30, n_heads);
        let mut w = WindowedScores::new(8, n_heads);
        for (p, t, k) in &s[..10] {
            w.push(p, *t, *k);
        }
        let old = MergeableWindow::snapshot(3, &w);
        for (p, t, k) in &s[10..] {
            w.push(p, *t, *k);
        }
        let new = MergeableWindow::snapshot(3, &w);
        let merged = old.merge(&new);
        assert_eq!(merged, new);
        assert_eq!(&merged.to_scored(), w.scored());
        // Stale delivery after the fact changes nothing.
        assert_eq!(merged.merge(&old), new);
    }

    #[test]
    fn duplicate_scores_across_shards_merge_cleanly() {
        // Two shards observing identical quantized values: every score in
        // shard A also appears in shard B. The union must keep both copies.
        let n_heads = 1;
        let entries: Vec<(Vec<f32>, f32, usize)> = (0..12)
            .map(|i| (vec![(i % 3) as f32 * 0.5], 1.0, i % 2))
            .collect();
        let wa = window_of(&entries, 16, n_heads);
        let wb = window_of(&entries, 16, n_heads);
        let merged = MergeableWindow::snapshot(0, &wa).merge(&MergeableWindow::snapshot(1, &wb));
        assert_eq!(merged.len(), 24);
        let scored = merged.to_scored();
        assert_eq!(scored.len(), 24);
        assert_eq!(&scored, &scratch_union(&[&wa, &wb], n_heads));
    }

    proptest::proptest! {
        /// Crash-recovery replay: a window rebuilt by pushing
        /// [`MergeableWindow::replica_entries`] lowers to sorted views
        /// bitwise identical to the run it was reconstructed from, and
        /// carries enough clock to supersede stale snapshots once advanced.
        #[test]
        fn replica_entries_rebuild_bitwise_identical_window(
            seed in 0u64..25,
            cap in 1usize..32,
            n in 1usize..70,
        ) {
            let n_heads = 1 + (seed as usize % 3);
            let w = window_of(&stream(seed * 7 + 3, n, n_heads), cap, n_heads);
            let summary = MergeableWindow::snapshot(4, &w);
            let (clock, entries) = summary.replica_entries(4).expect("run held");
            proptest::prop_assert_eq!(clock, w.clock());
            proptest::prop_assert_eq!(entries.len(), w.len());
            let mut rebuilt = WindowedScores::new(cap, n_heads);
            for (scores, pool) in entries {
                rebuilt.push_scores(scores, pool);
            }
            if !w.is_empty() {
                proptest::prop_assert_eq!(rebuilt.scored(), w.scored());
            }
            proptest::prop_assert!(rebuilt.clock() <= clock);
            proptest::prop_assert_eq!(summary.replica_entries(9), None);
        }
    }

    proptest::proptest! {
        /// Honest snapshots — empty, partial, evicting, multi-replica,
        /// merged in any order — always verify, and every tamper mode is
        /// rejected with the offending replica named and the fault class
        /// the mode targets (or the checksum fallback on degenerate runs).
        #[test]
        fn verify_accepts_honest_and_names_tampered(
            seed in 0u64..30,
            cap in 1usize..24,
            salt in 0u64..1000,
        ) {
            let n_heads = 1 + (seed as usize % 3);
            let wa = window_of(&stream(seed, (seed as usize * 5) % (2 * cap), n_heads), cap, n_heads);
            let wb = window_of(&stream(seed + 50, cap + 1, n_heads), cap, n_heads);
            let mut merged = MergeableWindow::snapshot(0, &wa);
            merged.absorb(&MergeableWindow::snapshot(7, &wb));
            proptest::prop_assert_eq!(merged.verify(), Ok(()));

            for (mode, want) in [
                (TamperMode::Checksum, SummaryFault::ChecksumMismatch),
                (TamperMode::Cardinality, SummaryFault::CardinalityMismatch),
                (TamperMode::NonFinite, SummaryFault::NonFiniteScore),
                (TamperMode::Unsorted, SummaryFault::UnsortedRun),
            ] {
                let mut t = merged.clone();
                proptest::prop_assert!(t.corrupt_run(7, mode, salt));
                let err = t.verify().expect_err("tampered run must fail");
                proptest::prop_assert_eq!(err.replica, 7);
                // Degenerate runs fall back to a checksum flip; either way
                // the summary is rejected.
                proptest::prop_assert!(
                    err.fault == want || err.fault == SummaryFault::ChecksumMismatch
                );
                // Tampering never silently equals the honest summary.
                proptest::prop_assert!(t != merged.clone());
            }
            // No run held → no-op.
            let mut t = merged.clone();
            proptest::prop_assert!(!t.corrupt_run(99, TamperMode::Checksum, salt));
            proptest::prop_assert_eq!(t, merged);
        }
    }

    #[test]
    fn tamper_modes_land_in_their_fault_class_on_rich_runs() {
        // A window with plenty of distinct scores exercises every mode's
        // primary path (no degenerate fallback).
        let n_heads = 2;
        let w = window_of(&stream(21, 40, n_heads), 16, n_heads);
        for (mode, want) in [
            (TamperMode::Checksum, SummaryFault::ChecksumMismatch),
            (TamperMode::Cardinality, SummaryFault::CardinalityMismatch),
            (TamperMode::NonFinite, SummaryFault::NonFiniteScore),
        ] {
            let mut s = MergeableWindow::snapshot(3, &w);
            assert!(s.corrupt_run(3, mode, 5));
            assert_eq!(
                s.verify(),
                Err(SummaryError {
                    replica: 3,
                    fault: want
                }),
                "mode {mode:?}"
            );
        }
        // Unsorted needs a head whose extremes differ bitwise; find a salt
        // selecting one (head choice is salt % n_heads).
        let mut s = MergeableWindow::snapshot(3, &w);
        assert!(s.corrupt_run(3, TamperMode::Unsorted, 0));
        let err = s.verify().expect_err("unsorted run must fail");
        assert_eq!(err.replica, 3);
        assert!(matches!(
            err.fault,
            SummaryFault::UnsortedRun | SummaryFault::ChecksumMismatch
        ));
        // Error display names the replica for audit logs.
        assert!(err.to_string().contains("replica 3"));
    }

    #[test]
    #[should_panic(expected = "empty fleet summary")]
    fn empty_summary_refuses_to_calibrate() {
        let _ = MergeableWindow::empty(1).to_scored();
    }

    #[test]
    #[should_panic(expected = "different head counts")]
    fn mismatched_head_counts_refuse_to_merge() {
        let _ = MergeableWindow::empty(1).merge(&MergeableWindow::empty(2));
    }

    #[test]
    fn fleet_gammas_match_centralized_window() {
        // End-to-end: γ from the merged fleet summary equals γ from a
        // from-scratch calibration on the union — the bound a coordinator
        // serves is exactly the centralized one.
        let n_heads = 3;
        let wa = window_of(&stream(11, 90, n_heads), 64, n_heads);
        let wb = window_of(&stream(12, 50, n_heads), 64, n_heads);
        let merged = MergeableWindow::snapshot(0, &wa)
            .merge(&MergeableWindow::snapshot(1, &wb))
            .to_scored();
        let scratch = scratch_union(&[&wa, &wb], n_heads);
        for eps in [0.05f32, 0.1, 0.3] {
            for h in 0..n_heads {
                assert_eq!(merged.gamma(None, h, eps), scratch.gamma(None, h, eps));
                for pool in 0..3 {
                    assert_eq!(
                        merged.gamma(Some(pool), h, eps),
                        scratch.gamma(Some(pool), h, eps)
                    );
                }
            }
        }
    }
}
