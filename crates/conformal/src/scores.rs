//! Precomputed nonconformity scores.
//!
//! Every calibration strategy in this crate starts from the same quantity:
//! the upper-bound nonconformity score `sᵢ = yᵢ − ŷᵢ` per head. Re-deriving
//! those scores (and the predictions behind them) once per variant and per
//! miscoverage level is what made the post-training calibrate phase scale
//! with `variants × ε-levels` — exactly the cost conformalized matrix
//! completion identifies as the practical bottleneck. This module computes
//! the scores **once** (chunk-parallel over the `pitot_linalg::par` pool),
//! partitions and sorts them once, and lets every downstream fit — split,
//! scaled, Mondrian, pooled CQR — consume the precomputed slices: fitting
//! at one more ε becomes a rank lookup instead of a fresh predict + sort.

use crate::pooled::PredictionSet;
use pitot_linalg::{par, quantile_higher_sorted};
use std::collections::BTreeMap;

/// Computes per-head upper-bound scores `s[h][i] = targets[i] − preds[h][i]`,
/// chunk-parallel over observations.
///
/// Results are bitwise identical across `PITOT_THREADS` (each element is
/// computed independently).
///
/// # Panics
///
/// Panics if any head's length differs from `targets`.
pub fn upper_scores(preds: &[Vec<f32>], targets: &[f32]) -> Vec<Vec<f32>> {
    preds
        .iter()
        .enumerate()
        .map(|(h, head)| {
            assert_eq!(head.len(), targets.len(), "head {h} length mismatch");
            let mut out = vec![0.0f32; targets.len()];
            par::parallel_for_rows(&mut out, 1, 4096, |start, chunk| {
                for (i, s) in chunk.iter_mut().enumerate() {
                    let k = start + i;
                    *s = targets[k] - head[k];
                }
            });
            out
        })
        .collect()
}

/// One calibration set's scores, partitioned by pool and sorted — computed
/// once, consumed by every `(variant, ε)` fit.
#[derive(Debug, Clone)]
pub struct ScoredCalibration {
    /// Per head: every score, ascending.
    global_sorted: Vec<Vec<f32>>,
    /// Pool key → per-head ascending scores for that pool.
    pool_sorted: BTreeMap<usize, Vec<Vec<f32>>>,
    n: usize,
}

impl ScoredCalibration {
    /// Scores, partitions, and sorts a calibration set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or internally inconsistent.
    pub fn new(calibration: &PredictionSet<'_>) -> Self {
        assert!(
            !calibration.targets_log.is_empty(),
            "cannot calibrate on an empty set"
        );
        let scores = upper_scores(calibration.predictions, calibration.targets_log);
        let n_heads = scores.len();

        let mut pool_sorted: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
        for (i, &pool) in calibration.pools.iter().enumerate() {
            let per_head = pool_sorted
                .entry(pool)
                .or_insert_with(|| vec![Vec::new(); n_heads]);
            for (h, head_scores) in scores.iter().enumerate() {
                per_head[h].push(head_scores[i]);
            }
        }
        let mut global_sorted = scores;
        for head in &mut global_sorted {
            head.sort_by(|a, b| a.total_cmp(b));
        }
        for per_head in pool_sorted.values_mut() {
            for head in per_head.iter_mut() {
                head.sort_by(|a, b| a.total_cmp(b));
            }
        }
        Self {
            global_sorted,
            pool_sorted,
            n: calibration.targets_log.len(),
        }
    }

    /// Number of calibration observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the calibration set is empty (never true for a constructed
    /// instance).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.global_sorted.len()
    }

    /// Pool keys present, with their observation counts.
    pub fn pool_sizes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pool_sorted.iter().map(|(&k, v)| (k, v[0].len()))
    }

    /// Conformal offset γ for one head at miscoverage `eps`, over the whole
    /// set (`pool = None`) or one pool — a rank lookup in the pre-sorted
    /// scores.
    ///
    /// # Panics
    ///
    /// Panics if the pool is absent, the head is out of range, or
    /// `eps ∉ (0, 1)`.
    pub fn gamma(&self, pool: Option<usize>, head: usize, eps: f32) -> f32 {
        assert!(eps > 0.0 && eps < 1.0, "miscoverage {eps} outside (0,1)");
        let sorted = match pool {
            None => &self.global_sorted[head],
            Some(key) => &self.pool_sorted.get(&key).expect("unknown pool")[head],
        };
        quantile_higher_sorted(sorted, 1.0 - eps)
    }

    /// The full sorted score slice for one head (global pool), e.g. for a
    /// split-conformal sweep via
    /// [`crate::SplitConformal::from_sorted_scores`].
    pub fn sorted_scores(&self, head: usize) -> &[f32] {
        &self.global_sorted[head]
    }
}

/// A fully prepared ε-sweep calibration: the pre-scored calibration half
/// plus an owned copy of the selection half's predictions.
///
/// This is the one shared contract behind `TrainedPitot::calibration` (core)
/// and the experiment harness's generic-predictor path: both predict their
/// holdout halves once, hand the data here, and fit pooled CQR at any
/// number of miscoverage levels without touching a model again.
#[derive(Debug, Clone)]
pub struct SweepCalibration {
    scored: ScoredCalibration,
    sel_preds: Vec<Vec<f32>>,
    sel_targets: Vec<f32>,
    sel_pools: Vec<usize>,
    xis: Vec<f32>,
}

impl SweepCalibration {
    /// Scores the calibration set and takes ownership of the selection
    /// half. `xis` gives each head's training quantile (for
    /// [`HeadSelection::NaiveXi`]).
    ///
    /// # Panics
    ///
    /// Panics if the calibration set is empty or internally inconsistent.
    pub fn new(
        calibration: &PredictionSet<'_>,
        sel_preds: Vec<Vec<f32>>,
        sel_targets: Vec<f32>,
        sel_pools: Vec<usize>,
        xis: Vec<f32>,
    ) -> Self {
        Self {
            scored: ScoredCalibration::new(calibration),
            sel_preds,
            sel_targets,
            sel_pools,
            xis,
        }
    }

    /// Fits pooled CQR at one miscoverage level from the precomputed
    /// scores — a rank lookup plus head selection.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)`.
    pub fn fit(&self, epsilon: f32, selection: HeadSelection) -> PooledConformal {
        PooledConformal::fit_scored(
            &self.scored,
            &PredictionSet {
                predictions: &self.sel_preds,
                targets_log: &self.sel_targets,
                pools: &self.sel_pools,
            },
            &self.xis,
            selection,
            epsilon,
        )
    }

    /// The pre-sorted calibration scores.
    pub fn scored(&self) -> &ScoredCalibration {
        &self.scored
    }
}

use crate::pooled::{HeadSelection, PooledConformal};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_conformal::calibrate_gamma;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let preds: Vec<Vec<f32>> = (0..3)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let targets: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.5)).collect();
        let pools: Vec<usize> = (0..n).map(|i| i % 3).collect();
        (preds, targets, pools)
    }

    #[test]
    fn scores_match_serial_subtraction() {
        let (preds, targets, _) = synthetic(501, 1);
        let scores = upper_scores(&preds, &targets);
        for (h, head) in scores.iter().enumerate() {
            for (i, &s) in head.iter().enumerate() {
                assert_eq!(s, targets[i] - preds[h][i]);
            }
        }
    }

    #[test]
    fn sorted_gammas_match_unsorted_calibration() {
        let (preds, targets, pools) = synthetic(400, 2);
        let set = PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        };
        let scored = ScoredCalibration::new(&set);
        let raw = upper_scores(&preds, &targets);
        for eps in [0.02f32, 0.1, 0.25] {
            for h in 0..3 {
                assert_eq!(scored.gamma(None, h, eps), calibrate_gamma(&raw[h], eps));
                for pool in 0..3usize {
                    let pool_scores: Vec<f32> = (0..targets.len())
                        .filter(|&i| pools[i] == pool)
                        .map(|i| raw[h][i])
                        .collect();
                    assert_eq!(
                        scored.gamma(Some(pool), h, eps),
                        calibrate_gamma(&pool_scores, eps),
                        "pool {pool} head {h} eps {eps}"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_sizes_partition_the_set() {
        let (preds, targets, pools) = synthetic(301, 3);
        let set = PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        };
        let scored = ScoredCalibration::new(&set);
        let total: usize = scored.pool_sizes().map(|(_, n)| n).sum();
        assert_eq!(total, 301);
        assert_eq!(scored.len(), 301);
        assert_eq!(scored.n_heads(), 3);
    }
}
