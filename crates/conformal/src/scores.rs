//! Precomputed nonconformity scores.
//!
//! Every calibration strategy in this crate starts from the same quantity:
//! the upper-bound nonconformity score `sᵢ = yᵢ − ŷᵢ` per head. Re-deriving
//! those scores (and the predictions behind them) once per variant and per
//! miscoverage level is what made the post-training calibrate phase scale
//! with `variants × ε-levels` — exactly the cost conformalized matrix
//! completion identifies as the practical bottleneck. This module computes
//! the scores **once** (chunk-parallel over the `pitot_linalg::par` pool),
//! partitions and sorts them once, and lets every downstream fit — split,
//! scaled, Mondrian, pooled CQR — consume the precomputed slices: fitting
//! at one more ε becomes a rank lookup instead of a fresh predict + sort.

use crate::pooled::PredictionSet;
use pitot_linalg::{par, quantile_higher_sorted};
use std::collections::BTreeMap;

/// Computes per-head upper-bound scores `s[h][i] = targets[i] − preds[h][i]`,
/// chunk-parallel over observations.
///
/// Results are bitwise identical across `PITOT_THREADS` (each element is
/// computed independently).
///
/// # Panics
///
/// Panics if any head's length differs from `targets`.
pub fn upper_scores(preds: &[Vec<f32>], targets: &[f32]) -> Vec<Vec<f32>> {
    preds
        .iter()
        .enumerate()
        .map(|(h, head)| {
            assert_eq!(head.len(), targets.len(), "head {h} length mismatch");
            let mut out = vec![0.0f32; targets.len()];
            par::parallel_for_rows(&mut out, 1, 4096, |start, chunk| {
                for (i, s) in chunk.iter_mut().enumerate() {
                    let k = start + i;
                    *s = targets[k] - head[k];
                }
            });
            out
        })
        .collect()
}

/// One calibration set's scores, partitioned by pool and sorted — computed
/// once, consumed by every `(variant, ε)` fit.
///
/// Equality is elementwise over the sorted score slices, so two instances
/// compare equal exactly when every downstream rank lookup agrees bitwise.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredCalibration {
    /// Per head: every score, ascending.
    pub(crate) global_sorted: Vec<Vec<f32>>,
    /// Pool key → per-head ascending scores for that pool.
    pub(crate) pool_sorted: BTreeMap<usize, Vec<Vec<f32>>>,
    pub(crate) n: usize,
}

impl ScoredCalibration {
    /// Scores, partitions, and sorts a calibration set.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty or internally inconsistent.
    pub fn new(calibration: &PredictionSet<'_>) -> Self {
        assert!(
            !calibration.targets_log.is_empty(),
            "cannot calibrate on an empty set"
        );
        let scores = upper_scores(calibration.predictions, calibration.targets_log);
        let n_heads = scores.len();

        let mut pool_sorted: BTreeMap<usize, Vec<Vec<f32>>> = BTreeMap::new();
        for (i, &pool) in calibration.pools.iter().enumerate() {
            let per_head = pool_sorted
                .entry(pool)
                .or_insert_with(|| vec![Vec::new(); n_heads]);
            for (h, head_scores) in scores.iter().enumerate() {
                per_head[h].push(head_scores[i]);
            }
        }
        let mut global_sorted = scores;
        for head in &mut global_sorted {
            head.sort_by(|a, b| a.total_cmp(b));
        }
        for per_head in pool_sorted.values_mut() {
            for head in per_head.iter_mut() {
                head.sort_by(|a, b| a.total_cmp(b));
            }
        }
        Self {
            global_sorted,
            pool_sorted,
            n: calibration.targets_log.len(),
        }
    }

    /// Number of calibration observations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the calibration set is empty (never true for a constructed
    /// instance).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of heads.
    pub fn n_heads(&self) -> usize {
        self.global_sorted.len()
    }

    /// Pool keys present, with their observation counts.
    pub fn pool_sizes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.pool_sorted.iter().map(|(&k, v)| (k, v[0].len()))
    }

    /// Conformal offset γ for one head at miscoverage `eps`, over the whole
    /// set (`pool = None`) or one pool — a rank lookup in the pre-sorted
    /// scores.
    ///
    /// # Panics
    ///
    /// Panics if the pool is absent, the head is out of range, or
    /// `eps ∉ (0, 1)`.
    pub fn gamma(&self, pool: Option<usize>, head: usize, eps: f32) -> f32 {
        assert!(eps > 0.0 && eps < 1.0, "miscoverage {eps} outside (0,1)");
        let sorted = match pool {
            None => &self.global_sorted[head],
            Some(key) => &self.pool_sorted.get(&key).expect("unknown pool")[head],
        };
        quantile_higher_sorted(sorted, 1.0 - eps)
    }

    /// The full sorted score slice for one head (global pool), e.g. for a
    /// split-conformal sweep via
    /// [`crate::SplitConformal::from_sorted_scores`].
    pub fn sorted_scores(&self, head: usize) -> &[f32] {
        &self.global_sorted[head]
    }
}

/// A sliding-window calibration set maintained incrementally.
///
/// Online serving recalibrates on the most recent `capacity` observations
/// (the moving calibration set of Gui et al.'s conformalized matrix
/// completion): every arriving observation pushes one score per head and
/// evicts the oldest once the window is full. Rather than re-scoring and
/// re-sorting the whole window per event, this type keeps the same sorted
/// global/per-pool slices a [`ScoredCalibration`] holds and edits them in
/// place — one binary-search insert plus one binary-search remove per head
/// per event, `O(heads · log n)` comparisons instead of an
/// `O(heads · n log n)` re-sort.
///
/// The maintained state is **bitwise identical** to
/// `ScoredCalibration::new` on the current window contents (property-tested
/// below), so every downstream `fit_scored` — and therefore every served
/// bound — is exactly what a from-scratch refit would produce.
#[derive(Debug, Clone)]
pub struct WindowedScores {
    capacity: usize,
    /// Oldest-first ring of `(per-head scores, pool)` entries.
    ring: std::collections::VecDeque<(Vec<f32>, usize)>,
    /// The incrementally maintained sorted view.
    pub(crate) scored: ScoredCalibration,
    /// Total pushes ever (a monotone per-window logical clock; see
    /// [`WindowedScores::clock`]).
    pub(crate) clock: u64,
}

impl WindowedScores {
    /// An empty window holding at most `capacity` observations with
    /// `n_heads` scores each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `n_heads` is zero.
    pub fn new(capacity: usize, n_heads: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(n_heads > 0, "at least one head required");
        Self {
            capacity,
            // Pre-size modest windows; effectively unbounded ones grow.
            ring: std::collections::VecDeque::with_capacity(capacity.min(4096) + 1),
            scored: ScoredCalibration {
                global_sorted: vec![Vec::new(); n_heads],
                pool_sorted: BTreeMap::new(),
                n: 0,
            },
            clock: 0,
        }
    }

    /// Total observations ever pushed (not just currently retained): a
    /// monotone logical clock. Because pushes are the only mutation and
    /// each push also performs any due eviction, a window's contents are a
    /// pure function of its stream prefix of length `clock` — which is what
    /// lets [`crate::MergeableWindow`] snapshots supersede one another
    /// without tombstones.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Advances the clock to `to` without pushing, for rebuilds that
    /// replace the window's contents wholesale (e.g. re-scoring every entry
    /// under a fine-tuned model): bumping the rebuilt window past the old
    /// one's clock makes its [`crate::MergeableWindow`] snapshots supersede
    /// every snapshot of the pre-rebuild state.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not strictly greater than the current clock (a
    /// stale clock would let old snapshots shadow the rebuilt window).
    pub fn advance_clock(&mut self, to: u64) {
        assert!(
            to > self.clock,
            "clock must advance: {to} is not past {}",
            self.clock
        );
        self.clock = to;
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.scored.n
    }

    /// Whether the window holds no observations yet.
    pub fn is_empty(&self) -> bool {
        self.scored.n == 0
    }

    /// Whether the window has reached capacity (pushes now evict).
    pub fn is_full(&self) -> bool {
        self.scored.n == self.capacity
    }

    /// Maximum number of observations retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of heads per observation.
    pub fn n_heads(&self) -> usize {
        self.scored.global_sorted.len()
    }

    /// Pushes one observation given its per-head log-space predictions and
    /// its log-space target, evicting the oldest observation if the window
    /// is full. Returns the evicted entry's pool key, if any.
    ///
    /// # Panics
    ///
    /// Panics if `head_preds` does not match the head count.
    pub fn push(&mut self, head_preds: &[f32], target_log: f32, pool: usize) -> Option<usize> {
        let scores: Vec<f32> = head_preds.iter().map(|p| target_log - p).collect();
        self.push_scores(scores, pool)
    }

    /// [`WindowedScores::push`] with precomputed scores `s[h] = y − ŷ[h]`.
    ///
    /// # Panics
    ///
    /// Panics if `scores` does not match the head count. Debug builds also
    /// assert every score is finite — a NaN or infinity must be screened
    /// *before* the window boundary, never sorted into it.
    pub fn push_scores(&mut self, scores: Vec<f32>, pool: usize) -> Option<usize> {
        let n_heads = self.n_heads();
        assert_eq!(scores.len(), n_heads, "score/head count mismatch");
        // A NaN entering the sorted views would corrupt every later
        // `total_cmp` partition point and poison every served quantile;
        // callers own upstream validation (see the ingest guard in
        // `pitot-serve`), but the window boundary is the last line.
        debug_assert!(
            scores.iter().all(|s| s.is_finite()),
            "non-finite nonconformity score pushed into calibration window"
        );
        let evicted = if self.scored.n == self.capacity {
            let (old_scores, old_pool) = self.ring.pop_front().expect("full window is non-empty");
            self.remove_sorted(&old_scores, old_pool);
            Some(old_pool)
        } else {
            None
        };

        for (h, &s) in scores.iter().enumerate() {
            insert_sorted(&mut self.scored.global_sorted[h], s);
        }
        let per_pool = self
            .scored
            .pool_sorted
            .entry(pool)
            .or_insert_with(|| vec![Vec::new(); n_heads]);
        for (h, &s) in scores.iter().enumerate() {
            insert_sorted(&mut per_pool[h], s);
        }
        self.ring.push_back((scores, pool));
        self.scored.n += 1;
        self.clock += 1;
        evicted
    }

    /// The maintained sorted-score view, ready for
    /// [`crate::PooledConformal::fit_scored`] or
    /// [`crate::SplitConformal::from_sorted_scores`].
    ///
    /// # Panics
    ///
    /// Panics if the window is empty (an empty calibration set has no
    /// quantiles).
    pub fn scored(&self) -> &ScoredCalibration {
        assert!(!self.is_empty(), "cannot calibrate on an empty window");
        &self.scored
    }

    /// Oldest-first iterator over the window's `(scores, pool)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&[f32], usize)> + '_ {
        self.ring.iter().map(|(s, p)| (s.as_slice(), *p))
    }

    fn remove_sorted(&mut self, scores: &[f32], pool: usize) {
        self.scored.n -= 1;
        for (h, &s) in scores.iter().enumerate() {
            remove_sorted(&mut self.scored.global_sorted[h], s);
        }
        let emptied = {
            let per_pool = self
                .scored
                .pool_sorted
                .get_mut(&pool)
                .expect("evicted entry's pool is present");
            for (h, &s) in scores.iter().enumerate() {
                remove_sorted(&mut per_pool[h], s);
            }
            per_pool[0].is_empty()
        };
        // `ScoredCalibration::new` only creates keys for pools present in
        // the set; drop emptied pools so the views stay identical.
        if emptied {
            self.scored.pool_sorted.remove(&pool);
        }
    }
}

/// Inserts `s` keeping `v` ascending under `total_cmp` (ties appended after
/// their equals, matching a stable sort of equal float bits).
fn insert_sorted(v: &mut Vec<f32>, s: f32) {
    let i = v.partition_point(|x| x.total_cmp(&s).is_le());
    v.insert(i, s);
}

/// Removes one occurrence of `s` from ascending `v`.
fn remove_sorted(v: &mut Vec<f32>, s: f32) {
    let i = v.partition_point(|x| x.total_cmp(&s).is_lt());
    debug_assert!(
        i < v.len() && v[i].total_cmp(&s).is_eq(),
        "evicted score missing from sorted slice"
    );
    v.remove(i);
}

/// A fully prepared ε-sweep calibration: the pre-scored calibration half
/// plus an owned copy of the selection half's predictions.
///
/// This is the one shared contract behind `TrainedPitot::calibration` (core)
/// and the experiment harness's generic-predictor path: both predict their
/// holdout halves once, hand the data here, and fit pooled CQR at any
/// number of miscoverage levels without touching a model again.
#[derive(Debug, Clone)]
pub struct SweepCalibration {
    scored: ScoredCalibration,
    sel_preds: Vec<Vec<f32>>,
    sel_targets: Vec<f32>,
    sel_pools: Vec<usize>,
    xis: Vec<f32>,
}

impl SweepCalibration {
    /// Scores the calibration set and takes ownership of the selection
    /// half. `xis` gives each head's training quantile (for
    /// [`HeadSelection::NaiveXi`]).
    ///
    /// # Panics
    ///
    /// Panics if the calibration set is empty or internally inconsistent.
    pub fn new(
        calibration: &PredictionSet<'_>,
        sel_preds: Vec<Vec<f32>>,
        sel_targets: Vec<f32>,
        sel_pools: Vec<usize>,
        xis: Vec<f32>,
    ) -> Self {
        Self {
            scored: ScoredCalibration::new(calibration),
            sel_preds,
            sel_targets,
            sel_pools,
            xis,
        }
    }

    /// Fits pooled CQR at one miscoverage level from the precomputed
    /// scores — a rank lookup plus head selection.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon ∉ (0, 1)`.
    pub fn fit(&self, epsilon: f32, selection: HeadSelection) -> PooledConformal {
        PooledConformal::fit_scored(
            &self.scored,
            &PredictionSet {
                predictions: &self.sel_preds,
                targets_log: &self.sel_targets,
                pools: &self.sel_pools,
            },
            &self.xis,
            selection,
            epsilon,
        )
    }

    /// The pre-sorted calibration scores.
    pub fn scored(&self) -> &ScoredCalibration {
        &self.scored
    }
}

use crate::pooled::{HeadSelection, PooledConformal};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_conformal::calibrate_gamma;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn synthetic(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f32>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let preds: Vec<Vec<f32>> = (0..3)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let targets: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.5)).collect();
        let pools: Vec<usize> = (0..n).map(|i| i % 3).collect();
        (preds, targets, pools)
    }

    #[test]
    fn scores_match_serial_subtraction() {
        let (preds, targets, _) = synthetic(501, 1);
        let scores = upper_scores(&preds, &targets);
        for (h, head) in scores.iter().enumerate() {
            for (i, &s) in head.iter().enumerate() {
                assert_eq!(s, targets[i] - preds[h][i]);
            }
        }
    }

    #[test]
    fn sorted_gammas_match_unsorted_calibration() {
        let (preds, targets, pools) = synthetic(400, 2);
        let set = PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        };
        let scored = ScoredCalibration::new(&set);
        let raw = upper_scores(&preds, &targets);
        for eps in [0.02f32, 0.1, 0.25] {
            for h in 0..3 {
                assert_eq!(scored.gamma(None, h, eps), calibrate_gamma(&raw[h], eps));
                for pool in 0..3usize {
                    let pool_scores: Vec<f32> = (0..targets.len())
                        .filter(|&i| pools[i] == pool)
                        .map(|i| raw[h][i])
                        .collect();
                    assert_eq!(
                        scored.gamma(Some(pool), h, eps),
                        calibrate_gamma(&pool_scores, eps),
                        "pool {pool} head {h} eps {eps}"
                    );
                }
            }
        }
    }

    /// From-scratch [`ScoredCalibration`] over the last `window` entries of
    /// a `(preds, target, pool)` stream.
    fn scratch_over_window(
        stream: &[(Vec<f32>, f32, usize)],
        window: usize,
    ) -> Option<ScoredCalibration> {
        let tail = &stream[stream.len().saturating_sub(window)..];
        if tail.is_empty() {
            return None;
        }
        let n_heads = tail[0].0.len();
        let preds: Vec<Vec<f32>> = (0..n_heads)
            .map(|h| tail.iter().map(|(p, _, _)| p[h]).collect())
            .collect();
        let targets: Vec<f32> = tail.iter().map(|(_, t, _)| *t).collect();
        let pools: Vec<usize> = tail.iter().map(|(_, _, p)| *p).collect();
        Some(ScoredCalibration::new(&PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        }))
    }

    proptest::proptest! {
        /// After EVERY push of a random stream — duplicate scores, a
        /// drifting pool mix, a window smaller than the stream — the
        /// incrementally maintained view must equal a from-scratch
        /// [`ScoredCalibration::new`] on the same window contents, bitwise
        /// (elementwise PartialEq over the sorted slices).
        #[test]
        fn windowed_refresh_is_bitwise_identical_to_scratch_fit(
            seed in 0u64..40,
            window in 1usize..40,
            n in 1usize..120,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37));
            let n_heads = 1 + (seed as usize % 3);
            let mut win = WindowedScores::new(window, n_heads);
            let mut stream: Vec<(Vec<f32>, f32, usize)> = Vec::new();
            for i in 0..n {
                // Quantized values force duplicate scores; the pool mix
                // drifts so pools appear and empty out over the stream.
                let preds: Vec<f32> = (0..n_heads)
                    .map(|_| (rng.gen_range(-8i32..8) as f32) * 0.25)
                    .collect();
                let target = (rng.gen_range(-8i32..8) as f32) * 0.25;
                let pool = if i < n / 2 { i % 2 } else { 2 + i % 2 };
                win.push(&preds, target, pool);
                stream.push((preds, target, pool));

                let scratch = scratch_over_window(&stream, window).unwrap();
                proptest::prop_assert_eq!(win.scored(), &scratch, "diverged after push {}", i);
            }
            proptest::prop_assert_eq!(win.len(), window.min(n));
            proptest::prop_assert_eq!(win.is_full(), n >= window);
        }
    }

    #[test]
    fn windowed_gammas_match_scratch_after_eviction() {
        // End-to-end: the γ a served bound would use is identical whether
        // the window was maintained incrementally or rebuilt from scratch.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut win = WindowedScores::new(64, 2);
        let mut stream = Vec::new();
        for i in 0..300 {
            let preds = vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)];
            let target = rng.gen_range(-1.0f32..1.5);
            let pool = i % 3;
            win.push(&preds, target, pool);
            stream.push((preds, target, pool));
        }
        let scratch = scratch_over_window(&stream, 64).unwrap();
        for eps in [0.02f32, 0.1, 0.3] {
            for h in 0..2 {
                assert_eq!(
                    win.scored().gamma(None, h, eps),
                    scratch.gamma(None, h, eps)
                );
                for pool in 0..3 {
                    assert_eq!(
                        win.scored().gamma(Some(pool), h, eps),
                        scratch.gamma(Some(pool), h, eps)
                    );
                }
            }
        }
        // The ring preserves arrival order of the survivors.
        let tail = &stream[stream.len() - 64..];
        for ((got, pool), want) in win.entries().zip(tail) {
            let want_scores: Vec<f32> = want.0.iter().map(|p| want.1 - p).collect();
            assert_eq!(got, want_scores.as_slice());
            assert_eq!(pool, want.2);
        }
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_refuses_to_calibrate() {
        let win = WindowedScores::new(8, 1);
        let _ = win.scored();
    }

    #[test]
    fn pool_sizes_partition_the_set() {
        let (preds, targets, pools) = synthetic(301, 3);
        let set = PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        };
        let scored = ScoredCalibration::new(&set);
        let total: usize = scored.pool_sizes().map(|(_, n)| n).sum();
        assert_eq!(total, 301);
        assert_eq!(scored.len(), 301);
        assert_eq!(scored.n_heads(), 3);
    }
}
