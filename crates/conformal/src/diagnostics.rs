//! Coverage diagnostics: is a calibrated predictor actually delivering its
//! promised miscoverage, everywhere?
//!
//! Marginal coverage (the number conformal prediction guarantees) can hide
//! systematic failures: a predictor may over-cover quiet workloads and
//! under-cover noisy ones while averaging out exactly right. These helpers
//! quantify that:
//!
//! - [`CoverageCurve`]: empirical coverage and margin across an ε grid
//!   (the data behind paper Figs 5/11);
//! - [`conditional_coverage`]: per-group empirical coverage (the paper's
//!   motivation for calibration pools);
//! - [`worst_group_coverage`]: the group a deadline-sensitive deployment
//!   actually experiences;
//! - [`calibration_error`]: mean |empirical − nominal| coverage over a grid.

use crate::metrics::{coverage, overprovision_margin};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Empirical coverage/margin across a miscoverage grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageCurve {
    /// Nominal miscoverage rates ε.
    pub epsilon: Vec<f32>,
    /// Empirical coverage at each ε.
    pub coverage: Vec<f32>,
    /// Overprovisioning margin at each ε.
    pub margin: Vec<f32>,
}

impl CoverageCurve {
    /// Evaluates a calibrate-and-bound closure across `epsilons`.
    ///
    /// `bound_at(ε)` must return log-space bounds for a fixed test set;
    /// `targets_log` are that set's true values.
    ///
    /// # Panics
    ///
    /// Panics if `epsilons` is empty or a closure returns a length mismatch.
    pub fn evaluate<F>(epsilons: &[f32], targets_log: &[f32], mut bound_at: F) -> Self
    where
        F: FnMut(f32) -> Vec<f32>,
    {
        assert!(!epsilons.is_empty(), "empty epsilon grid");
        let mut cov = Vec::with_capacity(epsilons.len());
        let mut margin = Vec::with_capacity(epsilons.len());
        for &eps in epsilons {
            let bounds = bound_at(eps);
            assert_eq!(
                bounds.len(),
                targets_log.len(),
                "bound closure length mismatch"
            );
            cov.push(coverage(&bounds, targets_log));
            margin.push(overprovision_margin(&bounds, targets_log));
        }
        Self {
            epsilon: epsilons.to_vec(),
            coverage: cov,
            margin,
        }
    }

    /// Mean absolute deviation between empirical coverage and the nominal
    /// `1 − ε` across the grid.
    pub fn calibration_error(&self) -> f32 {
        calibration_error(&self.epsilon, &self.coverage)
    }

    /// Whether empirical coverage meets `1 − ε − slack` at every grid point.
    pub fn valid_everywhere(&self, slack: f32) -> bool {
        self.epsilon
            .iter()
            .zip(&self.coverage)
            .all(|(&e, &c)| c >= 1.0 - e - slack)
    }
}

/// Mean absolute deviation of empirical coverage from nominal `1 − ε`.
///
/// # Panics
///
/// Panics on empty or mismatched inputs.
pub fn calibration_error(epsilon: &[f32], empirical_coverage: &[f32]) -> f32 {
    assert_eq!(epsilon.len(), empirical_coverage.len(), "length mismatch");
    assert!(!epsilon.is_empty(), "empty grid");
    let total: f32 = epsilon
        .iter()
        .zip(empirical_coverage)
        .map(|(&e, &c)| (c - (1.0 - e)).abs())
        .sum();
    total / epsilon.len() as f32
}

/// Empirical coverage within each group.
///
/// Groups with no members are absent from the result.
///
/// # Panics
///
/// Panics on mismatched input lengths.
pub fn conditional_coverage(
    bounds_log: &[f32],
    targets_log: &[f32],
    groups: &[u64],
) -> BTreeMap<u64, f32> {
    assert_eq!(bounds_log.len(), targets_log.len(), "bound/target mismatch");
    assert_eq!(groups.len(), targets_log.len(), "group/target mismatch");
    let mut hit: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for ((b, t), &g) in bounds_log.iter().zip(targets_log).zip(groups) {
        let e = hit.entry(g).or_insert((0, 0));
        e.1 += 1;
        if t <= b {
            e.0 += 1;
        }
    }
    hit.into_iter()
        .map(|(g, (covered, n))| (g, covered as f32 / n as f32))
        .collect()
}

/// The lowest per-group coverage (with its group), or `None` for empty input.
pub fn worst_group_coverage(
    bounds_log: &[f32],
    targets_log: &[f32],
    groups: &[u64],
) -> Option<(u64, f32)> {
    conditional_coverage(bounds_log, targets_log, groups)
        .into_iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split_conformal::SplitConformal;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn gaussian_pair(seed: u64, n: usize, sigma: f32) -> (Vec<f32>, Vec<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let preds: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let targets: Vec<f32> = preds
            .iter()
            .map(|&p| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                p + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect();
        (preds, targets)
    }

    #[test]
    fn curve_tracks_nominal_coverage() {
        let (pc, tc) = gaussian_pair(0, 4000, 0.3);
        let (pt, tt) = gaussian_pair(1, 4000, 0.3);
        let grid = [0.02f32, 0.05, 0.1, 0.2];
        let curve = CoverageCurve::evaluate(&grid, &tt, |eps| {
            let sc = SplitConformal::fit(&pc, &tc, eps);
            pt.iter().map(|&p| sc.upper_bound_log(p)).collect()
        });
        assert!(
            curve.valid_everywhere(0.02),
            "coverages {:?}",
            curve.coverage
        );
        assert!(curve.calibration_error() < 0.02);
        // Margin should grow as ε shrinks.
        for w in curve.margin.windows(2) {
            assert!(
                w[0] >= w[1],
                "margin not decreasing in ε: {:?}",
                curve.margin
            );
        }
    }

    #[test]
    fn conditional_coverage_detects_group_failure() {
        // Bound covers group 0 always, group 1 never.
        let bounds = vec![1.0f32, 1.0, 1.0, 1.0];
        let targets = vec![0.5f32, 0.5, 2.0, 2.0];
        let groups = vec![0u64, 0, 1, 1];
        let cc = conditional_coverage(&bounds, &targets, &groups);
        assert_eq!(cc[&0], 1.0);
        assert_eq!(cc[&1], 0.0);
        assert_eq!(
            worst_group_coverage(&bounds, &targets, &groups),
            Some((1, 0.0))
        );
    }

    #[test]
    fn calibration_error_zero_when_exact() {
        let eps = [0.1f32, 0.2];
        let cov = [0.9f32, 0.8];
        assert_eq!(calibration_error(&eps, &cov), 0.0);
    }

    #[test]
    fn worst_group_of_empty_is_none() {
        assert_eq!(worst_group_coverage(&[], &[], &[]), None);
    }

    #[test]
    #[should_panic(expected = "bound/target mismatch")]
    fn conditional_coverage_checks_lengths() {
        conditional_coverage(&[1.0], &[1.0, 2.0], &[0, 0]);
    }
}
