//! Bound quality metrics (paper Sec 3.5 and Sec 5.1).

/// Fraction of targets at or below their bound (both in log space).
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn coverage(bounds_log: &[f32], targets_log: &[f32]) -> f32 {
    assert_eq!(bounds_log.len(), targets_log.len(), "length mismatch");
    assert!(!bounds_log.is_empty(), "coverage of empty set");
    let covered = bounds_log
        .iter()
        .zip(targets_log)
        .filter(|(b, t)| t <= b)
        .count();
    covered as f32 / bounds_log.len() as f32
}

/// Overprovisioning margin (paper Eq 11):
/// `m = E[max(C̃ − C*, 0) / C*] = E[max(exp(b − t) − 1, 0)]`
/// with `b`, `t` in log space.
///
/// Lower is tighter; a bound that exactly equals the runtime has margin 0.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn overprovision_margin(bounds_log: &[f32], targets_log: &[f32]) -> f32 {
    assert_eq!(bounds_log.len(), targets_log.len(), "length mismatch");
    assert!(!bounds_log.is_empty(), "margin of empty set");
    let total: f64 = bounds_log
        .iter()
        .zip(targets_log)
        .map(|(b, t)| ((b - t).exp() - 1.0).max(0.0) as f64)
        .sum();
    (total / bounds_log.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_ties_as_covered() {
        assert_eq!(coverage(&[1.0, 2.0], &[1.0, 3.0]), 0.5);
        assert_eq!(coverage(&[1.0], &[1.0]), 1.0);
    }

    #[test]
    fn margin_zero_for_exact_bounds() {
        assert_eq!(overprovision_margin(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn margin_matches_hand_computation() {
        // bound = ln(2), target = ln(1): margin = (2/1 - 1) = 1.
        let m = overprovision_margin(&[2.0f32.ln()], &[0.0]);
        assert!((m - 1.0).abs() < 1e-5);
        // Under-prediction contributes zero (it is a coverage failure, not
        // overprovisioning).
        let m = overprovision_margin(&[0.0], &[1.0]);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn tighter_bounds_have_smaller_margin() {
        let targets = [0.0f32; 4];
        let loose = [0.5f32; 4];
        let tight = [0.1f32; 4];
        assert!(overprovision_margin(&tight, &targets) < overprovision_margin(&loose, &targets));
    }

    #[test]
    fn margin_and_coverage_trade_off_monotonically() {
        // Raising every bound by a constant can only increase coverage and
        // can only increase margin — the fundamental trade-off both metrics
        // must respect for conformal calibration to be meaningful.
        let targets: Vec<f32> = (0..50).map(|i| (i as f32 * 0.37).sin()).collect();
        let base: Vec<f32> = targets.iter().map(|t| t - 0.2).collect();
        let mut prev_cov = 0.0;
        let mut prev_margin = 0.0;
        for shift in [0.0f32, 0.2, 0.4, 0.8] {
            let bounds: Vec<f32> = base.iter().map(|b| b + shift).collect();
            let cov = coverage(&bounds, &targets);
            let margin = overprovision_margin(&bounds, &targets);
            assert!(cov >= prev_cov, "coverage not monotone at shift {shift}");
            assert!(
                margin >= prev_margin,
                "margin not monotone at shift {shift}"
            );
            prev_cov = cov;
            prev_margin = margin;
        }
        assert_eq!(prev_cov, 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn coverage_checks_lengths() {
        let _ = coverage(&[1.0], &[1.0, 2.0]);
    }
}
