//! Mondrian (group-conditional) split conformal calibration.
//!
//! The paper's calibration pools condition on one specific variable — the
//! number of interfering workloads. That construction generalizes: partition
//! calibration data by *any* exchangeability-preserving categorical key
//! (platform class, benchmark suite, runtime kind, …) and calibrate each
//! cell separately. Coverage then holds *conditionally on the key*, which is
//! strictly stronger than marginal coverage and survives distribution shift
//! of the key frequencies — the property the paper invokes for its pools
//! ("conditioning on the number of simultaneously-running workloads … allows
//! Pitot to maintain conditional exchangeability even under distribution
//! shift of I").
//!
//! [`MondrianConformal`] is the single-head building block; Pitot's
//! multi-head pipeline keeps using `PooledConformal`, and the shift
//! experiment uses this module to compare keyed vs global calibration under
//! interference-arity shift.

use crate::split_conformal::calibrate_gamma;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Group-conditional split conformal over a single prediction head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MondrianConformal {
    gammas: BTreeMap<u64, f32>,
    fallback: f32,
    miscoverage: f32,
    min_group: usize,
}

impl MondrianConformal {
    /// Default minimum calibration cell size before falling back to the
    /// global offset.
    pub const DEFAULT_MIN_GROUP: usize = 25;

    /// Calibrates per-group offsets from `(prediction, target, group)`
    /// triples in log space, with the default minimum cell size.
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched inputs or `miscoverage ∉ (0, 1)`.
    pub fn fit(
        predictions_log: &[f32],
        targets_log: &[f32],
        groups: &[u64],
        miscoverage: f32,
    ) -> Self {
        Self::fit_with_min_group(
            predictions_log,
            targets_log,
            groups,
            miscoverage,
            Self::DEFAULT_MIN_GROUP,
        )
    }

    /// [`MondrianConformal::fit`] with an explicit minimum cell size.
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched inputs or `miscoverage ∉ (0, 1)`.
    pub fn fit_with_min_group(
        predictions_log: &[f32],
        targets_log: &[f32],
        groups: &[u64],
        miscoverage: f32,
        min_group: usize,
    ) -> Self {
        assert_eq!(
            predictions_log.len(),
            targets_log.len(),
            "prediction/target mismatch"
        );
        let all_scores: Vec<f32> = predictions_log
            .iter()
            .zip(targets_log)
            .map(|(p, t)| t - p)
            .collect();
        Self::from_scores(&all_scores, groups, miscoverage, min_group)
    }

    /// Calibrates per-group offsets directly from precomputed scores
    /// `sᵢ = yᵢ − ŷᵢ` (one fresh predict pass serves every variant).
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched inputs or `miscoverage ∉ (0, 1)`.
    pub fn from_scores(
        all_scores: &[f32],
        groups: &[u64],
        miscoverage: f32,
        min_group: usize,
    ) -> Self {
        assert!(!all_scores.is_empty(), "empty calibration set");
        assert_eq!(groups.len(), all_scores.len(), "group/score mismatch");

        let fallback = calibrate_gamma(all_scores, miscoverage);

        let mut by_group: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
        for (i, &g) in groups.iter().enumerate() {
            by_group.entry(g).or_default().push(all_scores[i]);
        }
        let gammas = by_group
            .into_iter()
            .filter(|(_, scores)| scores.len() >= min_group)
            .map(|(g, scores)| (g, calibrate_gamma(&scores, miscoverage)))
            .collect();

        Self {
            gammas,
            fallback,
            miscoverage,
            min_group,
        }
    }

    /// The offset used for `group` (the global fallback if the group's
    /// calibration cell was too small or unseen).
    pub fn gamma_for(&self, group: u64) -> f32 {
        self.gammas.get(&group).copied().unwrap_or(self.fallback)
    }

    /// Groups with their own calibrated offset.
    pub fn calibrated_groups(&self) -> impl Iterator<Item = u64> + '_ {
        self.gammas.keys().copied()
    }

    /// The global fallback offset.
    pub fn fallback_gamma(&self) -> f32 {
        self.fallback
    }

    /// Target miscoverage rate.
    pub fn miscoverage(&self) -> f32 {
        self.miscoverage
    }

    /// Minimum calibration cell size.
    pub fn min_group(&self) -> usize {
        self.min_group
    }

    /// Upper bound in log space for a fresh prediction in `group`.
    pub fn upper_bound_log(&self, prediction_log: f32, group: u64) -> f32 {
        prediction_log + self.gamma_for(group)
    }

    /// Vectorized [`MondrianConformal::upper_bound_log`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn upper_bounds_log(&self, predictions_log: &[f32], groups: &[u64]) -> Vec<f32> {
        assert_eq!(predictions_log.len(), groups.len(), "length mismatch");
        predictions_log
            .iter()
            .zip(groups)
            .map(|(&p, &g)| self.upper_bound_log(p, g))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::coverage;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Three groups with very different noise levels and a mean-only model.
    fn scenario(seed: u64, n: usize, group_weights: &[f32; 3]) -> (Vec<f32>, Vec<f32>, Vec<u64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sigmas = [0.05f32, 0.2, 0.8];
        let mut preds = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        let total: f32 = group_weights.iter().sum();
        for _ in 0..n {
            let u: f32 = rng.gen_range(0.0..total);
            let g = if u < group_weights[0] {
                0
            } else if u < group_weights[0] + group_weights[1] {
                1
            } else {
                2
            };
            let mean = rng.gen_range(-1.0f32..1.0);
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            preds.push(mean);
            targets.push(mean + sigmas[g] * z);
            groups.push(g as u64);
        }
        (preds, targets, groups)
    }

    #[test]
    fn per_group_coverage_holds() {
        let (pc, tc, gc) = scenario(0, 6000, &[1.0, 1.0, 1.0]);
        let (pt, tt, gt) = scenario(1, 6000, &[1.0, 1.0, 1.0]);
        let mc = MondrianConformal::fit(&pc, &tc, &gc, 0.1);
        let bounds = mc.upper_bounds_log(&pt, &gt);
        for g in 0..3u64 {
            let idx: Vec<usize> = (0..tt.len()).filter(|&i| gt[i] == g).collect();
            let b: Vec<f32> = idx.iter().map(|&i| bounds[i]).collect();
            let t: Vec<f32> = idx.iter().map(|&i| tt[i]).collect();
            let cov = coverage(&b, &t);
            assert!(cov >= 0.87, "group {g} coverage {cov}");
        }
    }

    #[test]
    fn noisy_group_gets_larger_gamma() {
        let (pc, tc, gc) = scenario(2, 6000, &[1.0, 1.0, 1.0]);
        let mc = MondrianConformal::fit(&pc, &tc, &gc, 0.1);
        assert!(mc.gamma_for(0) < mc.gamma_for(1));
        assert!(mc.gamma_for(1) < mc.gamma_for(2));
    }

    #[test]
    fn group_conditional_coverage_survives_key_shift() {
        // Calibrate on mostly-quiet data, test on mostly-noisy data. Global
        // calibration under-covers; Mondrian holds per group by construction.
        let (pc, tc, gc) = scenario(3, 6000, &[10.0, 1.0, 1.0]);
        let (pt, tt, gt) = scenario(4, 6000, &[1.0, 1.0, 10.0]);
        let eps = 0.1;
        let mondrian = MondrianConformal::fit(&pc, &tc, &gc, eps);
        let global_groups: Vec<u64> = vec![0; gc.len()];
        let global = MondrianConformal::fit(&pc, &tc, &global_groups, eps);

        let b_m = mondrian.upper_bounds_log(&pt, &gt);
        let b_g: Vec<f32> = pt.iter().map(|&p| global.upper_bound_log(p, 0)).collect();
        let cov_m = coverage(&b_m, &tt);
        let cov_g = coverage(&b_g, &tt);
        assert!(
            cov_m >= 1.0 - eps - 0.02,
            "Mondrian coverage {cov_m} under shift"
        );
        assert!(
            cov_g < cov_m - 0.03,
            "global calibration should break under shift: {cov_g} vs {cov_m}"
        );
    }

    #[test]
    fn unseen_group_uses_fallback() {
        let (pc, tc, gc) = scenario(5, 1000, &[1.0, 1.0, 1.0]);
        let mc = MondrianConformal::fit(&pc, &tc, &gc, 0.1);
        assert_eq!(mc.gamma_for(999), mc.fallback_gamma());
    }

    #[test]
    fn tiny_groups_fall_back() {
        let preds = vec![0.0f32; 100];
        let targets: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let mut groups = vec![0u64; 100];
        groups[0] = 7;
        groups[1] = 7; // only two members: below min_group
        let mc = MondrianConformal::fit(&preds, &targets, &groups, 0.1);
        assert!(!mc.calibrated_groups().any(|g| g == 7));
        assert_eq!(mc.gamma_for(7), mc.fallback_gamma());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        #[test]
        fn mondrian_marginal_coverage_property(seed in 0u64..30, eps in 0.05f32..0.25) {
            let (pc, tc, gc) = scenario(seed + 50, 2000, &[1.0, 1.0, 1.0]);
            let (pt, tt, gt) = scenario(seed + 90, 2000, &[1.0, 1.0, 1.0]);
            let mc = MondrianConformal::fit(&pc, &tc, &gc, eps);
            let cov = coverage(&mc.upper_bounds_log(&pt, &gt), &tt);
            // Per-group n ≈ 667; allow cross-group variance.
            let slack = 3.5 * (eps * (1.0 - eps) * 3.0 / 2000.0).sqrt() + 0.01;
            prop_assert!(cov >= 1.0 - eps - slack, "coverage {cov} at ε {eps}");
        }
    }
}
