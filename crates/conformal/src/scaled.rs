//! Scale-normalized split conformal ("CQR-r" family, Sousa et al., 2022).
//!
//! Plain split conformal adds one constant γ to every prediction, so the
//! bound cannot adapt to heteroscedasticity. The paper solves this with
//! quantile heads; the *scaled-score* family cited by the paper (Sousa
//! et al.) solves it differently: conformity scores are normalized by a
//! per-observation dispersion estimate `σ̂ᵢ`,
//!
//! ```text
//! sᵢ = (yᵢ − ŷᵢ) / σ̂ᵢ,      bound(x) = ŷ(x) + γ·σ̂(x),
//! ```
//!
//! which keeps the single-offset guarantee but lets the bound stretch where
//! the model is uncertain. In Pitot the natural dispersion estimate is the
//! spread between two quantile heads (e.g. `ξ=0.9` minus `ξ=0.5`), giving a
//! third calibration strategy the conformal-variants experiment compares
//! against one-sided CQR and plain split conformal.

use crate::split_conformal::calibrate_gamma;
use serde::{Deserialize, Serialize};

/// Smallest dispersion used for normalization; guards against degenerate
/// (zero-width) head spreads.
pub const MIN_SCALE: f32 = 1e-4;

/// A calibrated scaled-score upper-bound predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaledConformal {
    gamma: f32,
    miscoverage: f32,
}

impl ScaledConformal {
    /// Calibrates on predictions, per-observation dispersion estimates, and
    /// targets (log space).
    ///
    /// Dispersions are clamped to at least [`MIN_SCALE`]; they need not be
    /// accurate for validity — only exchangeable — but better estimates give
    /// tighter bounds.
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched inputs, a non-finite or negative
    /// dispersion, or `miscoverage ∉ (0, 1)`.
    pub fn fit(
        predictions_log: &[f32],
        dispersions: &[f32],
        targets_log: &[f32],
        miscoverage: f32,
    ) -> Self {
        assert_eq!(
            predictions_log.len(),
            targets_log.len(),
            "prediction/target mismatch"
        );
        assert_eq!(
            dispersions.len(),
            targets_log.len(),
            "dispersion/target mismatch"
        );
        let scores: Vec<f32> = predictions_log
            .iter()
            .zip(dispersions)
            .zip(targets_log)
            .map(|((p, &d), t)| {
                assert!(d.is_finite() && d >= 0.0, "invalid dispersion {d}");
                (t - p) / d.max(MIN_SCALE)
            })
            .collect();
        Self {
            gamma: calibrate_gamma(&scores, miscoverage),
            miscoverage,
        }
    }

    /// Calibrates directly from precomputed *scaled* scores
    /// `sᵢ = (yᵢ − ŷᵢ)/σ̂ᵢ` (dispersions already divided out).
    ///
    /// # Panics
    ///
    /// Panics if `scaled_scores` is empty or `miscoverage ∉ (0, 1)`.
    pub fn from_scores(scaled_scores: &[f32], miscoverage: f32) -> Self {
        Self {
            gamma: calibrate_gamma(scaled_scores, miscoverage),
            miscoverage,
        }
    }

    /// The calibrated normalized offset γ.
    pub fn offset(&self) -> f32 {
        self.gamma
    }

    /// Target miscoverage rate.
    pub fn miscoverage(&self) -> f32 {
        self.miscoverage
    }

    /// Upper bound in log space for a fresh prediction with dispersion `d`.
    pub fn upper_bound_log(&self, prediction_log: f32, dispersion: f32) -> f32 {
        prediction_log + self.gamma * dispersion.max(MIN_SCALE)
    }

    /// Vectorized [`ScaledConformal::upper_bound_log`].
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn upper_bounds_log(&self, predictions_log: &[f32], dispersions: &[f32]) -> Vec<f32> {
        assert_eq!(predictions_log.len(), dispersions.len(), "length mismatch");
        predictions_log
            .iter()
            .zip(dispersions)
            .map(|(&p, &d)| self.upper_bound_log(p, d))
            .collect()
    }
}

/// Dispersion estimate from two quantile heads: `max(hi − lo, MIN_SCALE)`.
///
/// This is the Pitot-native way to feed [`ScaledConformal`]: reuse the
/// existing ξ=0.5 and ξ=0.9 heads as a spread proxy.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn head_spread(lo_log: &[f32], hi_log: &[f32]) -> Vec<f32> {
    assert_eq!(lo_log.len(), hi_log.len(), "length mismatch");
    lo_log
        .iter()
        .zip(hi_log)
        .map(|(&l, &h)| (h - l).max(MIN_SCALE))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{coverage, overprovision_margin};
    use crate::split_conformal::SplitConformal;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Heteroscedastic scenario where dispersion is observable: returns
    /// (predictions, dispersions, targets).
    fn scenario(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut preds = Vec::with_capacity(n);
        let mut disp = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let mean = rng.gen_range(-1.0f32..1.0);
            // Half the data is quiet, half is 8x noisier.
            let sigma = if i % 2 == 0 { 0.05 } else { 0.4 };
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            preds.push(mean);
            disp.push(sigma); // perfectly informative dispersion
            y.push(mean + sigma * z);
        }
        (preds, disp, y)
    }

    #[test]
    fn scaled_bounds_cover() {
        let (pc, dc, yc) = scenario(0, 3000);
        let (pt, dt, yt) = scenario(1, 3000);
        let sc = ScaledConformal::fit(&pc, &dc, &yc, 0.1);
        let bounds = sc.upper_bounds_log(&pt, &dt);
        let cov = coverage(&bounds, &yt);
        assert!(cov >= 0.88, "coverage {cov}");
    }

    #[test]
    fn scaling_beats_constant_offset_on_margin() {
        // With informative dispersion, the scaled bound should be tighter
        // than plain split conformal at equal coverage.
        let (pc, dc, yc) = scenario(2, 4000);
        let (pt, dt, yt) = scenario(3, 4000);
        let scaled = ScaledConformal::fit(&pc, &dc, &yc, 0.1);
        let plain = SplitConformal::fit(&pc, &yc, 0.1);
        let b_scaled = scaled.upper_bounds_log(&pt, &dt);
        let b_plain: Vec<f32> = pt.iter().map(|&p| plain.upper_bound_log(p)).collect();
        let m_scaled = overprovision_margin(&b_scaled, &yt);
        let m_plain = overprovision_margin(&b_plain, &yt);
        assert!(
            m_scaled < m_plain,
            "scaled margin {m_scaled} should beat plain {m_plain}"
        );
        // Both must still cover.
        assert!(coverage(&b_scaled, &yt) >= 0.88);
        assert!(coverage(&b_plain, &yt) >= 0.88);
    }

    #[test]
    fn degenerate_dispersion_is_clamped() {
        let preds = vec![0.0f32; 50];
        let disp = vec![0.0f32; 50];
        let targets: Vec<f32> = (0..50).map(|i| i as f32 * 1e-3).collect();
        let sc = ScaledConformal::fit(&preds, &disp, &targets, 0.1);
        let b = sc.upper_bound_log(0.0, 0.0);
        assert!(b.is_finite());
        assert!(b > 0.0, "clamped scale must still lift the bound");
    }

    #[test]
    fn head_spread_clamps_inversions() {
        let lo = [1.0f32, 2.0];
        let hi = [1.5f32, 1.9]; // second pair inverted
        let d = head_spread(&lo, &hi);
        assert!((d[0] - 0.5).abs() < 1e-6);
        assert_eq!(d[1], MIN_SCALE);
    }

    #[test]
    #[should_panic(expected = "invalid dispersion")]
    fn rejects_nan_dispersion() {
        ScaledConformal::fit(&[0.0], &[f32::NAN], &[0.0], 0.1);
    }

    proptest! {
        #[test]
        fn scaled_coverage_property(seed in 0u64..40, eps in 0.05f32..0.25) {
            let (pc, dc, yc) = scenario(seed + 100, 1500);
            let (pt, dt, yt) = scenario(seed + 200, 1500);
            let sc = ScaledConformal::fit(&pc, &dc, &yc, eps);
            let cov = coverage(&sc.upper_bounds_log(&pt, &dt), &yt);
            // Both the calibration quantile and the empirical coverage are
            // estimated from 1500 samples, so the fluctuation budget needs
            // both binomial terms (≈ √2 × the one-sided slack).
            let slack = 3.0 * (2.0 * eps * (1.0 - eps) / 1500.0).sqrt() + 0.01;
            prop_assert!(cov >= 1.0 - eps - slack, "coverage {cov} at ε {eps}");
        }
    }
}
