//! Monotone rearrangement of quantile-head predictions
//! (Chernozhukov, Fernández-Val & Galichon, 2010).
//!
//! Independently trained quantile heads can *cross*: the ξ=0.9 head may
//! predict below the ξ=0.8 head for some observations, which makes the
//! "pick the tightest calibrated head" selection (paper App B.2) noisier
//! than it needs to be. Sorting each observation's head predictions into
//! non-decreasing order restores monotonicity, and provably never increases
//! any head's pinball loss. The paper does not mention crossing; this
//! module makes the fix available and the experiment harness reports how
//! often crossing actually occurs.

/// Sorts each observation's predictions across heads into non-decreasing
/// order, in place.
///
/// `predictions[h][i]` is head `h`'s prediction for observation `i`, with
/// heads already ordered by increasing training quantile ξ.
///
/// # Panics
///
/// Panics if head lengths disagree.
pub fn rearrange_heads(predictions: &mut [Vec<f32>]) {
    if predictions.len() < 2 {
        return;
    }
    let n = predictions[0].len();
    for (h, p) in predictions.iter().enumerate() {
        assert_eq!(p.len(), n, "head {h} length mismatch");
    }
    let mut column = vec![0.0f32; predictions.len()];
    for i in 0..n {
        for (h, p) in predictions.iter().enumerate() {
            column[h] = p[i];
        }
        column.sort_by(f32::total_cmp);
        for (h, p) in predictions.iter_mut().enumerate() {
            p[i] = column[h];
        }
    }
}

/// Fraction of observations whose head predictions cross (are not
/// non-decreasing in ξ). A diagnostic for how much [`rearrange_heads`]
/// actually changes.
///
/// # Panics
///
/// Panics if head lengths disagree.
pub fn crossing_rate(predictions: &[Vec<f32>]) -> f32 {
    if predictions.len() < 2 || predictions[0].is_empty() {
        return 0.0;
    }
    let n = predictions[0].len();
    for (h, p) in predictions.iter().enumerate() {
        assert_eq!(p.len(), n, "head {h} length mismatch");
    }
    let crossed = (0..n)
        .filter(|&i| predictions.windows(2).any(|pair| pair[1][i] < pair[0][i]))
        .count();
    crossed as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sorted_input_is_untouched() {
        let mut preds = vec![vec![1.0f32, 2.0], vec![1.5, 2.5], vec![2.0, 3.0]];
        let before = preds.clone();
        rearrange_heads(&mut preds);
        assert_eq!(preds, before);
        assert_eq!(crossing_rate(&preds), 0.0);
    }

    #[test]
    fn crossing_is_fixed_per_observation() {
        // Observation 0 crosses (heads 3,1,2); observation 1 does not.
        let mut preds = vec![vec![3.0f32, 1.0], vec![1.0, 2.0], vec![2.0, 3.0]];
        assert_eq!(crossing_rate(&preds), 0.5);
        rearrange_heads(&mut preds);
        assert_eq!(preds, vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        assert_eq!(crossing_rate(&preds), 0.0);
    }

    #[test]
    fn single_head_is_noop() {
        let mut preds = vec![vec![5.0f32, -1.0]];
        rearrange_heads(&mut preds);
        assert_eq!(preds, vec![vec![5.0, -1.0]]);
    }

    proptest! {
        /// Rearrangement never increases pinball loss at any quantile
        /// (Chernozhukov et al., Prop 4) — checked empirically.
        #[test]
        fn never_hurts_pinball_loss(
            raw in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 30),
                2..5,
            ),
            targets in proptest::collection::vec(-10.0f32..10.0, 30),
        ) {
            let n_heads = raw.len();
            let xis: Vec<f32> =
                (0..n_heads).map(|h| 0.5 + 0.45 * h as f32 / n_heads as f32).collect();
            let pinball = |pred: &[f32], xi: f32| -> f32 {
                pred.iter()
                    .zip(&targets)
                    .map(|(p, t)| if t > p { xi * (t - p) } else { (1.0 - xi) * (p - t) })
                    .sum::<f32>()
            };
            let before: f32 = raw
                .iter()
                .zip(&xis)
                .map(|(p, &xi)| pinball(p, xi))
                .sum();
            let mut sorted = raw.clone();
            rearrange_heads(&mut sorted);
            let after: f32 = sorted
                .iter()
                .zip(&xis)
                .map(|(p, &xi)| pinball(p, xi))
                .sum();
            prop_assert!(after <= before + 1e-3, "rearrangement hurt: {before} → {after}");
            prop_assert_eq!(crossing_rate(&sorted), 0.0);
        }

        /// Rearrangement preserves each observation's multiset of values.
        #[test]
        fn preserves_values(
            raw in proptest::collection::vec(
                proptest::collection::vec(-10.0f32..10.0, 10),
                2..6,
            ),
        ) {
            let mut sorted = raw.clone();
            rearrange_heads(&mut sorted);
            for i in 0..raw[0].len() {
                let mut a: Vec<f32> = raw.iter().map(|p| p[i]).collect();
                let mut b: Vec<f32> = sorted.iter().map(|p| p[i]).collect();
                a.sort_by(f32::total_cmp);
                b.sort_by(f32::total_cmp);
                prop_assert_eq!(a, b);
            }
        }
    }
}
