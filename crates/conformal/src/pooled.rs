//! Pooled conformalized quantile regression with optimal quantile selection.
//!
//! The paper's full uncertainty pipeline (Sec 3.5, App B.2):
//!
//! 1. the model is trained with several quantile heads (ξ ∈ {50%, …, 99%});
//! 2. calibration data is *partitioned into pools* by the number of
//!    simultaneously-running workloads (runtime is far noisier under
//!    interference, and homogeneous calibration sets give tighter bounds
//!    while preserving conditional exchangeability);
//! 3. within each pool, every head is conformalized for the target ε, and
//!    the head whose calibrated bound is *tightest on a validation set* is
//!    selected (naive CQR would instead fix ξ = 1 − ε).

use crate::metrics::overprovision_margin;
use crate::scores::ScoredCalibration;
use crate::split_conformal::calibrate_gamma;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-head predictions for a set of observations, with targets and pool keys.
///
/// `predictions[h][i]` is head `h`'s log-space prediction for observation
/// `i`; `pools[i]` is the observation's calibration-pool key (the number of
/// interfering workloads in Pitot).
#[derive(Debug, Clone)]
pub struct PredictionSet<'a> {
    /// One prediction vector per head.
    pub predictions: &'a [Vec<f32>],
    /// Log-space ground-truth runtimes.
    pub targets_log: &'a [f32],
    /// Pool key per observation.
    pub pools: &'a [usize],
}

impl<'a> PredictionSet<'a> {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if heads are empty or lengths disagree.
    fn validate(&self) {
        assert!(!self.predictions.is_empty(), "at least one head required");
        for (h, p) in self.predictions.iter().enumerate() {
            assert_eq!(p.len(), self.targets_log.len(), "head {h} length mismatch");
        }
        assert_eq!(
            self.pools.len(),
            self.targets_log.len(),
            "pool key length mismatch"
        );
    }

    fn indices_in_pool(&self, pool: usize) -> Vec<usize> {
        self.pools
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == pool)
            .map(|(i, _)| i)
            .collect()
    }
}

/// How to pick the quantile head that a pool's bound is built on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeadSelection {
    /// Only one head exists (split conformal over a squared-loss model).
    SingleHead,
    /// Naive CQR: use the head trained at ξ closest to `1 − ε`.
    NaiveXi,
    /// Paper's method: per pool, pick the head with the tightest calibrated
    /// bound on the validation set (App B.2).
    TightestOnValidation,
}

/// Calibration result for one pool: the selected head and its offset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCalibration {
    /// Index of the selected quantile head.
    pub head: usize,
    /// Conformal offset γ added to that head's prediction.
    pub gamma: f32,
}

/// A fully calibrated pooled upper-bound predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PooledConformal {
    miscoverage: f32,
    pools: BTreeMap<usize, PoolCalibration>,
    fallback: PoolCalibration,
}

impl PooledConformal {
    /// Minimum calibration-pool size before falling back to the global pool.
    pub const MIN_POOL: usize = 25;

    /// Fits pooled CQR.
    ///
    /// `calibration` supplies conformity scores; `validation` is used only by
    /// [`HeadSelection::TightestOnValidation`] (pass the calibration set again
    /// for the other policies — it is ignored). `xis` gives each head's
    /// training quantile and is used by [`HeadSelection::NaiveXi`].
    ///
    /// # Panics
    ///
    /// Panics if inputs are inconsistent, `miscoverage ∉ (0,1)`, or `xis`
    /// does not match the head count.
    pub fn fit(
        calibration: &PredictionSet<'_>,
        validation: &PredictionSet<'_>,
        xis: &[f32],
        selection: HeadSelection,
        miscoverage: f32,
    ) -> Self {
        calibration.validate();
        assert!(miscoverage > 0.0 && miscoverage < 1.0);
        assert_eq!(
            xis.len(),
            calibration.predictions.len(),
            "one training quantile per head"
        );
        if selection == HeadSelection::TightestOnValidation {
            validation.validate();
        }

        // Global fallback calibration over all pools.
        let all_idx: Vec<usize> = (0..calibration.targets_log.len()).collect();
        let gamma_global = |head: usize| {
            let scores: Vec<f32> = all_idx
                .iter()
                .map(|&i| calibration.targets_log[i] - calibration.predictions[head][i])
                .collect();
            calibrate_gamma(&scores, miscoverage)
        };
        let n_heads = calibration.predictions.len();
        let fallback = Self::calibrate_pool(
            n_heads,
            &gamma_global,
            validation,
            &validation_indices_for(selection, validation, None),
            xis,
            selection,
            miscoverage,
        );

        let mut pool_keys: Vec<usize> = calibration.pools.to_vec();
        pool_keys.sort_unstable();
        pool_keys.dedup();

        let mut pools = BTreeMap::new();
        for key in pool_keys {
            let cal_idx = calibration.indices_in_pool(key);
            if cal_idx.len() < Self::MIN_POOL {
                continue; // fallback covers this pool
            }
            let val_idx = validation_indices_for(selection, validation, Some(key));
            let gamma_pool = |head: usize| {
                let scores: Vec<f32> = cal_idx
                    .iter()
                    .map(|&i| calibration.targets_log[i] - calibration.predictions[head][i])
                    .collect();
                calibrate_gamma(&scores, miscoverage)
            };
            pools.insert(
                key,
                Self::calibrate_pool(
                    n_heads,
                    &gamma_pool,
                    validation,
                    &val_idx,
                    xis,
                    selection,
                    miscoverage,
                ),
            );
        }

        Self {
            miscoverage,
            pools,
            fallback,
        }
    }

    /// [`PooledConformal::fit`] consuming a [`ScoredCalibration`]: the
    /// calibration side reduces to rank lookups in pre-sorted score slices,
    /// so an ε-sweep (or a variant comparison) pays for prediction and
    /// sorting once. The head-selection semantics are identical to
    /// [`PooledConformal::fit`].
    ///
    /// # Panics
    ///
    /// Panics as [`PooledConformal::fit`].
    pub fn fit_scored(
        calibration: &ScoredCalibration,
        validation: &PredictionSet<'_>,
        xis: &[f32],
        selection: HeadSelection,
        miscoverage: f32,
    ) -> Self {
        assert!(miscoverage > 0.0 && miscoverage < 1.0);
        let n_heads = calibration.n_heads();
        assert_eq!(xis.len(), n_heads, "one training quantile per head");
        if selection == HeadSelection::TightestOnValidation {
            validation.validate();
        }

        let gamma_global = |head: usize| calibration.gamma(None, head, miscoverage);
        let fallback = Self::calibrate_pool(
            n_heads,
            &gamma_global,
            validation,
            &validation_indices_for(selection, validation, None),
            xis,
            selection,
            miscoverage,
        );

        let mut pools = BTreeMap::new();
        for (key, size) in calibration.pool_sizes() {
            if size < Self::MIN_POOL {
                continue; // fallback covers this pool
            }
            let val_idx = validation_indices_for(selection, validation, Some(key));
            let gamma_pool = |head: usize| calibration.gamma(Some(key), head, miscoverage);
            pools.insert(
                key,
                Self::calibrate_pool(
                    n_heads,
                    &gamma_pool,
                    validation,
                    &val_idx,
                    xis,
                    selection,
                    miscoverage,
                ),
            );
        }

        Self {
            miscoverage,
            pools,
            fallback,
        }
    }

    fn calibrate_pool(
        n_heads: usize,
        gamma_for: &dyn Fn(usize) -> f32,
        validation: &PredictionSet<'_>,
        val_idx: &[usize],
        xis: &[f32],
        selection: HeadSelection,
        miscoverage: f32,
    ) -> PoolCalibration {
        match selection {
            HeadSelection::SingleHead => PoolCalibration {
                head: 0,
                gamma: gamma_for(0),
            },
            HeadSelection::NaiveXi => {
                let target = 1.0 - miscoverage;
                let head = (0..n_heads)
                    .min_by(|&a, &b| (xis[a] - target).abs().total_cmp(&(xis[b] - target).abs()))
                    .expect("at least one head");
                PoolCalibration {
                    head,
                    gamma: gamma_for(head),
                }
            }
            HeadSelection::TightestOnValidation => {
                let mut best = PoolCalibration {
                    head: 0,
                    gamma: gamma_for(0),
                };
                let mut best_margin = f32::INFINITY;
                for head in 0..n_heads {
                    let gamma = gamma_for(head);
                    let (bounds, targets): (Vec<f32>, Vec<f32>) = val_idx
                        .iter()
                        .map(|&i| {
                            (
                                validation.predictions[head][i] + gamma,
                                validation.targets_log[i],
                            )
                        })
                        .unzip();
                    if bounds.is_empty() {
                        continue;
                    }
                    let margin = overprovision_margin(&bounds, &targets);
                    if margin < best_margin {
                        best_margin = margin;
                        best = PoolCalibration { head, gamma };
                    }
                }
                best
            }
        }
    }

    /// Target miscoverage rate ε.
    pub fn miscoverage(&self) -> f32 {
        self.miscoverage
    }

    /// The per-pool calibrations (pool key → selected head and offset).
    pub fn pool_calibrations(&self) -> &BTreeMap<usize, PoolCalibration> {
        &self.pools
    }

    /// The calibration used for a pool (falling back to the global one).
    pub fn calibration_for(&self, pool: usize) -> PoolCalibration {
        self.pools.get(&pool).copied().unwrap_or(self.fallback)
    }

    /// Upper bound in log space given every head's prediction for one
    /// observation and its pool key.
    ///
    /// # Panics
    ///
    /// Panics if `head_predictions` is shorter than the selected head index.
    pub fn bound_log(&self, head_predictions: &[f32], pool: usize) -> f32 {
        let cal = self.calibration_for(pool);
        head_predictions[cal.head] + cal.gamma
    }

    /// Vectorized [`PooledConformal::bound_log`] over a prediction set.
    pub fn bounds_log(&self, set: &PredictionSet<'_>) -> Vec<f32> {
        set.validate();
        (0..set.targets_log.len())
            .map(|i| {
                let cal = self.calibration_for(set.pools[i]);
                set.predictions[cal.head][i] + cal.gamma
            })
            .collect()
    }
}

fn validation_indices_for(
    selection: HeadSelection,
    validation: &PredictionSet<'_>,
    pool: Option<usize>,
) -> Vec<usize> {
    if selection != HeadSelection::TightestOnValidation {
        return Vec::new();
    }
    match pool {
        Some(key) => validation.indices_in_pool(key),
        None => (0..validation.targets_log.len()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Builds a synthetic two-pool quantile-regression scenario: pool 0 has
    /// low noise, pool 1 high noise; heads predict mean + z_ξ·σ̂ with a
    /// systematically underestimated σ̂ (so conformal has work to do).
    fn scenario(seed: u64, n: usize) -> (Vec<Vec<f32>>, Vec<f32>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let xis = [0.5f32, 0.8, 0.9, 0.95];
        let z = [0.0f32, 0.84, 1.28, 1.64];
        let mut preds = vec![Vec::with_capacity(n); xis.len()];
        let mut targets = Vec::with_capacity(n);
        let mut pools = Vec::with_capacity(n);
        for i in 0..n {
            let pool = i % 2;
            let sigma = if pool == 0 { 0.05 } else { 0.4 };
            let mean = rng.gen_range(-1.0f32..1.0);
            let noise: f32 = {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            };
            targets.push(mean + sigma * noise);
            pools.push(pool);
            for (h, &zh) in z.iter().enumerate() {
                // Underestimate sigma by 2x: quantile regression that is
                // adaptive but miscalibrated.
                preds[h].push(mean + zh * sigma * 0.5);
            }
        }
        (preds, targets, pools)
    }

    fn xis() -> Vec<f32> {
        vec![0.5, 0.8, 0.9, 0.95]
    }

    #[test]
    fn pooled_cqr_covers_each_pool() {
        let (cp, ct, cpool) = scenario(0, 2000);
        let (vp, vt, vpool) = scenario(1, 2000);
        let (tp, tt, tpool) = scenario(2, 4000);
        let cal = PredictionSet {
            predictions: &cp,
            targets_log: &ct,
            pools: &cpool,
        };
        let val = PredictionSet {
            predictions: &vp,
            targets_log: &vt,
            pools: &vpool,
        };
        let test = PredictionSet {
            predictions: &tp,
            targets_log: &tt,
            pools: &tpool,
        };
        let pc = PooledConformal::fit(&cal, &val, &xis(), HeadSelection::TightestOnValidation, 0.1);
        let bounds = pc.bounds_log(&test);
        for pool in [0usize, 1] {
            let idx: Vec<usize> = (0..tt.len()).filter(|&i| tpool[i] == pool).collect();
            let b: Vec<f32> = idx.iter().map(|&i| bounds[i]).collect();
            let t: Vec<f32> = idx.iter().map(|&i| tt[i]).collect();
            let cov = coverage(&b, &t);
            assert!(cov >= 0.87, "pool {pool} coverage {cov}");
        }
    }

    #[test]
    fn pooling_is_tighter_than_global_for_quiet_pool() {
        let (cp, ct, cpool) = scenario(3, 4000);
        let (vp, vt, vpool) = scenario(4, 4000);
        let (tp, tt, tpool) = scenario(5, 4000);
        let cal = PredictionSet {
            predictions: &cp,
            targets_log: &ct,
            pools: &cpool,
        };
        let val = PredictionSet {
            predictions: &vp,
            targets_log: &vt,
            pools: &vpool,
        };
        let pooled =
            PooledConformal::fit(&cal, &val, &xis(), HeadSelection::TightestOnValidation, 0.1);
        // Force global-only calibration by renaming all pools to one key.
        let one_pool: Vec<usize> = vec![0; ct.len()];
        let cal_g = PredictionSet {
            predictions: &cp,
            targets_log: &ct,
            pools: &one_pool,
        };
        let val_g = PredictionSet {
            predictions: &vp,
            targets_log: &vt,
            pools: &one_pool,
        };
        let global = PooledConformal::fit(
            &cal_g,
            &val_g,
            &xis(),
            HeadSelection::TightestOnValidation,
            0.1,
        );

        // Quiet pool (0): pooled margin should beat global margin.
        let idx: Vec<usize> = (0..tt.len()).filter(|&i| tpool[i] == 0).collect();
        let margin = |pc: &PooledConformal, pool_key: &[usize]| {
            let (b, t): (Vec<f32>, Vec<f32>) = idx
                .iter()
                .map(|&i| {
                    let preds: Vec<f32> = tp.iter().map(|h| h[i]).collect();
                    (pc.bound_log(&preds, pool_key[i]), tt[i])
                })
                .unzip();
            overprovision_margin(&b, &t)
        };
        let m_pooled = margin(&pooled, &tpool);
        let m_global = margin(&global, &one_pool);
        assert!(
            m_pooled < m_global,
            "pooled {m_pooled} should be tighter than global {m_global}"
        );
    }

    #[test]
    fn tightest_selection_beats_naive_on_margin() {
        let (cp, ct, cpool) = scenario(6, 4000);
        let (vp, vt, vpool) = scenario(7, 4000);
        let (tp, tt, tpool) = scenario(8, 4000);
        let cal = PredictionSet {
            predictions: &cp,
            targets_log: &ct,
            pools: &cpool,
        };
        let val = PredictionSet {
            predictions: &vp,
            targets_log: &vt,
            pools: &vpool,
        };
        let test = PredictionSet {
            predictions: &tp,
            targets_log: &tt,
            pools: &tpool,
        };
        let eps = 0.05;
        let tight =
            PooledConformal::fit(&cal, &val, &xis(), HeadSelection::TightestOnValidation, eps);
        let naive = PooledConformal::fit(&cal, &val, &xis(), HeadSelection::NaiveXi, eps);
        let mt = overprovision_margin(&tight.bounds_log(&test), &tt);
        let mn = overprovision_margin(&naive.bounds_log(&test), &tt);
        assert!(mt <= mn * 1.05, "tightest {mt} vs naive {mn}");
    }

    #[test]
    fn fit_scored_is_bitwise_identical_to_fit() {
        // The precomputed-score path must select the same heads and emit the
        // same offsets as the from-scratch fit, at every ε and selection.
        let (cp, ct, cpool) = scenario(21, 2000);
        let (vp, vt, vpool) = scenario(22, 2000);
        let cal = PredictionSet {
            predictions: &cp,
            targets_log: &ct,
            pools: &cpool,
        };
        let val = PredictionSet {
            predictions: &vp,
            targets_log: &vt,
            pools: &vpool,
        };
        let scored = ScoredCalibration::new(&cal);
        for selection in [
            HeadSelection::SingleHead,
            HeadSelection::NaiveXi,
            HeadSelection::TightestOnValidation,
        ] {
            for eps in [0.02f32, 0.1, 0.3] {
                let direct = PooledConformal::fit(&cal, &val, &xis(), selection, eps);
                let via_scores = PooledConformal::fit_scored(&scored, &val, &xis(), selection, eps);
                assert_eq!(
                    direct.fallback, via_scores.fallback,
                    "{selection:?} eps {eps}: fallback"
                );
                assert_eq!(
                    direct.pools, via_scores.pools,
                    "{selection:?} eps {eps}: pools"
                );
            }
        }
    }

    #[test]
    fn single_head_path_works() {
        let preds = vec![vec![0.0f32; 100]];
        let targets: Vec<f32> = (0..100).map(|i| (i as f32) / 1000.0).collect();
        let pools = vec![0usize; 100];
        let set = PredictionSet {
            predictions: &preds,
            targets_log: &targets,
            pools: &pools,
        };
        let pc = PooledConformal::fit(&set, &set, &[0.5], HeadSelection::SingleHead, 0.1);
        let cal = pc.calibration_for(0);
        assert_eq!(cal.head, 0);
        assert!(cal.gamma > 0.08, "gamma {}", cal.gamma);
    }

    #[test]
    fn small_pools_fall_back_to_global() {
        let (cp, ct, mut cpool) = scenario(9, 500);
        // Give 3 observations an exotic pool key.
        cpool[0] = 99;
        cpool[1] = 99;
        cpool[2] = 99;
        let cal = PredictionSet {
            predictions: &cp,
            targets_log: &ct,
            pools: &cpool,
        };
        let pc = PooledConformal::fit(&cal, &cal, &xis(), HeadSelection::NaiveXi, 0.1);
        assert!(!pc.pool_calibrations().contains_key(&99));
        // calibration_for still answers via the fallback.
        let _ = pc.calibration_for(99);
    }

    proptest! {
        /// End-to-end coverage property for the full pooled CQR pipeline.
        #[test]
        fn pooled_coverage_property(seed in 0u64..50, eps in 0.05f32..0.2) {
            let (cp, ct, cpool) = scenario(seed * 3 + 100, 1200);
            let (vp, vt, vpool) = scenario(seed * 3 + 101, 1200);
            let (tp, tt, tpool) = scenario(seed * 3 + 102, 1200);
            let cal = PredictionSet { predictions: &cp, targets_log: &ct, pools: &cpool };
            let val = PredictionSet { predictions: &vp, targets_log: &vt, pools: &vpool };
            let test = PredictionSet { predictions: &tp, targets_log: &tt, pools: &tpool };
            let pc = PooledConformal::fit(&cal, &val, &xis(), HeadSelection::TightestOnValidation, eps);
            let cov = coverage(&pc.bounds_log(&test), &tt);
            // Per-pool calibration halves the effective n; account for both
            // calibration- and test-side variance plus selection slack.
            let n_pool = (tt.len() / 2) as f32;
            let slack = 3.5 * (eps * (1.0 - eps) * 2.0 / n_pool).sqrt() + 0.01;
            prop_assert!(cov >= 1.0 - eps - slack, "coverage {cov} at ε {eps}");
        }
    }
}
