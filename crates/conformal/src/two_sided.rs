//! Two-sided conformalized quantile regression (Romano et al., 2019).
//!
//! The paper works one-sided ("what budget suffices?"), noting in footnote 4
//! that its quantile choice corresponds to `ξ = ε/2` under the more common
//! two-sided CQR. This module implements that two-sided variant: an interval
//! `[lo − γ, hi + γ]` containing the runtime with probability `1 − ε`.
//!
//! In the runtime-prediction domain the *lower* edge is useful beyond
//! symmetry: a job finishing far below the calibrated interval is as
//! anomalous as one blowing past it (e.g. a workload that silently degraded
//! to an error path — the paper's "phase shift" assumption says such changes
//! must be detectable, and the interval provides the detector).

use crate::split_conformal::calibrate_gamma;
use serde::{Deserialize, Serialize};

/// A calibrated two-sided interval predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoSidedCqr {
    gamma: f32,
    miscoverage: f32,
}

/// A calibrated log-space interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower edge (log space).
    pub lo: f32,
    /// Upper edge (log space).
    pub hi: f32,
}

impl Interval {
    /// Interval width in log space (a multiplicative factor once
    /// exponentiated).
    pub fn width(&self) -> f32 {
        self.hi - self.lo
    }

    /// Whether a log-space value falls inside the interval.
    pub fn contains(&self, value_log: f32) -> bool {
        value_log >= self.lo && value_log <= self.hi
    }
}

impl TwoSidedCqr {
    /// Calibrates on lower/upper quantile head predictions and targets (all
    /// log space) for a *total* two-sided miscoverage `epsilon`.
    ///
    /// The conformity score is the CQR score
    /// `sᵢ = max(loᵢ − yᵢ, yᵢ − hiᵢ)`; the shared offset γ is its
    /// `⌈(n+1)(1−ε)⌉`-th smallest value. Pass heads trained at `ξ = ε/2` and
    /// `1 − ε/2` for the textbook configuration — any pair works, coverage
    /// is guaranteed regardless (only tightness suffers).
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs, or `epsilon ∉ (0, 1)`.
    pub fn fit(lower_log: &[f32], upper_log: &[f32], targets_log: &[f32], epsilon: f32) -> Self {
        assert_eq!(
            lower_log.len(),
            targets_log.len(),
            "lower/target length mismatch"
        );
        assert_eq!(
            upper_log.len(),
            targets_log.len(),
            "upper/target length mismatch"
        );
        let scores: Vec<f32> = lower_log
            .iter()
            .zip(upper_log)
            .zip(targets_log)
            .map(|((lo, hi), y)| (lo - y).max(y - hi))
            .collect();
        Self {
            gamma: calibrate_gamma(&scores, epsilon),
            miscoverage: epsilon,
        }
    }

    /// The calibrated offset applied to both edges.
    pub fn offset(&self) -> f32 {
        self.gamma
    }

    /// Target total miscoverage.
    pub fn miscoverage(&self) -> f32 {
        self.miscoverage
    }

    /// Calibrated interval for fresh lower/upper head predictions.
    pub fn interval_log(&self, lower_log: f32, upper_log: f32) -> Interval {
        Interval {
            lo: lower_log - self.gamma,
            hi: upper_log + self.gamma,
        }
    }

    /// Vectorized [`TwoSidedCqr::interval_log`].
    pub fn intervals_log(&self, lower_log: &[f32], upper_log: &[f32]) -> Vec<Interval> {
        assert_eq!(lower_log.len(), upper_log.len(), "edge length mismatch");
        lower_log
            .iter()
            .zip(upper_log)
            .map(|(&lo, &hi)| self.interval_log(lo, hi))
            .collect()
    }
}

/// Fraction of targets inside their interval.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
pub fn interval_coverage(intervals: &[Interval], targets_log: &[f32]) -> f32 {
    assert_eq!(intervals.len(), targets_log.len(), "length mismatch");
    assert!(!intervals.is_empty(), "coverage of empty set");
    let inside = intervals
        .iter()
        .zip(targets_log)
        .filter(|(iv, &t)| iv.contains(t))
        .count();
    inside as f32 / intervals.len() as f32
}

/// Mean multiplicative interval width, `E[exp(hi − lo)]` — the two-sided
/// analogue of the overprovisioning margin.
///
/// # Panics
///
/// Panics if `intervals` is empty.
pub fn mean_interval_factor(intervals: &[Interval]) -> f32 {
    assert!(!intervals.is_empty(), "width of empty set");
    let total: f64 = intervals.iter().map(|iv| iv.width().exp() as f64).sum();
    (total / intervals.len() as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// Heteroscedastic regression scenario: heads estimate the true quantiles
    /// with a systematic underestimate of spread.
    fn scenario(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let mean = rng.gen_range(-2.0f32..2.0);
            let sigma = rng.gen_range(0.05f32..0.5);
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            y.push(mean + sigma * z);
            // Miscalibrated heads: 60% of the true ±1.64σ band.
            lo.push(mean - 1.64 * sigma * 0.6);
            hi.push(mean + 1.64 * sigma * 0.6);
        }
        (lo, hi, y)
    }

    #[test]
    fn calibrated_intervals_cover() {
        let (lo_c, hi_c, y_c) = scenario(0, 3000);
        let (lo_t, hi_t, y_t) = scenario(1, 3000);
        let cqr = TwoSidedCqr::fit(&lo_c, &hi_c, &y_c, 0.1);
        let ivs = cqr.intervals_log(&lo_t, &hi_t);
        let cov = interval_coverage(&ivs, &y_t);
        assert!(cov >= 0.88, "coverage {cov}");
        assert!(cov <= 0.96, "over-covering: {cov}");
    }

    #[test]
    fn miscalibrated_heads_need_positive_gamma() {
        let (lo, hi, y) = scenario(2, 2000);
        let cqr = TwoSidedCqr::fit(&lo, &hi, &y, 0.1);
        assert!(
            cqr.offset() > 0.0,
            "heads underestimate spread, γ must stretch"
        );
    }

    #[test]
    fn overcovering_heads_get_negative_gamma() {
        // Heads already span ±10σ: conformal should *shrink* the interval.
        let (lo, hi, y) = scenario(3, 2000);
        let wide_lo: Vec<f32> = lo.iter().zip(&hi).map(|(l, h)| l - 5.0 * (h - l)).collect();
        let wide_hi: Vec<f32> = lo.iter().zip(&hi).map(|(l, h)| h + 5.0 * (h - l)).collect();
        let cqr = TwoSidedCqr::fit(&wide_lo, &wide_hi, &y, 0.1);
        assert!(cqr.offset() < 0.0, "γ {} should be negative", cqr.offset());
    }

    #[test]
    fn interval_width_is_adaptive() {
        let cqr = TwoSidedCqr {
            gamma: 0.1,
            miscoverage: 0.1,
        };
        let narrow = cqr.interval_log(0.0, 0.2);
        let wide = cqr.interval_log(0.0, 2.0);
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn anomaly_detection_flags_fast_and_slow() {
        let cqr = TwoSidedCqr {
            gamma: 0.05,
            miscoverage: 0.1,
        };
        let iv = cqr.interval_log(1.0, 2.0);
        assert!(iv.contains(1.5));
        assert!(!iv.contains(0.5), "suspiciously fast run must be flagged");
        assert!(!iv.contains(2.5), "suspiciously slow run must be flagged");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fit_checks_lengths() {
        TwoSidedCqr::fit(&[0.0], &[0.0, 1.0], &[0.0], 0.1);
    }

    proptest! {
        /// Coverage holds across epsilon and scenario seeds.
        #[test]
        fn two_sided_coverage_property(seed in 0u64..40, eps in 0.05f32..0.3) {
            let (lo_c, hi_c, y_c) = scenario(seed + 500, 1500);
            let (lo_t, hi_t, y_t) = scenario(seed + 900, 1500);
            let cqr = TwoSidedCqr::fit(&lo_c, &hi_c, &y_c, eps);
            let ivs = cqr.intervals_log(&lo_t, &hi_t);
            let cov = interval_coverage(&ivs, &y_t);
            // Slack covers both test-set binomial variance and the
            // calibration-set quantile's own sampling variance.
            let slack = 4.0 * (eps * (1.0 - eps) * 2.0 / 1500.0).sqrt() + 0.015;
            prop_assert!(cov >= 1.0 - eps - slack, "coverage {cov} at ε {eps}");
        }

        /// γ grows (weakly) as ε shrinks: stricter coverage, wider interval.
        #[test]
        fn gamma_monotone_in_epsilon(seed in 0u64..20) {
            let (lo, hi, y) = scenario(seed, 1000);
            let mut last = f32::NEG_INFINITY;
            for eps in [0.3f32, 0.2, 0.1, 0.05] {
                let g = TwoSidedCqr::fit(&lo, &hi, &y, eps).offset();
                prop_assert!(g >= last, "γ not monotone: {g} after {last}");
                last = g;
            }
        }
    }
}
