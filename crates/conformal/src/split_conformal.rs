//! One-sided split conformal regression.

use pitot_linalg::quantile_higher;
use serde::{Deserialize, Serialize};

/// Computes the conformal offset `γ` for a one-sided upper bound.
///
/// Given calibration scores `sᵢ = yᵢ − ŷᵢ` (log-space residuals) and a target
/// miscoverage `ε`, returns the `⌈(n+1)(1−ε)⌉`-th smallest score. Under
/// exchangeability, `Pr(y ≤ ŷ + γ) ≥ 1 − ε` on fresh data (Vovk et al.;
/// paper Eq 12).
///
/// # Panics
///
/// Panics if `scores` is empty or `miscoverage ∉ (0, 1)`.
pub fn calibrate_gamma(scores: &[f32], miscoverage: f32) -> f32 {
    assert!(!scores.is_empty(), "cannot calibrate on an empty set");
    assert!(
        miscoverage > 0.0 && miscoverage < 1.0,
        "miscoverage {miscoverage} outside (0,1)"
    );
    quantile_higher(scores, 1.0 - miscoverage)
}

/// A calibrated one-sided upper-bound predictor around a single
/// (non-quantile) regression head.
///
/// This is the paper's "Non-quantile" baseline in Fig 5: valid, but the
/// bound width is one global constant, so it cannot adapt to easy vs hard
/// predictions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitConformal {
    gamma: f32,
    miscoverage: f32,
}

impl SplitConformal {
    /// Calibrates on `(prediction, target)` pairs in log space.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or differ in length, or if
    /// `miscoverage ∉ (0, 1)`.
    pub fn fit(predictions_log: &[f32], targets_log: &[f32], miscoverage: f32) -> Self {
        assert_eq!(
            predictions_log.len(),
            targets_log.len(),
            "prediction/target length mismatch"
        );
        let scores: Vec<f32> = predictions_log
            .iter()
            .zip(targets_log)
            .map(|(p, t)| t - p)
            .collect();
        Self {
            gamma: calibrate_gamma(&scores, miscoverage),
            miscoverage,
        }
    }

    /// Calibrates directly from precomputed scores `sᵢ = yᵢ − ŷᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty or `miscoverage ∉ (0, 1)`.
    pub fn from_scores(scores: &[f32], miscoverage: f32) -> Self {
        Self {
            gamma: calibrate_gamma(scores, miscoverage),
            miscoverage,
        }
    }

    /// Calibrates from an already-sorted score slice (rank lookup only) —
    /// the ε-sweep entry point over a `ScoredCalibration`.
    ///
    /// # Panics
    ///
    /// Panics if `sorted` is empty or `miscoverage ∉ (0, 1)`.
    pub fn from_sorted_scores(sorted: &[f32], miscoverage: f32) -> Self {
        assert!(
            miscoverage > 0.0 && miscoverage < 1.0,
            "miscoverage {miscoverage} outside (0,1)"
        );
        Self {
            gamma: pitot_linalg::quantile_higher_sorted(sorted, 1.0 - miscoverage),
            miscoverage,
        }
    }

    /// The calibrated offset γ.
    pub fn offset(&self) -> f32 {
        self.gamma
    }

    /// The target miscoverage rate ε this calibration was built for.
    pub fn miscoverage(&self) -> f32 {
        self.miscoverage
    }

    /// Upper bound in log space for a fresh prediction.
    pub fn upper_bound_log(&self, prediction_log: f32) -> f32 {
        prediction_log + self.gamma
    }

    /// Upper bound in linear (seconds) space for a fresh prediction.
    pub fn upper_bound(&self, prediction_log: f32) -> f32 {
        self.upper_bound_log(prediction_log).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gamma_is_score_quantile() {
        let scores = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
        // n=10, ε=0.2 → rank ceil(11·0.8)=9 → 9th smallest = 0.8.
        assert_eq!(calibrate_gamma(&scores, 0.2), 0.8);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_calibration() {
        let _ = calibrate_gamma(&[], 0.1);
    }

    #[test]
    fn bound_is_monotone_in_epsilon() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let preds: Vec<f32> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let tgts: Vec<f32> = preds.iter().map(|p| p + rng.gen_range(-0.2..0.4)).collect();
        let loose = SplitConformal::fit(&preds, &tgts, 0.01);
        let tight = SplitConformal::fit(&preds, &tgts, 0.2);
        assert!(loose.offset() >= tight.offset());
    }

    proptest! {
        /// The split conformal coverage guarantee: calibrate on half of an
        /// exchangeable sample, verify empirical coverage ≥ 1 − ε − slack on
        /// the other half.
        #[test]
        fn coverage_guarantee_holds(seed in 0u64..200, eps in 0.05f32..0.3) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let noise = |rng: &mut ChaCha8Rng| {
                // Skewed noise: uniform + occasional large positive spike.
                let base: f32 = rng.gen_range(-0.1..0.1);
                if rng.gen_bool(0.1) { base + rng.gen_range(0.0..1.0) } else { base }
            };
            let n = 1600usize;
            let all: Vec<(f32, f32)> = (0..n)
                .map(|_| {
                    let p = rng.gen_range(-2.0..2.0);
                    (p, p + noise(&mut rng))
                })
                .collect();
            let (cal, test) = all.split_at(n / 2);
            let (cp, ct): (Vec<f32>, Vec<f32>) = cal.iter().cloned().unzip();
            let sc = SplitConformal::fit(&cp, &ct, eps);
            let covered = test
                .iter()
                .filter(|(p, t)| *t <= sc.upper_bound_log(*p))
                .count();
            let coverage = covered as f32 / test.len() as f32;
            // Finite-sample slack: the guarantee is marginal over BOTH the
            // calibration and the test draw, so both contribute variance.
            let var = eps * (1.0 - eps) * (1.0 / cal.len() as f32 + 1.0 / test.len() as f32);
            // 4.5σ: the property runs across hundreds of proptest cases, so
            // per-case tail mass must be far below 1/cases.
            let slack = 4.5 * var.sqrt();
            prop_assert!(coverage >= 1.0 - eps - slack, "coverage {coverage} at ε={eps}");
        }
    }
}
