//! Conformal risk scoring for placement decisions.
//!
//! The score of placing a job on a candidate platform has two parts:
//!
//! 1. **own risk** — the predicted runtime of the job itself, given the
//!    platform's *current co-location set* (the set the prediction model
//!    was trained to condition on);
//! 2. **induced risk** — the interference *delta* the placement inflicts on
//!    jobs already running there: for each resident, the predicted runtime
//!    with the new job added minus without it, scaled by the resident's
//!    remaining-work fraction (a job about to finish barely suffers; a job
//!    that just started absorbs the full slowdown).
//!
//! Both parts are evaluated through the same [`RuntimePredictor`] — which
//! edge of its predictive distribution they read is the [`Signal`]: the
//! conformal **upper edge** is the calibrated worst case the paper argues
//! is the actionable quantity, while the **point** prediction is the
//! ablation that shows what the interval edge buys.

use pitot_orchestrator::{ClusterView, Job, RuntimePredictor};

/// Which edge of the predictive distribution drives the risk score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// The conformal upper edge ([`RuntimePredictor::bound_s`]): at
    /// miscoverage ε, the realized runtime exceeds it with probability
    /// ≲ ε, so minimizing it minimizes a calibrated worst case.
    UpperEdge,
    /// The point prediction ([`RuntimePredictor::predict_s`]): optimal if
    /// predictions were exact, blind to their uncertainty.
    Point,
}

impl Signal {
    /// Evaluates the signal for `workload` on `platform` next to `set`.
    pub fn eval(
        self,
        predictor: &dyn RuntimePredictor,
        workload: u32,
        platform: usize,
        set: &[u32],
    ) -> f64 {
        match self {
            Signal::UpperEdge => predictor.bound_s(workload, platform, set),
            Signal::Point => predictor.predict_s(workload, platform, set),
        }
    }
}

/// Risk of placing `job` on candidate platform `p` under `signal`:
/// own predicted runtime plus `delta_weight` times the induced
/// interference delta on residents (each delta clamped at zero — a
/// placement is never credited for *speeding up* a resident, which only a
/// miscalibrated predictor would claim).
///
/// # Panics
///
/// Panics if `p` is out of range for the view.
pub fn placement_risk(
    job: &Job,
    view: &ClusterView,
    p: usize,
    predictor: &dyn RuntimePredictor,
    signal: Signal,
    delta_weight: f64,
) -> f64 {
    let load = &view.platforms[p];
    let own = signal.eval(predictor, job.workload, p, &load.running);
    if delta_weight == 0.0 || load.running.is_empty() {
        return own;
    }
    // The resident's interferer set after the placement is everyone on the
    // platform except itself, plus the new job; before, just everyone
    // except itself. The difference isolates the new job's contribution
    // through the model's interference dot-product path.
    let mut induced = 0.0f64;
    for (slot, &resident) in load.running.iter().enumerate() {
        let mut others: Vec<u32> = load
            .running
            .iter()
            .copied()
            .enumerate()
            .filter(|&(s, _)| s != slot)
            .map(|(_, w)| w)
            .collect();
        let before = signal.eval(predictor, resident, p, &others);
        others.push(job.workload);
        let after = signal.eval(predictor, resident, p, &others);
        induced += ((after - before) * load.remaining_frac[slot]).max(0.0);
    }
    own + delta_weight * induced
}

/// The risk-minimizing candidate among platforms with a free slot, or
/// `None` when every platform is full. Ties break to the lowest platform
/// index (candidates are scanned in ascending order and only a strictly
/// smaller risk displaces the incumbent), so the decision is a pure
/// function of the view — no RNG, no iteration-order sensitivity.
pub fn risk_argmin(
    job: &Job,
    view: &ClusterView,
    predictor: &dyn RuntimePredictor,
    signal: Signal,
    delta_weight: f64,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for p in view.with_capacity() {
        let risk = placement_risk(job, view, p, predictor, signal, delta_weight);
        if best.is_none_or(|(b, _)| risk.total_cmp(&b).is_lt()) {
            best = Some((risk, p));
        }
    }
    best.map(|(_, p)| p)
}
