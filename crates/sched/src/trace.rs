//! Decision tracing: record every placement and fold it into a digest.
//!
//! The workspace invariant is that everything — training, calibration, and
//! now placement — is bitwise-deterministic across `PITOT_THREADS`. For
//! placement that claim is checked end-to-end: wrap any policy in
//! [`Traced`], run the closed loop, and compare [`Traced::digest`] values
//! between runs. CI runs the `sched` example under `PITOT_THREADS=1` and
//! the default thread count and diffs the printed digests (the thread count
//! is latched process-wide at first use, so the comparison must be
//! cross-process).

use pitot_orchestrator::{ClusterView, Job, PlacementPolicy, RuntimePredictor};

/// A policy wrapper that records `(job id, decision)` for every `place`
/// call. The wrapper is decision-transparent: it forwards to the inner
/// policy and never alters the choice.
#[derive(Debug, Clone)]
pub struct Traced<P> {
    inner: P,
    name: String,
    decisions: Vec<(usize, Option<usize>)>,
}

impl<P: PlacementPolicy> Traced<P> {
    /// Wraps `inner`, starting with an empty trace.
    pub fn new(inner: P) -> Self {
        let name = format!("traced({})", inner.name());
        Self {
            inner,
            name,
            decisions: Vec::new(),
        }
    }

    /// The recorded `(job id, chosen platform)` sequence, in call order.
    pub fn decisions(&self) -> &[(usize, Option<usize>)] {
        &self.decisions
    }

    /// FNV-1a digest of the decision sequence. Two runs that made the same
    /// placements in the same order produce the same digest, so a single
    /// `u64` printed per run suffices to compare whole closed-loop
    /// executions across processes (and thread counts).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for &(id, decision) in &self.decisions {
            eat(id as u64);
            eat(decision.map_or(u64::MAX, |p| p as u64));
        }
        h
    }

    /// Consumes the wrapper, returning the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: PlacementPolicy> PlacementPolicy for Traced<P> {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        let decision = self.inner.place(job, view, predictor);
        self.decisions.push((job.id, decision));
        decision
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::LeastLoaded;
    use pitot_orchestrator::PlatformLoad;

    struct Flat;
    impl RuntimePredictor for Flat {
        fn predict_s(&self, _w: u32, _p: usize, _i: &[u32]) -> f64 {
            1.0
        }
        fn name(&self) -> &str {
            "flat"
        }
    }

    fn view(n: usize) -> ClusterView {
        ClusterView {
            now_s: 0.0,
            platforms: (0..n)
                .map(|_| PlatformLoad {
                    running: vec![],
                    remaining_frac: vec![],
                    due_s: vec![],
                    free_slots: 1,
                })
                .collect(),
        }
    }

    fn job(id: usize) -> Job {
        Job {
            id,
            workload: 0,
            arrival_s: 0.0,
            deadline_s: 10.0,
        }
    }

    #[test]
    fn trace_records_every_decision_and_digest_is_stable() {
        let run = || {
            let mut traced = Traced::new(LeastLoaded::new());
            for id in 0..5 {
                let _ = traced.place(&job(id), &view(3), &Flat);
            }
            (traced.decisions().to_vec(), traced.digest())
        };
        let (da, ha) = run();
        let (db, hb) = run();
        assert_eq!(da.len(), 5);
        assert_eq!(da, db);
        assert_eq!(ha, hb);
    }

    #[test]
    fn different_decisions_change_the_digest() {
        let mut a = Traced::new(LeastLoaded::new());
        let mut b = Traced::new(LeastLoaded::new());
        let _ = a.place(&job(0), &view(2), &Flat);
        let _ = b.place(&job(1), &view(2), &Flat);
        assert_ne!(a.digest(), b.digest());
    }
}
