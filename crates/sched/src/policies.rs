//! The placement policies compared in the `ext-sched` experiment.

use crate::risk::{risk_argmin, Signal};
use pitot_orchestrator::{BaselinePolicy, ClusterView, Job, PlacementPolicy, RuntimePredictor};

/// Conformal risk-minimizing placement: scores every candidate by the
/// **upper edge** of the job's predicted runtime given the site's current
/// co-location set, plus the induced interference delta on residents (see
/// [`crate::risk::placement_risk`]), and places on the argmin.
///
/// With a calibrated predictor at miscoverage ε this minimizes a
/// quantity the realized runtime exceeds with probability ≲ ε — the
/// decision signal the paper's conformal intervals exist to provide.
#[derive(Debug, Clone)]
pub struct ConformalGreedy {
    delta_weight: f64,
}

impl ConformalGreedy {
    /// Risk scorer with the induced-interference term at full weight.
    pub fn new() -> Self {
        Self { delta_weight: 1.0 }
    }

    /// Adjusts how much the induced interference delta on residents counts
    /// relative to the job's own bound (`0.0` = ignore residents, score
    /// the job's upper edge alone; `1.0` = seconds of resident slowdown
    /// trade one-for-one against seconds of own runtime).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn with_delta_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "delta weight must be finite and non-negative, got {weight}"
        );
        self.delta_weight = weight;
        self
    }

    /// The configured induced-interference weight.
    pub fn delta_weight(&self) -> f64 {
        self.delta_weight
    }
}

impl Default for ConformalGreedy {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for ConformalGreedy {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        risk_argmin(job, view, predictor, Signal::UpperEdge, self.delta_weight)
    }

    fn name(&self) -> &str {
        "conformal-greedy"
    }
}

/// The point-prediction ablation of [`ConformalGreedy`]: identical risk
/// structure, but scored on [`RuntimePredictor::predict_s`] instead of the
/// conformal upper edge. The gap between the two in `ext-sched` is the
/// value of acting on the interval edge rather than the point estimate.
#[derive(Debug, Clone)]
pub struct PointGreedy {
    delta_weight: f64,
}

impl PointGreedy {
    /// Point-prediction scorer with the induced-interference term at full
    /// weight.
    pub fn new() -> Self {
        Self { delta_weight: 1.0 }
    }

    /// See [`ConformalGreedy::with_delta_weight`].
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or non-finite.
    pub fn with_delta_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "delta weight must be finite and non-negative, got {weight}"
        );
        self.delta_weight = weight;
        self
    }
}

impl Default for PointGreedy {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for PointGreedy {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        risk_argmin(job, view, predictor, Signal::Point, self.delta_weight)
    }

    fn name(&self) -> &str {
        "point-greedy"
    }
}

/// Prediction-free load balancing (what naive orchestrators do), re-exported
/// here so the `ext-sched` policy lineup lives in one crate. Delegates to
/// [`BaselinePolicy::least_loaded`].
#[derive(Debug, Clone)]
pub struct LeastLoaded {
    inner: BaselinePolicy,
}

impl LeastLoaded {
    /// Fewest-co-residents placement.
    pub fn new() -> Self {
        Self {
            inner: BaselinePolicy::least_loaded(),
        }
    }
}

impl Default for LeastLoaded {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for LeastLoaded {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        self.inner.place(job, view, predictor)
    }

    fn name(&self) -> &str {
        "least-loaded"
    }
}

/// Uniformly random placement (the lower bar). Delegates to
/// [`BaselinePolicy::random`]; deterministic in its seed.
#[derive(Debug, Clone)]
pub struct Random {
    inner: BaselinePolicy,
}

impl Random {
    /// Seeded random placement.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: BaselinePolicy::random(seed),
        }
    }
}

impl PlacementPolicy for Random {
    fn place(
        &mut self,
        job: &Job,
        view: &ClusterView,
        predictor: &dyn RuntimePredictor,
    ) -> Option<usize> {
        self.inner.place(job, view, predictor)
    }

    fn name(&self) -> &str {
        "random"
    }
}
