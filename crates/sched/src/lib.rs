//! Conformal risk-minimizing placement: acting on the interval edge.
//!
//! The paper's thesis is that calibrated runtime intervals are trustworthy
//! enough to *act* on. `pitot-serve` already acts on them for admission
//! (should this job run at all?); this crate acts on them for **placement**
//! (where should it run?). Every policy here implements the
//! [`PlacementPolicy`] trait from `pitot-orchestrator`, so the simulator's
//! `run_with_observer` / `pitot-serve`'s `run_closed_loop` drive them
//! unchanged — completions stream back into the sliding calibration window
//! mid-run, and the very next decision sees the recalibrated bounds.
//!
//! The policy lineup, ordered by how much of the prediction they use:
//!
//! - [`Random`] — ignores everything (the lower bar);
//! - [`LeastLoaded`] — balances co-location counts, prediction-free;
//! - [`PointGreedy`] — minimizes own predicted runtime plus the predicted
//!   interference delta induced on residents, read at the **point**
//!   estimate;
//! - [`ConformalGreedy`] — the same risk structure read at the conformal
//!   **upper edge**: at miscoverage ε the realized runtime exceeds the
//!   edge with probability ≲ ε, so the argmin placement bounds risk
//!   rather than hoping the point estimate was right.
//!
//! Scoring lives in [`risk`] ([`risk::placement_risk`] /
//! [`risk::risk_argmin`]) and is shared by both greedy policies; the
//! induced-delta term reuses the model's interference dot-product path by
//! querying the resident's runtime with and without the new arrival in its
//! interferer set.
//!
//! Determinism: placement decisions are bitwise-identical across
//! `PITOT_THREADS` settings (the scorer is a pure argmin over a snapshot;
//! randomized policies are seeded). [`Traced`] wraps any policy, records
//! the decision sequence, and folds it into a [`Traced::digest`] that CI
//! compares across processes with different thread counts; property tests
//! pin [`ConformalGreedy`] to a brute-force oracle.

// Every public item in this crate is part of the documented scheduling
// API; keep it that way (CI builds rustdoc with `-D warnings`).
#![deny(missing_docs)]

mod policies;
pub mod risk;
mod trace;

pub use policies::{ConformalGreedy, LeastLoaded, PointGreedy, Random};
pub use risk::Signal;
pub use trace::Traced;

// Re-export the trait so downstream code can depend on `pitot-sched`
// alone for policy work.
pub use pitot_orchestrator::PlacementPolicy;
