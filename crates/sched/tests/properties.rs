//! Property tests for the scheduling layer: the greedy risk scorers must
//! match a brute-force oracle on every randomized cluster view, and whole
//! closed-loop runs must be decision-for-decision reproducible.

use pitot_orchestrator::{
    BaselinePolicy, ClusterSim, ClusterView, Job, JobStream, OraclePredictor, PlacementPolicy,
    PlatformLoad, RuntimePredictor,
};
use pitot_sched::{risk, ConformalGreedy, PointGreedy, Signal, Traced};
use pitot_testbed::{Testbed, TestbedConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A deterministic pseudo-random predictor: runtimes are a hash of
/// (workload, platform, interferer multiset), so every property case
/// exercises a different but reproducible prediction surface. Interferers
/// are order-insensitive (summed), mirroring real predictors.
struct HashPredictor;

fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

impl RuntimePredictor for HashPredictor {
    fn predict_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        let set: u64 = interferers
            .iter()
            .fold(0u64, |acc, &w| acc.wrapping_add(mix(u64::from(w) + 1)));
        let h = mix(u64::from(workload) ^ (platform as u64) << 20 ^ set);
        // Map into (0.5, 10.5) seconds.
        0.5 + (h % 10_000) as f64 / 1_000.0
    }
    fn bound_s(&self, workload: u32, platform: usize, interferers: &[u32]) -> f64 {
        // A distinct (still deterministic) margin so UpperEdge and Point
        // genuinely disagree.
        let m = mix(u64::from(workload).wrapping_mul(31) ^ platform as u64);
        self.predict_s(workload, platform, interferers) * (1.1 + (m % 100) as f64 / 200.0)
    }
    fn name(&self) -> &str {
        "hash"
    }
}

/// Brute-force oracle: an independent, naive transcription of the risk
/// definition — score every platform with a free slot, return the lowest-
/// index argmin. Any divergence from `risk_argmin`'s single-pass scan is a
/// bug in one of them.
fn oracle_place(
    job: &Job,
    view: &ClusterView,
    predictor: &dyn RuntimePredictor,
    signal: Signal,
    weight: f64,
) -> Option<usize> {
    let read = |w: u32, p: usize, set: &[u32]| match signal {
        Signal::UpperEdge => predictor.bound_s(w, p, set),
        Signal::Point => predictor.predict_s(w, p, set),
    };
    let mut best: Option<(f64, usize)> = None;
    for (p, load) in view.platforms.iter().enumerate() {
        if load.free_slots == 0 {
            continue;
        }
        let mut score = read(job.workload, p, &load.running);
        for slot in 0..load.running.len() {
            let without: Vec<u32> = (0..load.running.len())
                .filter(|&s| s != slot)
                .map(|s| load.running[s])
                .collect();
            let mut with: Vec<u32> = without.clone();
            with.push(job.workload);
            let delta = read(load.running[slot], p, &with) - read(load.running[slot], p, &without);
            score += weight * (delta * load.remaining_frac[slot]).max(0.0);
        }
        if best.is_none_or(|(b, _)| score < b) {
            best = Some((score, p));
        }
    }
    best.map(|(_, p)| p)
}

/// Deterministically expands a drawn seed into a random cluster view: up
/// to 6 platforms, up to 3 residents each, arbitrary remaining fractions,
/// and some platforms full (`free_slots == 0`).
fn build_view(seed: u64) -> ClusterView {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(state)
    };
    let n_platforms = 1 + (next() % 6) as usize;
    let platforms = (0..n_platforms)
        .map(|_| {
            let n_residents = (next() % 4) as usize;
            let running: Vec<u32> = (0..n_residents).map(|_| (next() % 12) as u32).collect();
            let remaining_frac: Vec<f64> = (0..n_residents)
                .map(|_| (next() % 101) as f64 / 100.0)
                .collect();
            let due_s = vec![1e9; n_residents];
            PlatformLoad {
                running,
                remaining_frac,
                due_s,
                // 0 makes the platform full.
                free_slots: (next() % 4) as usize,
            }
        })
        .collect();
    ClusterView {
        now_s: (next() % 1000) as f64 / 10.0,
        platforms,
    }
}

fn job_of(workload: u32) -> Job {
    Job {
        id: 0,
        workload,
        arrival_s: 0.0,
        deadline_s: 100.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn conformal_greedy_matches_brute_force_oracle(
        view_seed in 0u64..1_000_000,
        workload in 0u32..12,
        weight_pct in 0u32..301,
    ) {
        let view = build_view(view_seed);
        let weight = f64::from(weight_pct) / 100.0;
        let job = job_of(workload);
        let got = ConformalGreedy::new()
            .with_delta_weight(weight)
            .place(&job, &view, &HashPredictor);
        let want = oracle_place(&job, &view, &HashPredictor, Signal::UpperEdge, weight);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn point_greedy_matches_brute_force_oracle(
        view_seed in 0u64..1_000_000,
        workload in 0u32..12,
        weight_pct in 0u32..301,
    ) {
        let view = build_view(view_seed);
        let weight = f64::from(weight_pct) / 100.0;
        let job = job_of(workload);
        let got = PointGreedy::new()
            .with_delta_weight(weight)
            .place(&job, &view, &HashPredictor);
        let want = oracle_place(&job, &view, &HashPredictor, Signal::Point, weight);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn risk_argmin_returns_none_only_when_full(view_seed in 0u64..1_000_000, workload in 0u32..12) {
        let view = build_view(view_seed);
        let job = job_of(workload);
        let got = risk::risk_argmin(&job, &view, &HashPredictor, Signal::UpperEdge, 1.0);
        let any_free = view.platforms.iter().any(|p| p.free_slots > 0);
        prop_assert_eq!(got.is_some(), any_free);
        if let Some(p) = got {
            prop_assert!(view.platforms[p].free_slots > 0);
        }
    }
}

fn shared_testbed() -> &'static Testbed {
    static TB: OnceLock<Testbed> = OnceLock::new();
    TB.get_or_init(|| Testbed::generate(&TestbedConfig::small()))
}

/// Whole closed-loop runs are decision-for-decision reproducible: the same
/// stream, policy, and predictor yield bitwise-identical traces (the
/// in-process half of the determinism claim; CI diffs digests across
/// `PITOT_THREADS` settings cross-process, since the thread count is
/// latched at first use).
#[test]
fn closed_loop_traces_are_reproducible() {
    let tb = shared_testbed();
    let jobs = JobStream::generate_with_deadlines(tb, 80, 0.05, (1.3, 3.0), 17);
    let run = || {
        // A fresh oracle per run: its Monte-Carlo bound consumes a seeded
        // RNG stream, so reproducibility is per-instance, not per-call.
        let oracle = OraclePredictor::with_epsilon(tb, 0.1);
        let mut traced = Traced::new(ConformalGreedy::new());
        let report =
            ClusterSim::new(tb)
                .restrict_to(&[0, 1, 2, 3])
                .run(&jobs, &mut traced, &oracle);
        (
            report.completed,
            traced.decisions().to_vec(),
            traced.digest(),
        )
    };
    let (ca, da, ha) = run();
    let (cb, db, hb) = run();
    assert_eq!(ca, 80);
    assert_eq!(ca, cb);
    assert_eq!(da, db);
    assert_eq!(ha, hb);
    // And the trace is exactly one decision per placement attempt: at
    // least one per job (requeues may add more).
    assert!(da.len() >= 80);
}

/// The conformal scorer must actually use the bound: on a view where the
/// point estimate and the upper edge disagree about the best platform,
/// `ConformalGreedy` and `PointGreedy` diverge.
#[test]
fn upper_edge_and_point_signals_can_disagree() {
    struct Skewed;
    impl RuntimePredictor for Skewed {
        fn predict_s(&self, _w: u32, p: usize, _i: &[u32]) -> f64 {
            // Platform 0 looks faster on points…
            [1.0, 2.0][p]
        }
        fn bound_s(&self, _w: u32, p: usize, _i: &[u32]) -> f64 {
            // …but its tail is much heavier.
            [9.0, 3.0][p]
        }
        fn name(&self) -> &str {
            "skewed"
        }
    }
    let view = ClusterView {
        now_s: 0.0,
        platforms: (0..2)
            .map(|_| PlatformLoad {
                running: vec![],
                remaining_frac: vec![],
                due_s: vec![],
                free_slots: 1,
            })
            .collect(),
    };
    let job = job_of(0);
    assert_eq!(PointGreedy::new().place(&job, &view, &Skewed), Some(0));
    assert_eq!(ConformalGreedy::new().place(&job, &view, &Skewed), Some(1));
}

/// Sched policies drive the simulator through the same trait as the
/// baselines — mixed lineups run side by side.
#[test]
fn sched_policies_complete_job_streams() {
    let tb = shared_testbed();
    let jobs = JobStream::generate_with_deadlines(tb, 60, 0.1, (1.3, 3.0), 3);
    let oracle = OraclePredictor::with_epsilon(tb, 0.1);
    let mut policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(ConformalGreedy::new()),
        Box::new(PointGreedy::new()),
        Box::new(pitot_sched::LeastLoaded::new()),
        Box::new(pitot_sched::Random::new(7)),
        Box::new(BaselinePolicy::deadline_aware()),
    ];
    for policy in &mut policies {
        let report = ClusterSim::new(tb).restrict_to(&[0, 1, 2, 3, 4, 5]).run(
            &jobs,
            policy.as_mut(),
            &oracle,
        );
        assert_eq!(report.completed, 60, "{}", policy.name());
    }
}
